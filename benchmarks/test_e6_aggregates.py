"""E6 (extension) — aggregate assertions, the paper's §5 future work.

    "As further work, we plan to extend TINTIN to handle aggregate
     functions in assertions."

This reproduction implements that extension (COUNT/SUM/MIN/MAX/AVG
bounds per group, checked by recomputing only update-adjacent groups
via index probes).  The bench shows the same incremental-vs-full
asymmetry as the relational assertions: the group-probe check costs
O(update), the full recheck costs O(data).
"""

import pytest

from conftest import cached_workload
from repro.bench import build_workload, format_seconds, plan_cache_line, time_call
from repro.tpch import MAX_SEVEN_LINEITEMS, ORDER_QUANTITY_CAP, UpdateGenerator

SCALE = 0.008
UPDATE_ORDERS = 20
SUITE = (MAX_SEVEN_LINEITEMS, ORDER_QUANTITY_CAP)


def full_aggregate_check(workload):
    checkers = workload.tintin.safe_commit_proc.aggregate_checkers
    return [c.check_full(workload.db) for c in checkers]


@pytest.mark.parametrize("scale", (0.004, 0.008, 0.02))
def test_incremental_aggregate_check(benchmark, scale):
    workload = cached_workload(scale, UPDATE_ORDERS, SUITE)
    result = benchmark(workload.check_incremental)
    assert result.committed


@pytest.mark.parametrize("scale", (0.004, 0.008, 0.02))
def test_full_aggregate_check(benchmark, scale):
    workload = cached_workload(scale, UPDATE_ORDERS, SUITE)
    violations = benchmark(full_aggregate_check, workload)
    assert all(v is None for v in violations)


def test_e6_report(benchmark):
    def build():
        rows = []
        for scale in (0.004, 0.008, 0.02):
            workload = cached_workload(scale, UPDATE_ORDERS, SUITE)
            incremental = time_call(workload.check_incremental, repeat=3)
            full = time_call(lambda: full_aggregate_check(workload), repeat=3)
            rows.append((workload.data_rows, incremental, full))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("E6: aggregate assertions (future work) — incremental vs full")
    print(f"{'data rows':>10} {'TINTIN':>10} {'full check':>11} {'speedup':>9}")
    for data_rows, incremental, full in rows:
        print(
            f"{data_rows:>10} {format_seconds(incremental):>10} "
            f"{format_seconds(full):>11} x{full / incremental:>8.1f}"
        )
    print(plan_cache_line(cached_workload(0.02, UPDATE_ORDERS, SUITE).db))
    # incremental always wins and the gap grows with data
    for _, incremental, full in rows:
        assert incremental < full
    assert rows[-1][2] / rows[-1][1] > rows[0][2] / rows[0][1] * 0.8


def test_aggregate_violations_detected(benchmark):
    def scenario():
        workload = build_workload(SCALE, 0, SUITE, seed=99)
        generator = UpdateGenerator(workload.db, seed=3)
        generator.violating_too_many_items().stage(workload.db)
        result = workload.tintin.safe_commit()
        assert result.rejected
        assert result.violations[0].assertion == "maxSevenLineItems"
        generator.violating_bulk_quantities().stage(workload.db)
        result = workload.tintin.safe_commit()
        assert result.rejected
        assert result.violations[0].assertion == "orderQuantityCap"
        return True

    assert benchmark.pedantic(scenario, rounds=1, iterations=1)
