"""E11 (PR 8) — delta-aware checking: seeded delta plans vs full views.

The deep denials (``everyOrderHasMaxItem`` and friends) compile to one
or more *seeded* EDCs whose full views scan whole base tables — the
one shape the event-driven translation of §3 cannot make incremental
on its own.  PR 8 adds a second compilation product per EDC: a delta
plan seeded from the staged insertion/deletion overlay and pruned with
a semi-join against the touched keys.  The delta plan arms after one
clean full evaluation and stays armed while the commit path can prove
nothing moved underneath it (catalog version + base-table data
versions, re-stamped on every apply).

Two claims, both checked here:

* **Speedup** — with the delta plan armed, checking a mixed refresh
  against the triple-nested ``everyOrderHasMaxItem`` at the E2 scale
  is at least ``ACCEPTANCE_SPEEDUP``× faster than the full prepared
  view (toggled via ``safe_commit_proc.delta_enabled``, the
  differential oracle).
* **Equivalence** — a scripted random DML churn (valid inserts,
  witness-removing deletes, planted violations, a catalog-drift DDL,
  and a crash/recovery boundary) produces verdict-for-verdict and
  state-for-state identical results on a delta-enabled engine and a
  full-plan oracle engine.

Set ``E11_SMOKE=1`` (CI) for a reduced run with a relaxed speedup bar;
the committed numbers live in ``BENCH_delta.json``.
"""

from __future__ import annotations

import os
import random

from repro import Database, Tintin, recover
from repro.bench import series_table, time_call, write_json_baseline
from repro.tpch import (
    BIG_ORDER_HAS_BIG_ITEM,
    EVERY_ORDER_HAS_MAX_ITEM,
    MAX_SEVEN_LINEITEMS,
    TPCHGenerator,
    UpdateGenerator,
    tpch_database,
)

SMOKE = os.environ.get("E11_SMOKE") == "1"

SCALE = 0.002 if SMOKE else 0.008
UPDATE_ORDERS = 20
ACCEPTANCE_SPEEDUP = 5.0 if SMOKE else 10.0

#: The sweep: the headline triple-nested denial plus two informative
#: rows (a doubly-nested seeded denial and a memoized COUNT aggregate).
SWEEP = (EVERY_ORDER_HAS_MAX_ITEM, BIG_ORDER_HAS_BIG_ITEM, MAX_SEVEN_LINEITEMS)
HEADLINE = EVERY_ORDER_HAS_MAX_ITEM.name


def build_armed(assertions, scale=SCALE, seed=42):
    """TPC-H engine with ``assertions`` installed, delta plans armed
    via one clean warm-up commit, and a mixed refresh staged."""
    db = tpch_database()
    TPCHGenerator(scale, seed).populate(db)
    tintin = Tintin(db)
    tintin.install()
    for spec in assertions:
        tintin.add_assertion(spec.sql)
    # the arming commit: one FK-valid order with a line item.  The
    # full views run once here; ``note_applied`` promotes every clean
    # seeded EDC to armed and stamps the base-table versions.
    customer = next(iter(db.table("customer").scan()))[0]
    part, supp = db.table("partsupp").rows_snapshot()[0][:2]
    db.execute(f"INSERT INTO orders VALUES (9999999, {customer}, 500.0)")
    db.execute(f"INSERT INTO lineitem VALUES (9999999, 1, {part}, {supp}, 10)")
    arming = tintin.safe_commit()
    assert arming.committed, arming
    UpdateGenerator(db, seed=seed + 1).mixed_refresh(UPDATE_ORDERS).stage(db)
    return tintin


def measure(spec):
    """(delta_seconds, full_seconds, armed) for one assertion."""
    tintin = build_armed((spec,))
    proc = tintin.safe_commit_proc
    armed = any(c.delta_armed for c in proc.compiled)
    delta = time_call(tintin.check_pending, repeat=3)
    result = tintin.check_pending()
    assert result.committed, result
    # same staged batch, full prepared views — the differential oracle
    proc.delta_enabled = False
    try:
        full = time_call(tintin.check_pending, repeat=3)
        oracle = tintin.check_pending()
    finally:
        proc.delta_enabled = True
    assert oracle.committed == result.committed
    return delta, full, armed


def test_e11_report(benchmark):
    """Regenerate the delta-vs-full table (printed to stdout)."""

    def build_rows():
        rows = []
        for spec in SWEEP:
            delta, full, armed = measure(spec)
            rows.append((spec.name, delta, full, armed))
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print()
    print(
        f"E11: delta-aware checking "
        f"(scale={SCALE}, {UPDATE_ORDERS} refresh orders)"
    )
    print(series_table("assertion", [(n, d, f) for n, d, f, _ in rows]))
    headline = {n: (d, f, armed) for n, d, f, armed in rows}[HEADLINE]
    delta, full, armed = headline
    assert armed, "the seeded delta plan never armed"
    speedup = full / delta
    print(f"headline {HEADLINE}: {speedup:.1f}x (bar {ACCEPTANCE_SPEEDUP}x)")
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"{HEADLINE}: delta {delta:.4f}s vs full {full:.4f}s "
        f"= {speedup:.1f}x < {ACCEPTANCE_SPEEDUP}x"
    )
    payload = {
        "experiment": "E11 delta-aware checking",
        "scale": SCALE,
        "update_orders": UPDATE_ORDERS,
        "acceptance_speedup": ACCEPTANCE_SPEEDUP,
        "smoke": SMOKE,
        "rows": [
            {
                "assertion": name,
                "delta_seconds": round(d, 6),
                "full_seconds": round(f, 6),
                "speedup": round(f / d, 2),
                "delta_armed": armed,
            }
            for name, d, f, armed in rows
        ],
    }
    if not SMOKE:
        write_json_baseline("BENCH_delta.json", payload)


# -- differential: delta engine vs full-plan oracle -------------------------
#
# A small orders/items schema keeps the scripted churn fast while still
# compiling a triple-nested seeded denial and a memoized aggregate.

ORDERS_DDL = "CREATE TABLE orders (id INTEGER PRIMARY KEY, total DOUBLE)"
ITEMS_DDL = (
    "CREATE TABLE items (order_id INTEGER, n INTEGER, qty INTEGER, "
    "PRIMARY KEY (order_id, n), "
    "FOREIGN KEY (order_id) REFERENCES orders (id))"
)
MAX_ITEM = (
    "CREATE ASSERTION everyOrderHasMaxItem CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE NOT EXISTS ("
    "SELECT * FROM items AS i WHERE i.order_id = o.id "
    "AND NOT EXISTS (SELECT * FROM items AS j "
    "WHERE j.order_id = i.order_id AND j.qty > i.qty))))"
)
COUNT_CAP = (
    "CREATE ASSERTION atMostThreeItems CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE "
    "(SELECT COUNT(*) FROM items AS i WHERE i.order_id = o.id) > 3))"
)

STEPS = 40 if SMOKE else 60
CRASH_STEP = STEPS // 2


def _setup(tintin: Tintin) -> None:
    db = tintin.db
    db.execute(ORDERS_DDL)
    db.execute(ITEMS_DDL)
    tintin.install()
    tintin.add_assertion(MAX_ITEM)
    tintin.add_assertion(COUNT_CAP)


def _state(db: Database) -> dict:
    return {
        t.schema.name: sorted(t.rows_snapshot())
        for t in db.catalog.tables(namespace="main")
        if t.schema.name in ("orders", "items")
    }


def _script(steps: int):
    """Deterministic op sequence with known expected verdicts.

    Yields ``(expected_committed, statements)`` pairs; a shadow model
    of applied state keeps the witness-removing ops well-targeted.
    """
    rng = random.Random(11)
    orders: dict[int, list[int]] = {}
    next_id = 1
    for step in range(steps):
        live = sorted(k for k, items in orders.items() if items)
        op = rng.choice(
            ("new", "new", "new", "add", "strip", "drop", "empty", "flood", "ddl")
        )
        if op in ("add", "strip", "drop", "flood") and not live:
            op = "new"
        if op == "new":
            oid, next_id = next_id, next_id + 1
            count = rng.randint(1, 3)
            stmts = [f"INSERT INTO orders VALUES ({oid}, {oid * 10}.0)"]
            stmts += [
                f"INSERT INTO items VALUES ({oid}, {n}, {rng.randint(1, 9)})"
                for n in range(1, count + 1)
            ]
            orders[oid] = list(range(1, count + 1))
            yield True, stmts
        elif op == "add":
            oid = rng.choice(live)
            items = orders[oid]
            if len(items) >= 3:
                yield False, [
                    f"INSERT INTO items VALUES ({oid}, {max(items) + 1}, 5)"
                ]
            else:
                n = max(items) + 1
                items.append(n)
                yield True, [f"INSERT INTO items VALUES ({oid}, {n}, 5)"]
        elif op == "strip":
            # delete every item of a live order: the order loses its
            # maximal item — rejected via the seeded delete-side EDC
            oid = rng.choice(live)
            yield False, [
                f"DELETE FROM items WHERE order_id = {oid} AND n = {n}"
                for n in orders[oid]
            ]
        elif op == "drop":
            oid = rng.choice(live)
            stmts = [
                f"DELETE FROM items WHERE order_id = {oid} AND n = {n}"
                for n in orders[oid]
            ]
            stmts.append(f"DELETE FROM orders WHERE id = {oid}")
            del orders[oid]
            yield True, stmts
        elif op == "empty":
            # a new order with no items violates the triple-nested denial
            oid, next_id = next_id, next_id + 1
            yield False, [f"INSERT INTO orders VALUES ({oid}, 1.0)"]
        elif op == "flood":
            # blow past the COUNT cap — the aggregate memo must see it
            oid = rng.choice(live)
            base = max(orders[oid]) + 1
            needed = 4 - len(orders[oid]) + 1
            yield False, [
                f"INSERT INTO items VALUES ({oid}, {base + k}, 2)"
                for k in range(needed)
            ]
        else:  # ddl — catalog drift must disarm the delta plans
            yield None, [f"CREATE TABLE scratch_{step} (x INTEGER)"]


def _run(tintin: Tintin, delta: bool, crash_dir: str | None = None):
    """Run the script; returns (verdict list, final state, engine)."""
    tintin.safe_commit_proc.delta_enabled = delta
    verdicts = []
    for step, (expected, stmts) in enumerate(_script(STEPS)):
        if crash_dir is not None and step == CRASH_STEP:
            del tintin  # simulated crash — never closed
            tintin, report = recover(crash_dir)
            assert report.batches_replayed > 0
            proc = tintin.safe_commit_proc
            proc.delta_enabled = delta
            # recovery rebuilds delta/memo state as a derived cache:
            # everything starts cold and disarmed
            assert not any(c.delta_armed for c in proc.compiled)
        for stmt in stmts:
            tintin.db.execute(stmt)
        if expected is None:  # DDL only, nothing staged
            continue
        result = tintin.safe_commit()
        verdicts.append(
            (result.committed, sorted(v.assertion for v in result.violations))
        )
        assert result.committed == expected, (
            f"step {step}: expected committed={expected}, got {result}"
        )
    return verdicts, _state(tintin.db), tintin


def test_e11_differential(tmp_path):
    """Delta-enabled engine == full-plan oracle, across crash/recovery."""
    oracle = Tintin(Database("oracle"))
    _setup(oracle)
    oracle_verdicts, oracle_state, _ = _run(oracle, delta=False)

    path = str(tmp_path / "delta-engine")
    subject = Tintin.open(path, durability="commit")
    _setup(subject)
    verdicts, state, subject = _run(subject, delta=True, crash_dir=path)

    assert verdicts == oracle_verdicts
    assert state == oracle_state
    # the run exercised the armed fast path and re-armed after the
    # crash: seeded plans must be live again at the end
    assert any(c.delta_armed for c in subject.safe_commit_proc.compiled)
    # planted violations of every flavour actually fired
    rejected = [names for committed, names in verdicts if not committed]
    assert any("everyOrderHasMaxItem" in names for names in rejected)
    assert any("atMostThreeItems" in names for names in rejected)
