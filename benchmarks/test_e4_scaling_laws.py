"""E4 (ablation) — the two scaling laws behind incrementality (§2).

    "the data considered by an SQL query during its execution is
     necessarily the data joining the update applied, thus, avoiding to
     look through all the database."

Two series over ``atLeastOneLineItem``:

* fixed data, growing update — the incremental check's cost tracks the
  update size;
* fixed update, growing data — the incremental check stays (nearly)
  flat while the full check grows linearly.
"""

import pytest

from conftest import applied_workload, cached_workload
from repro.bench import durability_line, plan_cache_line, series_table, time_call
from repro.tpch import AT_LEAST_ONE_LINEITEM

ASSERTIONS = (AT_LEAST_ONE_LINEITEM,)
FIXED_SCALE = 0.008
UPDATE_SERIES = (5, 10, 20, 40, 80)
FIXED_UPDATE = 20
SCALE_SERIES = (0.002, 0.004, 0.008, 0.016)


@pytest.mark.parametrize("update_orders", (5, 80), ids=["small-update", "big-update"])
def test_update_size_extremes(benchmark, update_orders):
    workload = cached_workload(FIXED_SCALE, update_orders, ASSERTIONS)
    benchmark(workload.check_incremental)


@pytest.mark.parametrize("scale", (0.002, 0.016), ids=["small-data", "big-data"])
def test_data_size_extremes(benchmark, scale):
    workload = cached_workload(scale, FIXED_UPDATE, ASSERTIONS)
    benchmark(workload.check_incremental)


def test_e4_report(benchmark):
    def build():
        update_rows = []
        for update_orders in UPDATE_SERIES:
            workload = cached_workload(FIXED_SCALE, update_orders, ASSERTIONS)
            incremental = time_call(workload.check_incremental, repeat=3)
            applied = applied_workload(FIXED_SCALE, update_orders, ASSERTIONS)
            full = time_call(applied.check_full, repeat=3)
            update_rows.append(
                (f"{workload.update_rows} rows", incremental, full)
            )
        scale_rows = []
        for scale in SCALE_SERIES:
            workload = cached_workload(scale, FIXED_UPDATE, ASSERTIONS)
            incremental = time_call(workload.check_incremental, repeat=3)
            applied = applied_workload(scale, FIXED_UPDATE, ASSERTIONS)
            full = time_call(applied.check_full, repeat=3)
            scale_rows.append(
                (f"{workload.data_rows} rows", incremental, full)
            )
        return update_rows, scale_rows

    update_rows, scale_rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(f"E4a: fixed data (scale={FIXED_SCALE}), growing update")
    print(series_table("update size", update_rows))
    print()
    print(f"E4b: fixed update ({FIXED_UPDATE} orders), growing data")
    print(series_table("data size", scale_rows))
    print(plan_cache_line(cached_workload(FIXED_SCALE, FIXED_UPDATE, ASSERTIONS).db))
    print(durability_line(cached_workload(FIXED_SCALE, FIXED_UPDATE, ASSERTIONS).tintin))

    # scaling law 1: incremental cost grows with the update
    first_incremental = update_rows[0][1]
    last_incremental = update_rows[-1][1]
    assert last_incremental > first_incremental

    # scaling law 2: full-check cost grows with the data; the
    # incremental check grows far slower
    full_growth = scale_rows[-1][2] / scale_rows[0][2]
    incremental_growth = scale_rows[-1][1] / scale_rows[0][1]
    assert full_growth > 3.0
    assert incremental_growth < full_growth / 2
