"""Shared fixtures for the experiment benchmarks.

Workloads are cached per configuration so pytest-benchmark rounds reuse
the same loaded database (building a cell costs ~0.1-2 s; the measured
operations are the checks, never the builds).
"""

from __future__ import annotations

import pytest

from repro.bench import Workload, build_workload
from repro.tpch import AssertionSpec

_cache: dict = {}


def cached_workload(
    scale: float,
    update_orders: int,
    assertions: tuple[AssertionSpec, ...],
    seed: int = 42,
    update_kind: str = "mixed",
    optimize: bool = True,
) -> Workload:
    """Build (or fetch) the workload for one configuration."""
    key = (
        scale,
        update_orders,
        tuple(a.name for a in assertions),
        seed,
        update_kind,
        optimize,
    )
    if key not in _cache:
        _cache[key] = {
            "workload": build_workload(
                scale, update_orders, assertions, seed, update_kind, optimize
            ),
            "applied": False,
        }
    return _cache[key]["workload"]


def applied_workload(
    scale: float,
    update_orders: int,
    assertions: tuple[AssertionSpec, ...],
    seed: int = 42,
    update_kind: str = "mixed",
    optimize: bool = True,
) -> Workload:
    """Like :func:`cached_workload` but with the update applied (for
    timing the full post-state check).

    Applied workloads get their *own* cache entry built from scratch:
    applying a shared pending workload would empty its event tables and
    corrupt every later incremental measurement in the session.
    """
    key = (
        "applied",
        scale,
        update_orders,
        tuple(a.name for a in assertions),
        seed,
        update_kind,
        optimize,
    )
    if key not in _cache:
        workload = build_workload(
            scale, update_orders, assertions, seed, update_kind, optimize
        )
        workload.apply()
        _cache[key] = {"workload": workload, "applied": True}
    return _cache[key]["workload"]


@pytest.fixture(scope="session")
def workload_cache():
    return cached_workload
