"""E5 (ablation) — portability of the generated SQL (§3, feature 1).

    "Since we use standard SQL to define them, they could be used for
     checking assertions on any relational DBMS."

The stored violation views are printed as standard SQL and installed
verbatim on stdlib ``sqlite3``.  The experiment verifies both engines
reach the same accept/reject decision on valid and violating updates,
and compares the check times.
"""

import pytest

from conftest import cached_workload
from repro.backends import SQLiteMirror
from repro.bench import (
    build_workload,
    format_seconds,
    plan_cache_line,
    time_call,
)
from repro.tpch import (
    AT_LEAST_ONE_LINEITEM,
    POSITIVE_QUANTITY,
    UpdateGenerator,
)

SCALE = 0.004
SUITE = (AT_LEAST_ONE_LINEITEM, POSITIVE_QUANTITY)


def view_names(workload):
    return [
        name
        for assertion in workload.tintin.assertions.values()
        for name in assertion.view_names
    ]


@pytest.fixture(scope="module")
def mirrored():
    workload = cached_workload(SCALE, 10, SUITE)
    mirror = SQLiteMirror.from_database(workload.db)
    return workload, mirror


def test_sqlite_check(benchmark, mirrored):
    workload, mirror = mirrored
    names = view_names(workload)
    mirror.refresh_event_tables(workload.db)
    counts = benchmark(mirror.check_views, names)
    assert not any(counts.values())


def test_minidb_check(benchmark, mirrored):
    workload, _ = mirrored
    result = benchmark(workload.check_incremental)
    assert result.committed


def test_e5_report(benchmark):
    last_db = {}

    def build():
        rows = []
        # a valid refresh and a violating update, both engines
        for kind in ("valid", "violating"):
            workload = build_workload(SCALE, 10, SUITE, seed=77)
            last_db["db"] = workload.db
            if kind == "violating":
                workload.tintin.events.truncate_events()
                generator = UpdateGenerator(workload.db, seed=5)
                generator.violating_order_without_lineitem().stage(workload.db)
            mirror = SQLiteMirror.from_database(workload.db)
            names = view_names(workload)
            minidb_seconds = time_call(workload.check_incremental, repeat=3)
            sqlite_seconds = time_call(
                lambda: mirror.check_views(names), repeat=3
            )
            minidb_decision = workload.check_incremental().committed
            sqlite_decision = not mirror.any_violation(names)
            rows.append(
                (kind, minidb_decision, sqlite_decision, minidb_seconds, sqlite_seconds)
            )
            mirror.close()
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("E5: the same generated views on minidb and stdlib sqlite3")
    print(f"{'update':>10} {'minidb ok':>10} {'sqlite ok':>10} {'minidb':>10} {'sqlite':>10}")
    for kind, m_ok, s_ok, m_s, s_s in rows:
        print(
            f"{kind:>10} {str(m_ok):>10} {str(s_ok):>10} "
            f"{format_seconds(m_s):>10} {format_seconds(s_s):>10}"
        )
    print(plan_cache_line(last_db["db"]))
    # both engines must agree on every decision
    for kind, m_ok, s_ok, _, _ in rows:
        assert m_ok == s_ok, f"decision mismatch on {kind} update"
    assert rows[0][1] is True
    assert rows[1][1] is False
