"""E8 (multi-session concurrency) — group commit under client threads.

The paper's safeCommit validates one staged update at a time.  The
server subsystem gives every client its own staging area and serializes
only validate-and-apply, batching compatible (key-disjoint) updates
into one violation-view pass and one combined apply.  This experiment
sweeps the session count over a mixed TPC-H update workload (RF1-style
order insertions + RF2-style deletions of each session's own earlier
orders) and measures aggregate committed throughput.

Acceptance (ISSUE 2):

* >= 2x aggregate commits/sec at 8 sessions vs 1 session;
* a differential proof that N sessions committing sequentially and
  concurrently accept/reject the exact same updates and leave the
  database in the same state (with planted violations in the mix).

Acceptance (ISSUE 3, staged reads):

* with 8 sessions each holding staged events and running an OLTP read
  mix (cheap dimension lookups + a pending-update check), the
  overlay-merge read path achieves >= 4x the aggregate reads/sec of
  the splice baseline, without a single plan-cache invalidation or
  ``data_version`` bump.

Set ``E8_SMOKE=1`` (CI) for a reduced sweep with relaxed bars — the
full acceptance numbers live in ``BENCH_concurrency.json``.
"""

from __future__ import annotations

import os
import random

from repro import Database, Tintin
from repro.bench import (
    concurrency_payload,
    concurrency_table,
    durability_line,
    measure_concurrent_throughput,
    measure_staged_read_throughput,
    plan_cache_line,
    staged_read_payload,
    staged_read_table,
    write_json_baseline,
)
from repro.tpch import (
    AGGREGATE_ASSERTIONS,
    COMPLEXITY_SUITE,
    EVERY_ORDER_HAS_MAX_ITEM,
    TPCHGenerator,
    tpch_database,
)

def _bound_assertion(k: int) -> str:
    """One of a family of distinct business-rule assertions (cf. E7's
    qtyBound views): no cheap order carries an oversized line item."""
    return (
        f"CREATE ASSERTION e8Bound{k} CHECK (NOT EXISTS ("
        f"SELECT * FROM orders AS o, lineitem AS l "
        f"WHERE l.l_orderkey = o.o_orderkey AND l.l_quantity > {60 + k} "
        f"AND o.o_totalprice > {500 + k}))"
    )


#: 7 EDC-compiled assertions + 2 aggregates + 8 bound variants: a
#: production-like rule set whose validation pass dominates the cost of
#: a small commit — the share the group-commit fast path amortizes.
#: The doubly-nested ``everyOrderHasMaxItem`` stress case is included
#: (PR 8): its >100ms full views run once at arming and the seeded
#: delta plans take over for the measured window, so deep denials now
#: cost the same sub-millisecond checks as the rest of the suite.
E8_ASSERTIONS = tuple(
    spec.sql
    for spec in COMPLEXITY_SUITE
    + (EVERY_ORDER_HAS_MAX_ITEM,)
    + AGGREGATE_ASSERTIONS
) + tuple(_bound_assertion(k) for k in range(8))

SMOKE = os.environ.get("E8_SMOKE") == "1"

SCALE = 0.002
SESSION_SWEEP = (1, 4) if SMOKE else (1, 2, 4, 8)
TOTAL_COMMITS = 64 if SMOKE else 128
ACCEPTANCE_SPEEDUP = 1.2 if SMOKE else 2.0
#: each worker's order keys live in a private range: updates are
#: pairwise key-disjoint, so the group-commit fast path is available
KEY_BASE = 10_000_000
KEY_STRIDE = 1_000_000


#: the server's group-commit window: how long a commit leader waits for
#: other sessions' requests to join its batch.  Fixed across the whole
#: sweep (the 1-session row pays it too — this is one server
#: configuration under varying client counts, the same trade
#: MySQL's ``binlog_group_commit_sync_delay`` makes).
GATHER_SECONDS = 0.0008


def arm_delta_pipeline(tintin: Tintin) -> None:
    """Arm the delta pipeline before the measured window: one validated
    warm-up commit promotes every seeded EDC (and warms the aggregate
    memos), so sweeps measure steady-state incremental checking rather
    than the one-time full passes that follow installation."""
    db = tintin.db
    customer = next(iter(db.table("customer").scan()))[0]
    partsupp = db.table("partsupp").rows_snapshot()[0]
    db.execute(f"INSERT INTO orders VALUES (9999999, {customer}, 500.0)")
    db.execute(
        "INSERT INTO lineitem VALUES "
        f"(9999999, 1, {partsupp[0]}, {partsupp[1]}, 10)"
    )
    warmup = tintin.safe_commit()
    assert warmup.committed, warmup


def build_server(policy: str = "group") -> Tintin:
    db = tpch_database("e8")
    TPCHGenerator(SCALE, seed=42).populate(db)
    tintin = Tintin(db)
    tintin.install()
    # validation is the dominant per-commit cost the group-commit fast
    # path amortizes (and aggregate group-key compatibility is
    # exercised: every session grows only its own orders)
    for sql in E8_ASSERTIONS:
        tintin.add_assertion(sql)
    arm_delta_pipeline(tintin)
    tintin.serve(policy=policy, gather_seconds=GATHER_SECONDS)
    return tintin


def build_scripts(
    db: Database,
    workers: int,
    rounds: int,
    plant_violations: bool = False,
    seed: int = 11,
) -> dict[int, list[dict]]:
    """Precomputed per-worker update scripts (no RNG inside the timed
    loop).  Each round is one proposed update: mostly an RF1-style new
    order with two lineitems; every third round additionally deletes
    the worker's oldest surviving order (RF2-style); with
    ``plant_violations`` every fifth round stages an itemless order,
    which ``atLeastOneLineItem`` must reject."""
    rng = random.Random(seed)
    partsupp = db.table("partsupp").rows_snapshot()
    customers = [row[0] for row in db.table("customer").scan()]
    scripts: dict[int, list[dict]] = {}
    for worker in range(workers):
        updates: list[dict] = []
        owned: list[tuple[tuple, list[tuple]]] = []
        for round_no in range(rounds):
            key = KEY_BASE + worker * KEY_STRIDE + round_no
            customer = rng.choice(customers)
            if plant_violations and round_no % 5 == 4:
                updates.append(
                    {
                        "inserts": {"orders": [(key, customer, 40.0)]},
                        "deletes": {},
                    }
                )
                continue
            ps = rng.choice(partsupp)
            items = [(key, 1, ps[0], ps[1], 5)]
            order = (key, customer, 100.0)
            update = {
                "inserts": {"orders": [order], "lineitem": items},
                "deletes": {},
            }
            if round_no % 3 == 2 and owned:
                victim_order, victim_items = owned.pop(0)
                update["deletes"] = {
                    "orders": [victim_order],
                    "lineitem": victim_items,
                }
            owned.append((order, items))
            updates.append(update)
        scripts[worker] = updates
    return scripts


def make_stage(scripts: dict[int, list[dict]]):
    def stage(session, worker: int, round_no: int) -> None:
        update = scripts[worker][round_no]
        for table, rows in update["inserts"].items():
            session.insert(table, rows)
        for table, rows in update["deletes"].items():
            session.delete(table, rows)

    return stage


def run_sweep_point(sessions: int, repeats: int = 3):
    """Best-of-N measurement of one session count (fresh server each
    time, so thread-scheduling noise cannot understate a point)."""
    best = None
    tintin = None
    per_session = TOTAL_COMMITS // sessions
    for _ in range(repeats):
        tintin = build_server()
        scripts = build_scripts(tintin.db, sessions, per_session)
        result = measure_concurrent_throughput(
            tintin, sessions, per_session, make_stage(scripts)
        )
        assert result.rejected == 0, "the mixed refresh workload is valid"
        if best is None or result.commits_per_second > best.commits_per_second:
            best = result
    return tintin, best


def run_differential(workers: int = 6, rounds: int = 10):
    """Sequential vs concurrent execution of one scripted workload."""

    def run(policy: str, concurrent: bool):
        import threading

        tintin = build_server(policy=policy)
        scripts = build_scripts(
            tintin.db, workers, rounds, plant_violations=True
        )
        stage = make_stage(scripts)
        outcomes: dict[tuple[int, int], bool] = {}

        def run_worker(worker: int) -> None:
            session = tintin.create_session()
            for round_no in range(rounds):
                stage(session, worker, round_no)
                outcomes[(worker, round_no)] = session.commit().committed

        if concurrent:
            threads = [
                threading.Thread(target=run_worker, args=(w,))
                for w in range(workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        else:
            for worker in range(workers):
                run_worker(worker)
        state = {
            name: sorted(tintin.db.table(name).rows_snapshot())
            for name in ("orders", "lineitem")
        }
        return outcomes, state

    seq_outcomes, seq_state = run("serial", concurrent=False)
    conc_outcomes, conc_state = run("group", concurrent=True)
    assert seq_outcomes == conc_outcomes, (
        "sequential and concurrent commits diverged on accept/reject"
    )
    assert seq_state == conc_state, (
        "sequential and concurrent commits left different final states"
    )
    rejected = sum(1 for ok in seq_outcomes.values() if not ok)
    assert rejected == workers * (rounds // 5), "planted violations caught"
    return {
        "workers": workers,
        "rounds": rounds,
        "updates": len(seq_outcomes),
        "rejected": rejected,
        "sequential_equals_concurrent": True,
    }


#: ISSUE 3 staged-read comparison: 8 sessions, each holding a staged
#: multi-order update, run a 90/10 OLTP read mix (cheap dimension
#: lookups + one pending-update check).  The splice baseline pays the
#: full splice-in/splice-out of every staged row on *every* read and
#: serializes all readers behind the write lock; the overlay-merge
#: path merges at scan time under the shared lock.
READ_SESSIONS = 8
STAGED_ORDERS = 48 if SMOKE else 96
READS_PER_SESSION = 40 if SMOKE else 80
READ_ACCEPTANCE = 2.0 if SMOKE else 4.0

READ_SCRIPT = tuple(
    f"SELECT * FROM customer AS c WHERE c.c_custkey = {key}"
    for key in (11, 42, 77, 123, 200)
) + tuple(
    f"SELECT * FROM nation AS n WHERE n.n_nationkey = {key}"
    for key in (3, 7, 14, 21)
) + (
    "SELECT o.o_orderkey, l.l_linenumber FROM orders AS o, lineitem AS l "
    f"WHERE l.l_orderkey = o.o_orderkey AND o.o_orderkey >= {KEY_BASE}",
)


def stage_reader_sessions(tintin: Tintin, count: int, orders_each: int):
    """One session per reader, each staging a private multi-order
    update (orders + two lineitems each, RF1-style)."""
    rng = random.Random(7)
    partsupp = tintin.db.table("partsupp").rows_snapshot()
    customers = [row[0] for row in tintin.db.table("customer").scan()]
    sessions = []
    for worker in range(count):
        session = tintin.create_session()
        for i in range(orders_each):
            key = KEY_BASE + worker * KEY_STRIDE + i
            ps = rng.choice(partsupp)
            session.insert("orders", [(key, rng.choice(customers), 100.0)])
            session.insert(
                "lineitem",
                [(key, 1, ps[0], ps[1], 5), (key, 2, ps[0], ps[1], 3)],
            )
        sessions.append(session)
    return sessions


def run_staged_reads():
    """Overlay-merge vs splice-baseline aggregate read throughput."""
    tintin = build_server()
    sessions = stage_reader_sessions(tintin, READ_SESSIONS, STAGED_ORDERS)
    # warm up both paths (plan cache, lazily built indexes) so the
    # measurement compares steady-state executors, not first-touch work
    for sql in READ_SCRIPT:
        sessions[0].query(sql)
        sessions[0].query_spliced(sql)
    overlay = measure_staged_read_throughput(
        tintin, sessions, READS_PER_SESSION, READ_SCRIPT, mode="overlay"
    )
    splice = measure_staged_read_throughput(
        tintin, sessions, READS_PER_SESSION, READ_SCRIPT, mode="splice"
    )
    return overlay, splice


_STAGED_READS: dict = {}


def test_differential_sequential_vs_concurrent(benchmark):
    summary = benchmark.pedantic(run_differential, rounds=1, iterations=1)
    assert summary["sequential_equals_concurrent"]


def test_e8_staged_reads(benchmark):
    overlay, splice = benchmark.pedantic(
        run_staged_reads, rounds=1, iterations=1
    )
    _STAGED_READS["payload"] = staged_read_payload(overlay, splice)
    print()
    print("E8: staged-event reads — overlay-merge vs splice baseline")
    print(staged_read_table(overlay, splice))
    # overlay reads are pure: no base-table mutation, no plan churn
    assert overlay.data_version_delta == 0
    assert overlay.plan_cache_invalidations == 0
    speedup = overlay.reads_per_second / splice.reads_per_second
    assert speedup >= READ_ACCEPTANCE, (
        f"overlay-merge reads x{speedup:.2f} over the splice baseline "
        f"is below the {READ_ACCEPTANCE}x acceptance bar"
    )


def run_tracing_overhead(sessions: int = 4):
    """A/B of one sweep point: the stock engine (tracing disabled,
    the default) against the same workload under an enabled in-memory
    tracer.  The disabled run doubles as the structural zero-overhead
    proof — the obs factory, the single decision point every commit
    passes, is spied on and must return None throughout."""
    from repro.obs import RecordingTracer

    per_session = TOTAL_COMMITS // sessions

    tintin = build_server()
    allocated = []
    original = tintin._make_obs

    def spy(*args, **kwargs):
        obs = original(*args, **kwargs)
        if obs is not None:
            allocated.append(obs)
        return obs

    tintin._make_obs = spy
    scripts = build_scripts(tintin.db, sessions, per_session)
    disabled = measure_concurrent_throughput(
        tintin, sessions, per_session, make_stage(scripts)
    )
    assert not allocated, "disabled tracing allocated observation state"

    tintin = build_server()
    tracer = RecordingTracer()
    tintin.set_tracer(tracer)
    scripts = build_scripts(tintin.db, sessions, per_session)
    enabled = measure_concurrent_throughput(
        tintin, sessions, per_session, make_stage(scripts)
    )
    assert tracer.spans(), "enabled tracing recorded nothing"
    return disabled, enabled


def test_e8_tracing_overhead(benchmark):
    disabled, enabled = benchmark.pedantic(
        run_tracing_overhead, rounds=1, iterations=1
    )
    print()
    print("E8: tracing overhead — disabled (default) vs RecordingTracer")
    print(f"  disabled {disabled.commits_per_second:10.1f} commits/s")
    print(
        f"  enabled  {enabled.commits_per_second:10.1f} commits/s "
        f"(x{disabled.commits_per_second / enabled.commits_per_second:.2f})"
    )
    # a full in-memory tracer records ~6 spans per commit; that must
    # not halve throughput on a validation-dominated workload (and the
    # disabled path was proven allocation-free above)
    assert enabled.commits_per_second >= 0.5 * disabled.commits_per_second


def test_e8_report(benchmark):
    def sweep():
        results = []
        last_tintin = None
        for sessions in SESSION_SWEEP:
            tintin, result = run_sweep_point(sessions)
            last_tintin = tintin
            results.append(result)
        return results, last_tintin

    (results, tintin) = benchmark.pedantic(sweep, rounds=1, iterations=1)
    db = tintin.db
    differential = run_differential(workers=4, rounds=5)
    print()
    print("E8: multi-session group commit — aggregate commits/sec by sessions")
    print(concurrency_table(results))
    print(plan_cache_line(db))
    print(durability_line(tintin))
    payload = concurrency_payload(results, differential, db)
    if "payload" not in _STAGED_READS:
        _STAGED_READS["payload"] = staged_read_payload(*run_staged_reads())
    payload["staged_reads"] = _STAGED_READS["payload"]

    by_sessions = {r.sessions: r for r in results}
    top = max(SESSION_SWEEP)
    speedup = (
        by_sessions[top].commits_per_second
        / by_sessions[1].commits_per_second
    )
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"aggregate throughput x{speedup:.2f} at {top} sessions is below "
        f"the {ACCEPTANCE_SPEEDUP}x acceptance bar ({payload})"
    )
    if not SMOKE:
        write_json_baseline("BENCH_concurrency.json", payload)
