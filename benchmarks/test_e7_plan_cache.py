"""E7 (plan cache) — amortizing view compilation across commits.

The paper's premise is that integrity checking cost scales with the
*update*, not the database.  The seed engine honoured that for data
access but not for compilation: every ``safeCommit`` re-parsed and
re-planned ``SELECT * FROM <edc_view>`` for each executed violation
view.  This experiment measures repeated stage-then-safeCommit
throughput with N assertions installed, with the prepared plan cache on
(each view compiled once at ``add_assertion`` time) vs off (the seed's
fresh-plan path).

Acceptance: with >= 3 assertions installed the cached path must sustain
at least 5x the fresh-plan commit rate, while producing identical
commit decisions (the differential tests in
``tests/test_planner_differential.py`` prove result equality).
"""

import pytest

from repro import Database, Tintin
from repro.bench import (
    measure_commit_rate,
    plan_cache_payload,
    plan_cache_table,
)

SCHEMA = [
    "CREATE TABLE customers (cid INTEGER PRIMARY KEY, region INTEGER)",
    "CREATE TABLE orders (id INTEGER PRIMARY KEY, cid INTEGER NOT NULL, "
    "total INTEGER, FOREIGN KEY (cid) REFERENCES customers (cid))",
    "CREATE TABLE items (order_id INTEGER, n INTEGER, qty INTEGER, "
    "PRIMARY KEY (order_id, n), "
    "FOREIGN KEY (order_id) REFERENCES orders (id))",
]

BASE_ASSERTIONS = [
    "CREATE ASSERTION atLeastOneItem CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE NOT EXISTS ("
    "SELECT * FROM items AS i WHERE i.order_id = o.id)))",
    "CREATE ASSERTION itemHasOrder CHECK (NOT EXISTS ("
    "SELECT * FROM items AS i WHERE NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE o.id = i.order_id)))",
    "CREATE ASSERTION orderHasCustomer CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE NOT EXISTS ("
    "SELECT * FROM customers AS c WHERE c.cid = o.cid)))",
]


def _join_assertion(k: int) -> str:
    """A join-bearing bound assertion (distinct per k to force distinct
    views): no cheap order may carry an oversized item quantity."""
    return (
        f"CREATE ASSERTION qtyBound{k} CHECK (NOT EXISTS ("
        f"SELECT * FROM orders AS o, items AS i "
        f"WHERE i.order_id = o.id AND i.qty > {100 + k} "
        f"AND o.total > {400 + k}))"
    )


def assertion_suite(count: int) -> list[str]:
    return (BASE_ASSERTIONS + [_join_assertion(k) for k in range(20)])[:count]


COMMITS = 300
ASSERTION_COUNTS = (3, 6, 10)


def build_tintin(cache_enabled: bool, assertions: int) -> Tintin:
    db = Database("e7")
    db.plan_cache_enabled = cache_enabled
    for sql in SCHEMA:
        db.execute(sql)
    tintin = Tintin(db)
    tintin.install()
    for sql in assertion_suite(assertions):
        tintin.add_assertion(sql)
    return tintin


def stage_consistent_update(db: Database, i: int) -> None:
    """Propose one small, assertion-satisfying update through the
    capture triggers (row-level API: no DML parsing on either side)."""
    key = i + 1
    db.insert_rows("customers", [(key, key % 5)])
    db.insert_rows("orders", [(key, key, 100)])
    db.insert_rows("items", [(key, 1, 5)])


def run_pair(assertions: int, commits: int = COMMITS):
    """Measure one (cached, fresh-plan) pair at a given assertion count."""
    results = []
    for cache_enabled in (True, False):
        tintin = build_tintin(cache_enabled, assertions)
        results.append(
            measure_commit_rate(
                tintin,
                lambda i, db=tintin.db: stage_consistent_update(db, i),
                commits,
            )
        )
    return tuple(results)


@pytest.mark.parametrize(
    "cache_enabled", [True, False], ids=["cached", "fresh-plan"]
)
def test_commit_rate(benchmark, cache_enabled):
    """Raw commit loop at 6 assertions, one timed round per variant."""

    def loop():
        return run_once(cache_enabled)

    def run_once(enabled):
        tintin = build_tintin(enabled, 6)
        return measure_commit_rate(
            tintin,
            lambda i, db=tintin.db: stage_consistent_update(db, i),
            COMMITS,
        )

    result = benchmark.pedantic(loop, rounds=1, iterations=1)
    assert result.commits == COMMITS


def test_e7_report(benchmark):
    def build():
        return [run_pair(n) for n in ASSERTION_COUNTS]

    pairs = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("E7: prepared-plan cache — commits/sec, cache on vs fresh-plan path")
    print(plan_cache_table(pairs))
    payload = plan_cache_payload(pairs)

    by_count = {cached.assertions: (cached, fresh) for cached, fresh in pairs}
    # acceptance: >= 5x commits/sec with >= 3 assertions installed.
    # One re-measure is allowed per count before failing so a noisy
    # neighbour on a shared CI runner cannot flake an 8x+ typical ratio.
    for count in (6, 10):
        cached, fresh = by_count[count]
        speedup = cached.commits_per_second / fresh.commits_per_second
        if speedup < 5.0:
            cached, fresh = run_pair(count)
            speedup = max(
                speedup, cached.commits_per_second / fresh.commits_per_second
            )
        assert speedup >= 5.0, (
            f"plan cache speedup x{speedup:.1f} at {count} assertions "
            f"is below the 5x acceptance bar ({payload})"
        )
