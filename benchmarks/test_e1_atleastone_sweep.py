"""E1 — the paper's headline experiment (§1 ¶5, §4).

    "TINTIN allows checking the assertion atLeastOneLineItem
     efficiently in data sets consisting of 1GB to 5GB of data and with
     1MB to 5MB of tuple insertions/deletions, with times ranging from
     0.01 to 0.04 seconds ... much better than the time required for
     directly executing the query inside the assertions on the
     database, ranging from x89 to x2662 times faster."

The grid sweeps data scale x{1,2,5} and update size x{1,2,5} (scaled to
this pure-Python engine; the *shape* is what reproduces: incremental
time tracks update size and stays flat in data size, the full check
grows linearly with data, and the speedup factor grows with the
data/update ratio).
"""

import pytest

from conftest import applied_workload, cached_workload
from repro.bench import (
    CellResult,
    durability_line,
    e1_table,
    plan_cache_line,
    time_call,
)
from repro.tpch import AT_LEAST_ONE_LINEITEM

#: data-scale axis, ratio 1:2:5 like the paper's 1-5 GB
SCALES = (0.004, 0.008, 0.02)
#: update-size axis (refresh orders), ratio 1:2:5 like the paper's 1-5 MB
UPDATES = (10, 20, 50)

ASSERTIONS = (AT_LEAST_ONE_LINEITEM,)


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("update_orders", UPDATES)
def test_tintin_incremental_check(benchmark, scale, update_orders):
    """Time of safeCommit's check phase over the captured update."""
    workload = cached_workload(scale, update_orders, ASSERTIONS)
    result = benchmark(workload.check_incremental)
    assert result.committed  # refresh batches are valid


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("update_orders", UPDATES)
def test_full_nonincremental_check(benchmark, scale, update_orders):
    """Time of executing the assertion's defining query in full."""
    workload = applied_workload(scale, update_orders, ASSERTIONS)
    violations = benchmark(workload.check_full)
    assert violations == []


def test_e1_report(benchmark):
    """Regenerate the paper's comparison table (printed to stdout)."""

    def build_table():
        cells = []
        for scale in SCALES:
            for update_orders in UPDATES:
                workload = cached_workload(scale, update_orders, ASSERTIONS)
                incremental = time_call(workload.check_incremental, repeat=3)
                applied = applied_workload(scale, update_orders, ASSERTIONS)
                full = time_call(applied.check_full, repeat=3)
                cells.append(
                    CellResult(
                        scale=scale,
                        data_rows=workload.data_rows,
                        update_rows=workload.update_rows,
                        tintin_seconds=incremental,
                        baseline_seconds=full,
                        committed=True,
                    )
                )
        return cells

    cells = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print("E1: atLeastOneLineItem, incremental vs non-incremental")
    print(e1_table(cells))
    print(plan_cache_line(cached_workload(SCALES[-1], UPDATES[-1], ASSERTIONS).db))
    print(durability_line(cached_workload(SCALES[-1], UPDATES[-1], ASSERTIONS).tintin))
    # the paper's qualitative claims must hold:
    # (1) TINTIN always wins
    assert all(c.speedup > 1.0 for c in cells)
    # (2) the speedup grows with data size at fixed update size
    by_update = {}
    for cell in cells:
        by_update.setdefault(cell.update_rows // 40, []).append(cell)
    largest_scale = [c for c in cells if c.scale == max(SCALES)]
    smallest_scale = [c for c in cells if c.scale == min(SCALES)]
    assert (
        max(c.speedup for c in largest_scale)
        > min(c.speedup for c in smallest_scale)
    )
    # (3) the full check's cost grows roughly linearly with data size
    small_full = min(c.baseline_seconds for c in smallest_scale)
    large_full = min(c.baseline_seconds for c in largest_scale)
    assert large_full > small_full * 2
