"""E2 — assertions of different complexity (§4).

    "We have checked some assertions of different complexity with
     TINTIN (like the one of our running example) ... The time TINTIN
     required for checking the assertions ranges from 0.01 to 1.29
     seconds and it is always better than in the non incremental
     approach."

Six assertions ordered by complexity (single-table built-in, join,
simple negation, composite-key negation, filtered negation, ...)
checked against the same mixed refresh batch.  The reproduced claims:
check time rises with assertion complexity, and the incremental check
beats the full check for every assertion.
"""

import pytest

from conftest import applied_workload, cached_workload
from repro.bench import plan_cache_line, series_table, time_call
from repro.tpch import COMPLEXITY_SUITE, by_name

SCALE = 0.008
UPDATE_ORDERS = 20

NAMES = [spec.name for spec in COMPLEXITY_SUITE]


@pytest.mark.parametrize("name", NAMES)
def test_incremental_by_complexity(benchmark, name):
    workload = cached_workload(SCALE, UPDATE_ORDERS, (by_name(name),))
    result = benchmark(workload.check_incremental)
    assert result.committed


@pytest.mark.parametrize("name", NAMES)
def test_full_by_complexity(benchmark, name):
    workload = applied_workload(SCALE, UPDATE_ORDERS, (by_name(name),))
    violations = benchmark(workload.check_full)
    assert violations == []


def test_e2_report(benchmark):
    """Regenerate the complexity table (printed to stdout)."""

    def build_rows():
        rows = []
        for name in NAMES:
            spec = by_name(name)
            workload = cached_workload(SCALE, UPDATE_ORDERS, (spec,))
            incremental = time_call(workload.check_incremental, repeat=3)
            applied = applied_workload(SCALE, UPDATE_ORDERS, (spec,))
            full = time_call(applied.check_full, repeat=3)
            rows.append((name, incremental, full))
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print()
    print(
        f"E2: assertion complexity sweep "
        f"(scale={SCALE}, {UPDATE_ORDERS} refresh orders)"
    )
    print(series_table("assertion", rows))
    print(plan_cache_line(cached_workload(SCALE, UPDATE_ORDERS, (by_name(NAMES[-1]),)).db))
    # TINTIN always beats the non-incremental check (paper §4)
    for name, incremental, full in rows:
        assert incremental < full, f"{name}: {incremental} !< {full}"
    # the range spans roughly two orders of magnitude across complexity,
    # mirroring the paper's 0.01-1.29 s spread
    times = [incremental for _, incremental, _ in rows]
    assert max(times) > min(times) * 2
