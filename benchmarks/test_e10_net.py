"""E10 (network) — remote commit latency and behavior past saturation.

A loopback :class:`~repro.net.TintinServer` fronts a durable engine;
a fleet of :class:`~repro.net.TintinClient` threads drives it through
three phases:

**baseline (closed loop)**
    each client stages one unique row and commits, back to back — the
    measured aggregate rate is the server's sustainable capacity and
    the latency percentiles its uncongested profile.  Durability runs
    in ``commit`` mode (one window + one fsync per commit): a fixed
    service rate, so "2x saturation" is a real overload — ``batch``
    mode's group commit would simply absorb bigger groups;

**overload (open loop, ~2x saturation)**
    clients send on a fixed schedule at twice the measured capacity,
    ignoring SLOWDOWN pacing — a non-cooperative arrival process that
    never self-limits, which is exactly the regime where an unbounded
    queue collapses.  Acceptance: the admission queue
    **sheds** (OverloadError with retry-after) instead of queueing
    without bound, the depth never exceeds ``max_depth``, and the p99
    of *admitted* commits stays bounded (the waiting room is finite,
    so admitted work inherits a finite wait);

**drain (graceful shutdown under load)**
    ``server.shutdown()`` runs while clients are still sending: late
    arrivals get retriable shutting-down verdicts, admitted work
    finishes, and — the invariant the WAL exists for — **every commit
    acknowledged to any client is present after recovery**.

Set ``E10_SMOKE=1`` (CI) for a shorter run with the same invariant
checks; the committed numbers live in ``BENCH_net.json``.
"""

from __future__ import annotations

import os
import threading
import time

from repro.core import Tintin
from repro.errors import (
    ConnectionLost,
    DeadlineExceeded,
    OverloadError,
    ReproError,
)
from repro.bench import write_json_baseline
from repro.net import TintinClient

SMOKE = os.environ.get("E10_SMOKE") == "1"

#: baseline subset: fewer concurrent commits than ``MAX_DEPTH``, so
#: the uncongested profile is measured without any shedding
BASELINE_CLIENTS = 3 if SMOKE else 6
#: the full fleet: one blocking connection carries at most one
#: outstanding commit, so overload needs (well) more connections than
#: the waiting room holds — that *is* the overload scenario: more
#: concurrent writers than the server is willing to queue for
CLIENTS = 12 if SMOKE else 24
BASELINE_SECONDS = 1.0 if SMOKE else 2.5
OVERLOAD_SECONDS = 1.5 if SMOKE else 3.0
MAX_DEPTH = 4 if SMOKE else 8
COMMIT_WORKERS = 2
OVERLOAD_FACTOR = 2.0
COMMIT_TIMEOUT = 5.0
#: the admitted-work p99 bound at 2x saturation.  Admitted latency is
#: bounded by construction (finite waiting room over a finite service
#: time); the wall-clock bar is deliberately loose — this is a shared
#: single-core VM — and the committed baseline records the real value.
P99_BOUND_SECONDS = 10.0
#: per-commit validation work: enough assertions that a commit window
#: costs real time, so saturation is reachable without artificial
#: stalls
ASSERTION_COUNT = 6

DDL = "CREATE TABLE entries (id INT NOT NULL, bucket INT, qty INT)"
STRIDE = 1_000_000


def build_engine(path: str) -> Tintin:
    tintin = Tintin.open(path, durability="commit")
    tintin.db.execute(DDL)
    tintin.install()
    for k in range(ASSERTION_COUNT):
        tintin.add_assertion(
            f"CREATE ASSERTION qtyBound{k} CHECK (NOT EXISTS ("
            f"SELECT * FROM entries AS e WHERE e.qty < {-(k + 1)}))"
        )
    return tintin


def percentile(sorted_values: list, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def summarize(latencies: list) -> dict:
    ordered = sorted(latencies)
    return {
        "count": len(ordered),
        "p50_ms": round(percentile(ordered, 0.50) * 1e3, 3),
        "p95_ms": round(percentile(ordered, 0.95) * 1e3, 3),
        "p99_ms": round(percentile(ordered, 0.99) * 1e3, 3),
        "max_ms": round((ordered[-1] if ordered else 0.0) * 1e3, 3),
    }


class Fleet:
    """N clients committing unique single-row inserts; every
    acknowledged id is recorded for the recovery audit."""

    def __init__(self, address, clients: int):
        self.address = address
        self.clients = [
            TintinClient(*address, timeout=30, client_name=f"e10-{i}")
            for i in range(clients)
        ]
        self.acked: list[int] = []
        self.latencies: list[float] = []
        self.outcomes = {
            "committed": 0,
            "overload": 0,
            "deadline": 0,
            "shutting_down": 0,
            "connection_lost": 0,
            "other_error": 0,
        }
        self._lock = threading.Lock()

    def one_commit(self, client, unique_id: int, open_loop: bool) -> None:
        started = time.perf_counter()
        try:
            client.insert("entries", [(unique_id, unique_id % 7, 1)])
            verdict = client.commit(
                timeout=COMMIT_TIMEOUT, retry=not open_loop
            )
            elapsed = time.perf_counter() - started
            with self._lock:
                if verdict["committed"]:
                    self.outcomes["committed"] += 1
                    self.acked.append(unique_id)
                    self.latencies.append(elapsed)
        except OverloadError:
            with self._lock:
                self.outcomes["overload"] += 1
            client.discard()  # drop the staged row; it was never admitted
        except DeadlineExceeded:
            with self._lock:
                self.outcomes["deadline"] += 1
            try:
                client.discard()
            except (ReproError, ConnectionLost):
                pass
        except ConnectionLost:
            with self._lock:
                self.outcomes["connection_lost"] += 1
        except ReproError:
            with self._lock:
                self.outcomes["other_error"] += 1

    def run_closed_loop(self, seconds: float, count=None) -> float:
        """Back-to-back commits on the first ``count`` clients;
        returns aggregate commits/sec."""
        clients = self.clients[: count if count is not None else None]
        stop = time.perf_counter() + seconds
        counts = [0] * len(clients)

        def worker(index, client):
            seq = 0
            while time.perf_counter() < stop:
                self.one_commit(
                    client, index * STRIDE + seq, open_loop=False
                )
                seq += 1
            counts[index] = seq

        started = time.perf_counter()
        threads = [
            threading.Thread(target=worker, args=(i, c))
            for i, c in enumerate(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        return sum(counts) / elapsed

    def run_open_loop(self, rate_per_second: float, seconds: float) -> None:
        """Fixed-schedule arrivals at ``rate_per_second`` total: a
        client that falls behind schedule stops sleeping — offered
        load does not yield to congestion."""
        per_client = rate_per_second / len(self.clients)
        interval = 1.0 / per_client

        def worker(index, client):
            client.pacing = False  # open loop: non-cooperative arrivals
            base = 10 * STRIDE + index * STRIDE
            start = time.perf_counter()
            stop = start + seconds
            seq = 0
            while True:
                scheduled = start + seq * interval
                now = time.perf_counter()
                if scheduled > stop:
                    return
                if scheduled > now:
                    time.sleep(scheduled - now)
                self.one_commit(client, base + seq, open_loop=True)
                seq += 1

        threads = [
            threading.Thread(target=worker, args=(i, c))
            for i, c in enumerate(self.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for client in self.clients:
            client.pacing = True

    def snapshot_and_reset_latencies(self) -> list:
        with self._lock:
            latencies = self.latencies
            self.latencies = []
        return latencies

    def close(self) -> None:
        for client in self.clients:
            client.close_socket()


def test_e10_remote_load_shedding_and_drain(tmp_path):
    path = str(tmp_path / "e10")
    tintin = build_engine(path)
    server = tintin.listen(
        max_depth=MAX_DEPTH,
        commit_workers=COMMIT_WORKERS,
        default_commit_timeout=COMMIT_TIMEOUT,
    )
    fleet = Fleet(server.address, CLIENTS)
    try:
        # phase 1: sustainable capacity + uncongested latency profile
        # (a subset smaller than the waiting room: nothing is shed)
        capacity = fleet.run_closed_loop(
            BASELINE_SECONDS, count=BASELINE_CLIENTS
        )
        baseline_latency = summarize(fleet.snapshot_and_reset_latencies())
        assert capacity > 0

        # phase 2: open-loop at ~2x capacity
        fleet.run_open_loop(capacity * OVERLOAD_FACTOR, OVERLOAD_SECONDS)
        overload_latency = summarize(fleet.snapshot_and_reset_latencies())
        admission = server.metrics()["admission"]

        # clean shedding, not unbounded queueing: overload produced
        # explicit retriable verdicts and the backlog never exceeded
        # the configured bound
        assert fleet.outcomes["overload"] + fleet.outcomes["deadline"] > 0
        assert admission["shed_total"] + admission["deadline_rejected"] > 0
        assert admission["max_depth_seen"] <= MAX_DEPTH
        # admitted work kept a bounded p99 even past saturation
        assert overload_latency["p99_ms"] <= P99_BOUND_SECONDS * 1e3

        # phase 3: graceful shutdown under residual load
        late_client = TintinClient(*server.address, timeout=10)
        drained = server.shutdown(drain_timeout=30)
        assert drained is True
        late_client.close_socket()
    finally:
        fleet.close()
        if not server._stopped.is_set():
            server.shutdown(drain_timeout=5)

    # the recovery audit: every acknowledged commit survived
    reopened = Tintin.open(path)
    try:
        present = {
            row[0]
            for row in reopened.db.query("SELECT id FROM entries").rows
        }
    finally:
        reopened.close()
    acked = set(fleet.acked)
    lost = acked - present
    assert not lost, f"{len(lost)} acknowledged commits lost: {sorted(lost)[:5]}"

    payload = {
        "experiment": "E10 network load shedding",
        "smoke": SMOKE,
        "config": {
            "clients": CLIENTS,
            "baseline_clients": BASELINE_CLIENTS,
            "max_depth": MAX_DEPTH,
            "commit_workers": COMMIT_WORKERS,
            "overload_factor": OVERLOAD_FACTOR,
            "assertions": ASSERTION_COUNT,
            "durability": "commit",
        },
        "capacity_commits_per_sec": round(capacity, 1),
        "baseline_latency": baseline_latency,
        "overload_latency_admitted": overload_latency,
        "outcomes": fleet.outcomes,
        "admission": admission,
        "acked_commits": len(acked),
        "acked_commits_recovered": len(acked & present),
        "acked_commits_lost": len(lost),
        "drained_cleanly": drained,
    }
    if not SMOKE:
        write_json_baseline(
            os.path.join(os.path.dirname(__file__), "..", "BENCH_net.json"),
            payload,
        )
