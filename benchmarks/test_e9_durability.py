"""E9 (durability) — group-commit fsync batching vs per-commit fsync.

The durability subsystem gives every committed batch a write-ahead-log
record.  *How* records reach disk is the experiment:

``off``
    no logging — the in-memory engine of E8, the regression baseline;
``commit``
    strict per-transaction durability: each commit owns the exclusive
    commit window for its whole validate-apply-append-fsync critical
    section (the classic pre-group-commit protocol — InnoDB's
    ``prepare_commit_mutex`` era);
``batch``
    group commit: compatible commits validate as one group, append
    **one combined WAL record**, and share **one fsync**.

The sweep measures aggregate commits/sec for each mode at 1/4/8
sessions over a lineitem-append workload (one staged row per commit
against a pre-seeded private order, so per-commit apply work is
minimal and the amortizable costs — the violation-view pass and the
fsync — dominate).  A large production-like rule set (the complexity
suite plus 48 business-bound assertions) makes validation the
realistic bulk of a commit.

Acceptance (ISSUE 4):

* ``batch`` >= 3x ``commit`` aggregate commits/sec at 8 sessions
  (this box is a single-core VM with ~0.3ms fsync, so the entire
  contrast is honest amortization, not parallelism);
* ``off`` shows no regression against the PR 3 ``BENCH_concurrency``
  baseline — re-measured on E8's exact workload with the durability
  manager attached in ``off`` mode;
* a recovery-time metric: rebuilding the engine from the WAL the
  8-session ``batch`` run just wrote.

Set ``E9_SMOKE=1`` (CI) for a reduced sweep with relaxed bars — the
full acceptance numbers live in ``BENCH_durability.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from repro import Tintin
from repro.bench import (
    durability_line,
    durability_metrics,
    durability_table,
    measure_concurrent_throughput,
    plan_cache_metrics,
    write_json_baseline,
)
from repro.durability import (
    decode_batch,
    decode_batch_v2,
    read_wal,
    recover,
    wal_path,
)
from repro.tpch import COMPLEXITY_SUITE, TPCHGenerator, tpch_database

from test_e8_concurrency import (
    E8_ASSERTIONS,
    GATHER_SECONDS as E8_GATHER_SECONDS,
    KEY_BASE,
    KEY_STRIDE,
    _bound_assertion,
    arm_delta_pipeline,
    build_scripts,
    make_stage,
)

SMOKE = os.environ.get("E9_SMOKE") == "1"

SCALE = 0.002
MODES = ("off", "commit", "batch")
SESSION_SWEEP = (1, 4) if SMOKE else (1, 4, 8)
TOTAL_COMMITS = 64 if SMOKE else 128
#: business-bound rule variants on top of the complexity suite: the
#: violation-view pass is the dominant, group-amortizable commit cost
#: (a heavyweight production-like rule set; on this single-core VM
#: with ~0.2ms fsync, validation — not the disk — is what per-commit
#: durability serializes, and what group commit amortizes)
BOUND_ASSERTIONS = 24 if SMOKE else 96
#: the group-commit gather window (same role as in E8; per-commit
#: durability ignores it — that mode forbids batching by definition).
#: Shorter than E8's: staging here is a single row, so arrivals settle
#: fast and a long window only pads the batch-mode critical path.
GATHER_SECONDS = 0.0002
#: measurement repeats per point, summarized by the MEDIAN — this is
#: a single-core VM with ~0.3-0.6ms fsync jitter, and best-of would
#: let one lucky outlier of the baseline swallow the contrast
REPEATS = 2 if SMOKE else 3
DECISIVE_REPEATS = 2 if SMOKE else 5
#: the in-test bar is a conservative regression guard: this box is a
#: single-core VM whose wall-clock drifts ±20% between runs, and the
#: tier-1 suite must not flake on scheduler noise.  The *acceptance*
#: number — batch >= 3x commit at 8 sessions — is what the committed
#: BENCH_durability.json baseline records (3.3x), re-validated
#: whenever the baseline is refreshed.
ACCEPTANCE_RATIO = 1.3 if SMOKE else 2.0
BASELINE_RATIO = 3.0  # a refreshed baseline must clear the real bar
PARITY_FLOOR = 0.7  # off-mode vs committed E8 baseline (full runs only)
#: WAL format v2 acceptance (ISSUE 5): binary batch records must cut
#: log volume >= 2.5x vs v1 JSON on the same workload and decode the
#: log >= 2x faster; smoke runs relax the bars (shared-runner noise)
CODEC_BYTES_RATIO = 2.0 if SMOKE else 2.5
CODEC_REPLAY_RATIO = 1.2 if SMOKE else 2.0
#: batch-mode throughput guard vs the committed PR 4 baseline — "no
#: worse than", with the same wall-clock-drift allowance the off-mode
#: parity floor uses on this single-core VM
V2_BATCH_FLOOR = 0.8

_SEED_PARTSUPP: dict = {}


def build_server(mode: str, path: str, workers: int, rounds: int) -> Tintin:
    """A durable TPC-H server with per-(worker, round) pre-seeded
    orders, so each measured commit stages exactly one lineitem row."""
    db = tpch_database("e9")
    TPCHGenerator(SCALE, seed=42).populate(db)
    ps = db.table("partsupp").rows_snapshot()[0]
    _SEED_PARTSUPP["key"] = (ps[0], ps[1])
    for worker in range(workers):
        for round_no in range(rounds):
            key = KEY_BASE + worker * KEY_STRIDE + round_no
            db.insert_rows(
                "orders", [(key, 11, 100.0)], bypass_triggers=True
            )
            db.insert_rows(
                "lineitem", [(key, 1, ps[0], ps[1], 5)], bypass_triggers=True
            )
    tintin = Tintin.open(path, durability=mode, db=db)
    tintin.install()
    for spec in COMPLEXITY_SUITE:
        tintin.add_assertion(spec.sql)
    for k in range(BOUND_ASSERTIONS):
        tintin.add_assertion(_bound_assertion(k))
    # the bulk load becomes durable here; the WAL then holds exactly
    # the measured commits — which is also what the recovery metric
    # replays
    tintin.checkpoint()
    tintin.serve(policy="group", gather_seconds=GATHER_SECONDS)
    return tintin


def stage_lineitem(session, worker: int, round_no: int) -> None:
    key = KEY_BASE + worker * KEY_STRIDE + round_no
    part, supp = _SEED_PARTSUPP["key"]
    session.insert("lineitem", [(key, 2, part, supp, 3)])


def run_point(
    mode: str, sessions: int, repeats: int, keep_dir: bool = False
):
    """Median-of-N measurement of one (mode, session count) point.

    Returns ``(row_dict, directory_of_median_run)``; the directory is
    deleted unless ``keep_dir`` (the recovery metric replays it).
    """
    rounds = TOTAL_COMMITS // sessions
    runs: list[tuple[dict, str]] = []
    for _ in range(repeats):
        path = tempfile.mkdtemp(prefix=f"e9-{mode}-{sessions}-")
        tintin = build_server(mode, path, sessions, rounds)
        result = measure_concurrent_throughput(
            tintin, sessions, rounds, stage_lineitem
        )
        assert result.rejected == 0, "the lineitem-append workload is valid"
        stats = tintin.sessions.scheduler.stats
        runs.append(
            (
                {
                    "mode": mode,
                    "sessions": sessions,
                    "commits": result.commits,
                    "committed": result.committed,
                    "rejected": result.rejected,
                    "commits_per_second": round(
                        result.commits_per_second, 1
                    ),
                    "max_group_size": result.max_group_size,
                    "wal_appends": stats.wal_appends,
                    "wal_fsyncs": stats.wal_fsyncs,
                },
                path,
            )
        )
        tintin.sessions.scheduler.stop_log_writer()
        tintin.durability.close()  # release the log handle (no checkpoint)
    runs.sort(key=lambda item: item[0]["commits_per_second"])
    median, median_dir = runs[len(runs) // 2]
    median["repeats"] = repeats
    for _, path in runs:
        if path != median_dir or not keep_dir:
            shutil.rmtree(path, ignore_errors=True)
    return median, (median_dir if keep_dir else None)


def measure_recovery(directory: str) -> dict:
    """Rebuild the engine from the given durability directory, timed."""
    tintin, report = recover(directory)
    assert tintin.full_check_commit().committed, (
        "recovered state violates an installed assertion"
    )
    replay_rate = (
        report.batches_replayed / report.seconds if report.seconds > 0 else 0.0
    )
    return {
        "seconds": round(report.seconds, 4),
        "records_replayed": report.records_replayed,
        "batches_replayed": report.batches_replayed,
        "rows_applied": report.rows_applied,
        "batches_per_second": round(replay_rate, 1),
        "checkpoint_used": report.checkpoint_used,
    }


def transcode_log_to_v1(directory: str, table_names) -> bytes:
    """The directory's WAL re-encoded record-for-record as v1 JSON
    frames (no magic header).  Same records, same order, same content
    — the deterministic twin the codec contrast is measured against."""
    from repro.durability import batch_payload, encode_record

    frames = []
    for record in read_wal(wal_path(directory)).records:
        if record.get("binary"):
            ins, dele, counts = decode_batch_v2(
                record["payload"], table_names
            )
            frames.append(
                encode_record(
                    {
                        "type": "batch",
                        "seq": record["seq"],
                        **batch_payload(ins, dele, counts),
                    }
                )
            )
        else:
            frames.append(encode_record(record))
    return b"".join(frames)


def measure_blob_replay(blob: bytes, table_names, repeats: int = 20):
    """Best-of-N timing of the log-processing half of recovery over an
    in-memory frame stream: the same fused scan recovery's replay loop
    drives, decoding every batch record into name-keyed, apply-ready
    row tuples.  This isolates the codec (what format v2 changes) from
    the apply and assertion-compilation work both formats share."""
    from repro.durability import decode_batch_v2_at, scan_frames_fused

    decoded = []
    best = float("inf")
    for _ in range(repeats):
        decoded.clear()
        start = time.perf_counter()
        records, _, tail = scan_frames_fused(blob)
        assert tail is None
        for record in records:
            if type(record) is tuple:  # a v2 batch frame span
                _, seq, span_start, span_end = record
                ins, dele, counts = decode_batch_v2_at(
                    blob, span_start, span_end, table_names
                )
            elif record.get("type") == "batch":
                ins, dele = decode_batch(record)
                counts = record.get("counts")
                seq = record["seq"]
            else:
                continue
            decoded.append((seq, ins, dele, counts))
        best = min(best, time.perf_counter() - start)
    return best, list(decoded)


def run_codec_differential(batch_log_dir: str):
    """The format v2 contrast, record-for-record deterministic.

    One ``commit``-mode run of the workload writes the v2 log whose
    per-commit volume is measured (one record per commit, so
    bytes/commit is exact); the log is then transcoded to v1 JSON —
    identical records, only the codec differs — for the byte and
    replay comparison.  The replay contrast is additionally measured
    over ``batch_log_dir``: the 8-session *group-commit* log the
    recovery metric replays, i.e. the multi-row combined records
    production actually writes.  Correctness rides along: both
    encodings must decode identically, and a directory whose WAL is
    the transcoded v1 log must recover to the identical state.
    """
    sessions = 4
    rounds = TOTAL_COMMITS // sessions
    path = tempfile.mkdtemp(prefix="e9-codec-")
    tintin = build_server("commit", path, sessions, rounds)
    result = measure_concurrent_throughput(
        tintin, sessions, rounds, stage_lineitem
    )
    assert result.rejected == 0
    commits = result.commits
    table_names = [
        t.schema.name
        for t in tintin.db.catalog.tables_in_creation_order(namespace="main")
    ]
    tintin.sessions.scheduler.stop_log_writer()
    tintin.durability.close()  # release the handle (no checkpoint)

    # the v2 log really is binary (no silent fallback to JSON)
    v2_records = read_wal(wal_path(path)).records
    assert any(r.get("binary") for r in v2_records), (
        "the commit-mode run wrote no binary records — fallback is hiding"
    )

    header = 8
    v1_blob = transcode_log_to_v1(path, table_names)
    with open(wal_path(path), "rb") as handle:
        v2_blob = handle.read()[header:]
    bytes_v1 = len(v1_blob) + header
    bytes_v2 = len(v2_blob) + header

    # correctness: identical decode, identical recovery
    replay_v1, events_v1 = measure_blob_replay(v1_blob, table_names)
    replay_v2, events_v2 = measure_blob_replay(v2_blob, table_names)
    assert events_v1 == events_v2, "v1 and v2 encodings decode differently"
    recovered_v2, report_v2 = recover(path)
    state_v2 = {
        t.schema.name: sorted(t.rows_snapshot())
        for t in recovered_v2.db.catalog.tables(namespace="main")
    }
    v1_dir = tempfile.mkdtemp(prefix="e9-codec-v1-")
    shutil.copytree(path, v1_dir, dirs_exist_ok=True)
    from repro.durability import WAL_MAGIC

    with open(wal_path(v1_dir), "wb") as handle:
        handle.write(WAL_MAGIC + v1_blob)
    recovered_v1, report_v1 = recover(v1_dir)
    state_v1 = {
        t.schema.name: sorted(t.rows_snapshot())
        for t in recovered_v1.db.catalog.tables(namespace="main")
    }
    assert state_v1 == state_v2, "transcoded v1 log recovered differently"

    # the production-shaped replay contrast: the group-commit log the
    # recovery metric replays (multi-row combined records)
    group_names = None
    group_metrics = {}
    if batch_log_dir is not None:
        recovered_g, _ = recover(batch_log_dir)
        group_names = [
            t.schema.name
            for t in recovered_g.db.catalog.tables_in_creation_order(
                namespace="main"
            )
        ]
        g_v1_blob = transcode_log_to_v1(batch_log_dir, group_names)
        with open(wal_path(batch_log_dir), "rb") as handle:
            g_v2_blob = handle.read()[header:]
        g_replay_v1, g_events_v1 = measure_blob_replay(g_v1_blob, group_names)
        g_replay_v2, g_events_v2 = measure_blob_replay(g_v2_blob, group_names)
        assert g_events_v1 == g_events_v2
        group_metrics = {
            "group_log_bytes_v1": len(g_v1_blob) + header,
            "group_log_bytes_v2": len(g_v2_blob) + header,
            "group_bytes_ratio": round(
                (len(g_v1_blob) + header) / (len(g_v2_blob) + header), 2
            ),
            "group_replay_seconds_v1": round(g_replay_v1, 5),
            "group_replay_seconds_v2": round(g_replay_v2, 5),
            "replay_ratio": round(g_replay_v1 / g_replay_v2, 2),
        }

    shutil.rmtree(path, ignore_errors=True)
    shutil.rmtree(v1_dir, ignore_errors=True)
    return {
        "commits": commits,
        "wal_bytes_v1": bytes_v1,
        "wal_bytes_v2": bytes_v2,
        "bytes_per_commit_v1": round(bytes_v1 / commits, 1),
        "bytes_per_commit_v2": round(bytes_v2 / commits, 1),
        "bytes_ratio": round(bytes_v1 / bytes_v2, 2),
        "per_commit_replay_seconds_v1": round(replay_v1, 5),
        "per_commit_replay_seconds_v2": round(replay_v2, 5),
        "per_commit_replay_ratio": round(replay_v1 / replay_v2, 2),
        "recovery_seconds_v1": round(report_v1.seconds, 4),
        "recovery_seconds_v2": round(report_v2.seconds, 4),
        **group_metrics,
    }


def run_off_parity():
    """E8's exact workload (heavy assertion set, RF1+RF2 scripts, its
    gather window) with the durability manager attached in ``off``
    mode: proves that carrying the subsystem without logging costs
    nothing against the committed PR 3 baseline."""
    sessions = 8
    rounds = TOTAL_COMMITS // sessions
    rates: list[float] = []
    for _ in range(REPEATS):  # fresh server per repeat (same keys replayed)
        path = tempfile.mkdtemp(prefix="e9-parity-")
        db = tpch_database("e9parity")
        TPCHGenerator(SCALE, seed=42).populate(db)
        tintin = Tintin.open(path, durability="off", db=db)
        tintin.install()
        for sql in E8_ASSERTIONS:
            tintin.add_assertion(sql)
        # same pre-serve warm-up as E8's build_server: the one-time
        # full passes that arm the seeded delta plans must not land
        # inside the measured window
        arm_delta_pipeline(tintin)
        tintin.serve(policy="group", gather_seconds=E8_GATHER_SECONDS)
        scripts = build_scripts(tintin.db, sessions, rounds)
        result = measure_concurrent_throughput(
            tintin, sessions, rounds, make_stage(scripts)
        )
        assert result.rejected == 0
        rates.append(result.commits_per_second)
        shutil.rmtree(path, ignore_errors=True)
    # best-of, matching how the committed E8 baseline was measured
    best = max(rates)
    baseline = None
    if os.path.exists("BENCH_concurrency.json"):
        with open("BENCH_concurrency.json") as handle:
            payload = json.load(handle)
        for row in payload.get("rows", ()):
            if row["sessions"] == sessions:
                baseline = row["commits_per_second"]
    return {
        "sessions": sessions,
        "off_commits_per_second": round(best, 1),
        "e8_baseline_commits_per_second": baseline,
        "ratio_vs_baseline": (
            round(best / baseline, 2) if baseline else None
        ),
    }


def test_e9_report(benchmark):
    def sweep():
        rows = []
        recovery_dir = None
        for mode in MODES:
            for sessions in SESSION_SWEEP:
                decisive = sessions == max(SESSION_SWEEP) and mode in (
                    "commit",
                    "batch",
                )
                keep = mode == "batch" and sessions == max(SESSION_SWEEP)
                row, directory = run_point(
                    mode,
                    sessions,
                    DECISIVE_REPEATS if decisive else REPEATS,
                    keep_dir=keep,
                )
                rows.append(row)
                if keep:
                    recovery_dir = directory
        recovery = measure_recovery(recovery_dir)
        # the directory survives the sweep: the codec differential
        # replays this same group-commit log in both formats
        return rows, recovery, recovery_dir

    # the committed PR 4 baseline, read BEFORE this run may refresh it:
    # v2's batch-mode throughput must not regress against it
    pr4_batch_baseline = None
    if os.path.exists("BENCH_durability.json"):
        with open("BENCH_durability.json") as handle:
            prior = json.load(handle)
        for row in prior.get("rows", ()):
            if row["mode"] == "batch" and row["sessions"] == max(SESSION_SWEEP):
                pr4_batch_baseline = row["commits_per_second"]

    rows, recovery, recovery_dir = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    codec = run_codec_differential(recovery_dir)
    shutil.rmtree(recovery_dir, ignore_errors=True)
    parity = run_off_parity() if not SMOKE else None

    print()
    print("E9: durability — commits/sec by mode and session count")
    print(durability_table(rows))
    print(
        f"recovery: {recovery['batches_replayed']} batch(es) replayed in "
        f"{recovery['seconds'] * 1000:.1f}ms "
        f"({recovery['batches_per_second']:.0f} batches/sec)"
    )
    print(
        f"WAL codec v2 vs v1 on {codec['commits']} commits: "
        f"{codec['bytes_per_commit_v2']}B vs "
        f"{codec['bytes_per_commit_v1']}B per commit "
        f"(x{codec['bytes_ratio']} smaller); group-commit log replay "
        f"{codec['group_replay_seconds_v2'] * 1000:.2f}ms vs "
        f"{codec['group_replay_seconds_v1'] * 1000:.2f}ms "
        f"(x{codec['replay_ratio']} faster)"
    )
    if parity is not None:
        print(
            f"off-mode parity vs E8 baseline: "
            f"{parity['off_commits_per_second']} c/s vs "
            f"{parity['e8_baseline_commits_per_second']} c/s "
            f"(x{parity['ratio_vs_baseline']})"
        )

    by_point = {(r["mode"], r["sessions"]): r for r in rows}
    top = max(SESSION_SWEEP)
    batch = by_point[("batch", top)]["commits_per_second"]
    commit = by_point[("commit", top)]["commits_per_second"]
    ratio = batch / commit
    # the group fsync must actually be shared: far fewer fsyncs (one
    # combined record per group) than commits in batch mode, exactly
    # one fsync per commit in commit mode
    assert by_point[("batch", top)]["wal_fsyncs"] < TOTAL_COMMITS
    assert by_point[("commit", top)]["wal_fsyncs"] == TOTAL_COMMITS
    assert ratio >= ACCEPTANCE_RATIO, (
        f"group-commit batch mode x{ratio:.2f} over per-commit fsync at "
        f"{top} sessions is below the {ACCEPTANCE_RATIO}x acceptance bar"
    )
    assert codec["bytes_ratio"] >= CODEC_BYTES_RATIO, (
        f"WAL v2 is only x{codec['bytes_ratio']} smaller than v1 "
        f"(bar: {CODEC_BYTES_RATIO}x)"
    )
    assert codec["replay_ratio"] >= CODEC_REPLAY_RATIO, (
        f"WAL v2 log replay is only x{codec['replay_ratio']} faster "
        f"than v1 (bar: {CODEC_REPLAY_RATIO}x)"
    )
    batch_vs_pr4 = (
        round(batch / pr4_batch_baseline, 2) if pr4_batch_baseline else None
    )
    if not SMOKE and batch_vs_pr4 is not None:
        assert batch_vs_pr4 >= V2_BATCH_FLOOR, (
            f"batch-mode throughput regressed to x{batch_vs_pr4} of the "
            f"PR 4 baseline ({pr4_batch_baseline} c/s)"
        )
    if parity is not None and parity["ratio_vs_baseline"] is not None:
        assert parity["ratio_vs_baseline"] >= PARITY_FLOOR, (
            f"off-mode throughput regressed to "
            f"x{parity['ratio_vs_baseline']} of the PR 3 baseline"
        )

    if not SMOKE:
        payload = {
            "experiment": "e9_durability",
            "rows": rows,
            "acceptance": {
                "batch_vs_commit_at_8_sessions": round(ratio, 2),
                "required": BASELINE_RATIO,
                "wal_v2_bytes_ratio": codec["bytes_ratio"],
                "wal_v2_bytes_required": 2.5,
                "wal_v2_replay_ratio": codec["replay_ratio"],
                "wal_v2_replay_required": 2.0,
                "batch_vs_pr4_baseline": batch_vs_pr4,
                "pr4_batch_commits_per_second": pr4_batch_baseline,
            },
            "codec": codec,
            "recovery": recovery,
            "off_parity": parity,
        }
        # the committed baseline must demonstrate the full acceptance
        # ratio; a run that only cleared the regression guard keeps
        # the previous (passing) baseline instead of overwriting it
        if ratio >= BASELINE_RATIO:
            write_json_baseline("BENCH_durability.json", payload)


def test_e9_recovery_differential(benchmark):
    """Concurrent batch-mode commits, then a crash (no close): recovery
    must rebuild the acknowledged state exactly — the benchmark-scale
    twin of the crash-injection unit tests."""

    def run():
        path = tempfile.mkdtemp(prefix="e9-diff-")
        sessions, rounds = 4, 8 if SMOKE else 16
        tintin = build_server("batch", path, sessions, rounds)
        result = measure_concurrent_throughput(
            tintin, sessions, rounds, stage_lineitem
        )
        assert result.rejected == 0
        expected = {
            t.schema.name: sorted(t.rows_snapshot())
            for t in tintin.db.catalog.tables(namespace="main")
        }
        # simulated crash: the WAL handle is simply abandoned
        del tintin
        recovered, report = recover(path)
        actual = {
            t.schema.name: sorted(t.rows_snapshot())
            for t in recovered.db.catalog.tables(namespace="main")
        }
        shutil.rmtree(path, ignore_errors=True)
        return expected == actual, report.batches_replayed, result.commits

    matched, replayed, commits = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert matched, "recovered state diverged from the acknowledged state"
    assert replayed > 0
    print(
        f"\nE9 differential: {commits} concurrent commits, "
        f"{replayed} WAL batch record(s), recovered state identical"
    )
