"""E12 (shard-per-process scale-out) — throughput past the GIL.

E8 showed group commit amortizing validation across sessions *inside*
one process; this experiment scales *out*: N worker processes, each a
full engine owning one hash partition, behind the shard router.  The
sweep drives S clients against S shards with shard-local commits (the
partitioning's fast path) and measures aggregate committed
throughput.  Because every worker overlaps its commit window's
blocking portion (the group-commit gather nap plus the WAL fsync)
with the other workers' CPU work, aggregate throughput scales with
the shard count even on a single core — and on real multi-core
hardware the CPU portions overlap too.

As in E8, the gather window is *fixed across the sweep*: this is one
server configuration under varying shard counts, so the 1-shard row
pays the same per-window nap the 4-shard rows pay.

Acceptance (ISSUE 10):

* >= 2x aggregate commits/sec at 4 shards vs 1 shard (shard-local);
* a differential: the same mixed schedule (single-shard, cross-shard
  2PC, violating, conflicting) accepts/rejects identically and leaves
  the same rows on a sharded engine as on a sequential reference;
* a full-cluster power cut preserves exactly the acked commits.

Set ``E12_SMOKE=1`` (CI) for a reduced sweep with relaxed bars — the
full acceptance numbers live in ``BENCH_shard.json``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time

from repro import Database, Tintin
from repro.bench import write_json_baseline
from repro.shard import ShardedTintin

SMOKE = os.environ.get("E12_SMOKE") == "1"

SHARD_SWEEP = (1, 4) if SMOKE else (1, 2, 4)
COMMITS_PER_CLIENT = 12 if SMOKE else 32
ACCEPTANCE_SPEEDUP = 1.3 if SMOKE else 2.0

#: the per-shard group-commit gather window (see E8's GATHER_SECONDS):
#: each commit window naps ~a quarter of this before draining, and in
#: ``batch`` durability mode adds one fsync — the blocking slice that
#: overlaps across worker processes.  Fixed across the whole sweep.
GATHER_SECONDS = 0.008

ORDERS_DDL = "CREATE TABLE orders (id INTEGER PRIMARY KEY, total DOUBLE)"
ITEMS_DDL = (
    "CREATE TABLE items (order_id INTEGER, n INTEGER, "
    "PRIMARY KEY (order_id, n), "
    "FOREIGN KEY (order_id) REFERENCES orders (id))"
)
ASSERTION = (
    "CREATE ASSERTION atLeastOneItem CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE NOT EXISTS ("
    "SELECT * FROM items AS i WHERE i.order_id = o.id)))"
)
KEYS = {"orders": "id", "items": "order_id"}
KEY_BASE = 1_000_000


def build_sharded(directory: str, shards: int) -> ShardedTintin:
    engine = ShardedTintin(
        directory,
        shards=shards,
        shard_keys=KEYS,
        gather_seconds=GATHER_SECONDS,
    )
    engine.execute(ORDERS_DDL)
    engine.execute(ITEMS_DDL)
    engine.install()
    engine.add_assertion(ASSERTION)
    return engine


def shard_local_keys(client: int, shards: int, count: int) -> list[int]:
    """Keys that all hash to shard ``client`` — the client's commits
    never leave its shard, so the sweep measures the fast path."""
    return [KEY_BASE + client + n * shards for n in range(count)]


def drive_clients(engine: ShardedTintin, shards: int, per_client: int):
    """One thread per shard, each committing shard-local orders;
    returns (total_committed, elapsed_seconds)."""
    committed = [0] * shards
    barrier = threading.Barrier(shards + 1)

    def client(index: int) -> None:
        session = engine.create_session()
        keys = shard_local_keys(index, shards, per_client)
        barrier.wait()
        for key in keys:
            session.insert("orders", [(key, 1.0)])
            session.insert("items", [(key, 1)])
            if session.commit().committed:
                committed[index] += 1

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(shards)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return sum(committed), elapsed


def run_sweep_point(shards: int, repeats: int = 2) -> dict:
    """Best-of-N for one shard count (fresh cluster each repeat)."""
    best = None
    for _ in range(repeats):
        directory = tempfile.mkdtemp(prefix=f"e12-{shards}-")
        engine = build_sharded(directory, shards)
        try:
            total, elapsed = drive_clients(
                engine, shards, COMMITS_PER_CLIENT
            )
            assert total == shards * COMMITS_PER_CLIENT, (
                "shard-local commits must all be accepted"
            )
            point = {
                "shards": shards,
                "commits": total,
                "seconds": elapsed,
                "commits_per_second": total / elapsed,
            }
            if (
                best is None
                or point["commits_per_second"]
                > best["commits_per_second"]
            ):
                best = point
        finally:
            engine.close()
            shutil.rmtree(directory, ignore_errors=True)
    return best


# -- sequential vs sharded differential -------------------------------------


def build_schedule(rounds: int) -> list[tuple[dict, dict]]:
    """A mixed schedule: shard-local inserts, cross-shard 2PC batches,
    planted assertion violations and duplicate-key conflicts."""
    schedule: list[tuple[dict, dict]] = []
    for n in range(rounds):
        key = 2000 + n
        schedule.append(
            ({"orders": [(key, 1.0)], "items": [(key, 1)]}, {})
        )
        if n % 3 == 0:  # cross-shard pair
            a, b = 3000 + 2 * n, 3001 + 2 * n
            schedule.append(
                (
                    {
                        "orders": [(a, 1.0), (b, 1.0)],
                        "items": [(a, 1), (b, 1)],
                    },
                    {},
                )
            )
        if n % 4 == 1:  # violating: an itemless order
            schedule.append(({"orders": [(4000 + n, 1.0)]}, {}))
        if n % 5 == 2:  # duplicate key conflict
            schedule.append(
                ({"orders": [(2000, 9.0)], "items": [(2000, 9)]}, {})
            )
    return schedule


def run_differential(rounds: int = 10) -> dict:
    db = Database("e12ref")
    db.execute(ORDERS_DDL)
    db.execute(ITEMS_DDL)
    reference = Tintin(db)
    reference.install()
    reference.add_assertion(ASSERTION)

    directory = tempfile.mkdtemp(prefix="e12-diff-")
    sharded = build_sharded(directory, shards=4)
    try:
        schedule = build_schedule(rounds)
        verdicts = []
        for inserts, deletes in schedule:
            ref_session = reference.create_session()
            shard_session = sharded.create_session()
            for table, rows in inserts.items():
                ref_session.insert(table, rows)
                shard_session.insert(table, rows)
            for table, rows in deletes.items():
                ref_session.delete(table, rows)
                shard_session.delete(table, rows)
            ref_result = ref_session.commit()
            shard_result = shard_session.commit()
            assert ref_result.committed == shard_result.committed, (
                inserts,
                ref_result,
                shard_result,
            )
            verdicts.append(shard_result.committed)
        reference_rows = sorted(
            db.execute("SELECT * FROM orders AS o").rows
        )
        sharded_rows = sorted(
            sharded.query("SELECT * FROM orders AS o").rows
        )
        assert reference_rows == sharded_rows, (
            "sharded execution diverged from the sequential reference"
        )
        return {
            "updates": len(verdicts),
            "rejected": verdicts.count(False),
            "sequential_equals_sharded": True,
        }
    finally:
        sharded.close()
        shutil.rmtree(directory, ignore_errors=True)


# -- crash recovery of acked commits ----------------------------------------


def run_crash_recovery() -> dict:
    """Power-cut every worker after a mixed workload; a fresh cluster
    over the same directories must hold exactly the acked rows."""
    from repro.errors import ShardError

    directory = tempfile.mkdtemp(prefix="e12-crash-")
    engine = build_sharded(directory, shards=2)
    acked: list[int] = []
    try:
        for key in range(5000, 5008):  # shard-local
            session = engine.create_session()
            session.insert("orders", [(key, 1.0)])
            session.insert("items", [(key, 1)])
            if session.commit().committed:
                acked.append(key)
        session = engine.create_session()  # cross-shard 2PC
        session.insert("orders", [(5010, 1.0), (5011, 1.0)])
        session.insert("items", [(5010, 1), (5011, 1)])
        assert session.commit().committed
        acked.extend([5010, 5011])
        for handle in engine.handles:
            try:
                handle.call("crash")
            except ShardError:
                pass
        engine.close()

        recovered = ShardedTintin(
            directory, shards=2, shard_keys=KEYS
        )
        try:
            recovered.declare(ORDERS_DDL)
            recovered.declare(ITEMS_DDL)
            survivors = sorted(
                row[0]
                for row in recovered.query(
                    "SELECT * FROM orders AS o"
                ).rows
            )
            assert survivors == sorted(acked), (
                "recovery lost or invented acked commits"
            )
        finally:
            recovered.close()
        return {"acked": len(acked), "recovered": len(acked)}
    finally:
        shutil.rmtree(directory, ignore_errors=True)


# -- the report -------------------------------------------------------------


def test_e12_differential(benchmark):
    summary = benchmark.pedantic(run_differential, rounds=1, iterations=1)
    assert summary["sequential_equals_sharded"]
    assert summary["rejected"] > 0, "planted conflicts were exercised"


def test_e12_crash_recovery(benchmark):
    summary = benchmark.pedantic(
        run_crash_recovery, rounds=1, iterations=1
    )
    assert summary["recovered"] == summary["acked"]


def test_e12_report(benchmark):
    def sweep():
        return [run_sweep_point(shards) for shards in SHARD_SWEEP]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    differential = run_differential(rounds=6)
    print()
    print("E12: shard-per-process scale-out — commits/sec by shard count")
    for point in results:
        print(
            f"  {point['shards']} shard(s): "
            f"{point['commits_per_second']:10.1f} commits/s "
            f"({point['commits']} commits in {point['seconds']:.3f}s)"
        )
    by_shards = {point["shards"]: point for point in results}
    top = max(SHARD_SWEEP)
    speedup = (
        by_shards[top]["commits_per_second"]
        / by_shards[1]["commits_per_second"]
    )
    print(f"  speedup 1 -> {top} shards: x{speedup:.2f}")
    payload = {
        "experiment": "e12_shard",
        "gather_seconds": GATHER_SECONDS,
        "commits_per_client": COMMITS_PER_CLIENT,
        "sweep": results,
        "speedup": speedup,
        "differential": differential,
    }
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"aggregate throughput x{speedup:.2f} at {top} shards is below "
        f"the {ACCEPTANCE_SPEEDUP}x acceptance bar ({payload})"
    )
    if not SMOKE:
        write_json_baseline("BENCH_shard.json", payload)
