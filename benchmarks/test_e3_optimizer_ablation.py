"""E3 (ablation) — effect of the semantic optimizations (§2).

    "TINTIN incorporates some semantic optimizations like this one
     [the FK-based discard of EDC 5] that allow obtaining a reduced and
     simplified number of EDCs which allow performing integrity
     checking more efficiently."

We measure, with the optimizer on and off: the number of EDCs (and
therefore stored views), the number of views executed per check, and
the check time on the same update batch.
"""

import pytest

from conftest import cached_workload
from repro.bench import format_seconds, plan_cache_line, time_call
from repro.tpch import AT_LEAST_ONE_LINEITEM, LINEITEM_HAS_PARTSUPP

SCALE = 0.008
UPDATE_ORDERS = 20
SUITE = (AT_LEAST_ONE_LINEITEM, LINEITEM_HAS_PARTSUPP)


@pytest.mark.parametrize("optimize", [True, False], ids=["optimized", "unoptimized"])
def test_check_time(benchmark, optimize):
    workload = cached_workload(
        SCALE, UPDATE_ORDERS, SUITE, optimize=optimize
    )
    result = benchmark(workload.check_incremental)
    assert result.committed


def test_e3_report(benchmark):
    def build():
        rows = []
        for optimize in (True, False):
            workload = cached_workload(
                SCALE, UPDATE_ORDERS, SUITE, optimize=optimize
            )
            edc_count = sum(
                len(a.edcs) for a in workload.tintin.assertions.values()
            )
            dropped = sum(
                r.dropped_count for r in workload.tintin.reports.values()
            )
            seconds = time_call(workload.check_incremental, repeat=3)
            result = workload.check_incremental()
            rows.append(
                (optimize, edc_count, dropped, result.checked_views, seconds)
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("E3: semantic-optimizer ablation (FK pruning etc.)")
    print(f"{'mode':>12} {'EDC views':>10} {'pruned':>7} {'executed':>9} {'check':>10}")
    for optimize, edcs, dropped, executed, seconds in rows:
        mode = "optimized" if optimize else "unoptimized"
        print(
            f"{mode:>12} {edcs:>10} {dropped:>7} {executed:>9} "
            f"{format_seconds(seconds):>10}"
        )
    print(plan_cache_line(cached_workload(SCALE, UPDATE_ORDERS, SUITE, optimize=True).db))
    optimized, unoptimized = rows
    # the optimizer must reduce the number of EDCs (the paper drops EDC 5
    # of the running example via the lineitem->orders FK)
    assert optimized[1] < unoptimized[1]
    assert optimized[2] > 0
    # and never slow the check down materially
    assert optimized[4] <= unoptimized[4] * 1.5
