"""Setup shim: enables legacy editable installs (``pip install -e .``)
in offline environments that lack the ``wheel`` package.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
