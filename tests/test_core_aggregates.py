"""Tests for the aggregate-assertion extension (paper §5 future work).

Covers the supported shapes (COUNT/SUM/MIN/MAX/AVG bounds per group),
the incremental group-probe checker against safeCommit, rejection of
unsupported shapes, and a differential property test against a full
recheck.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Tintin
from repro.core.aggregates import AggregateAssertionCompiler
from repro.core.assertion import Assertion
from repro.errors import AssertionDefinitionError
from repro.minidb import Database


def make_db():
    db = Database()
    db.execute("CREATE TABLE orders (ok INTEGER PRIMARY KEY, ck INTEGER)")
    db.execute(
        "CREATE TABLE li (ok INTEGER NOT NULL, ln INTEGER NOT NULL, "
        "qty INTEGER NOT NULL, PRIMARY KEY (ok, ln), "
        "FOREIGN KEY (ok) REFERENCES orders (ok))"
    )
    return db


MAX_THREE = (
    "CREATE ASSERTION maxThree CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE "
    "(SELECT COUNT(*) FROM li AS l WHERE l.ok = o.ok) > 3))"
)
SUM_CAP = (
    "CREATE ASSERTION sumCap CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE "
    "(SELECT SUM(qty) FROM li AS l WHERE l.ok = o.ok) > 100))"
)


@pytest.fixture
def installed():
    db = make_db()
    tintin = Tintin(db)
    tintin.install()
    tintin.add_assertion(MAX_THREE)
    tintin.add_assertion(SUM_CAP)
    db.insert_rows("orders", [(1, 10), (2, 20)], bypass_triggers=True)
    db.insert_rows(
        "li", [(1, 1, 10), (1, 2, 20), (2, 1, 5)], bypass_triggers=True
    )
    return db, tintin


class TestCompiler:
    def test_detects_aggregate_assertion(self):
        assertion = Assertion.parse(MAX_THREE)
        assert AggregateAssertionCompiler.is_aggregate_assertion(assertion)

    def test_plain_assertion_not_detected(self):
        assertion = Assertion.parse(
            "CREATE ASSERTION x CHECK (NOT EXISTS (SELECT * FROM orders))"
        )
        assert not AggregateAssertionCompiler.is_aggregate_assertion(assertion)

    def test_spec_fields(self):
        db = make_db()
        spec = AggregateAssertionCompiler(db.catalog).compile(
            Assertion.parse(MAX_THREE)
        )
        assert spec.func == "COUNT"
        assert spec.argument is None
        assert spec.op == ">"
        assert spec.bound == 3
        assert spec.outer_table == "orders"
        assert spec.inner_table == "li"
        assert spec.correlation == ((0, 0),)
        assert set(spec.driving_tables) == {"ins_orders", "ins_li", "del_li"}

    def test_flipped_comparison_normalized(self):
        db = make_db()
        spec = AggregateAssertionCompiler(db.catalog).compile(
            Assertion.parse(
                "CREATE ASSERTION x CHECK (NOT EXISTS ("
                "SELECT * FROM orders AS o WHERE 3 < "
                "(SELECT COUNT(*) FROM li AS l WHERE l.ok = o.ok)))"
            )
        )
        assert spec.op == ">"
        assert spec.bound == 3

    def test_outer_condition_supported(self):
        db = make_db()
        spec = AggregateAssertionCompiler(db.catalog).compile(
            Assertion.parse(
                "CREATE ASSERTION x CHECK (NOT EXISTS ("
                "SELECT * FROM orders AS o WHERE o.ck > 5 AND "
                "(SELECT COUNT(*) FROM li AS l WHERE l.ok = o.ok) > 3))"
            )
        )
        assert spec.outer_condition is not None

    def test_inner_condition_supported(self):
        db = make_db()
        spec = AggregateAssertionCompiler(db.catalog).compile(
            Assertion.parse(
                "CREATE ASSERTION x CHECK (NOT EXISTS ("
                "SELECT * FROM orders AS o WHERE "
                "(SELECT COUNT(*) FROM li AS l WHERE l.ok = o.ok "
                "AND l.qty > 5) > 3))"
            )
        )
        assert spec.inner_condition is not None

    @pytest.mark.parametrize(
        "sql,message",
        [
            (
                "CREATE ASSERTION x CHECK (NOT EXISTS ("
                "SELECT * FROM orders AS o, li AS m WHERE "
                "(SELECT COUNT(*) FROM li AS l WHERE l.ok = o.ok) > 3))",
                "one outer table",
            ),
            (
                "CREATE ASSERTION x CHECK (NOT EXISTS ("
                "SELECT * FROM orders AS o WHERE "
                "(SELECT COUNT(*) FROM li AS l WHERE l.qty > 0) > 3))",
                "equi-correlated",
            ),
            (
                "CREATE ASSERTION x CHECK (NOT EXISTS ("
                "SELECT * FROM orders AS o WHERE "
                "(SELECT COUNT(*) FROM li AS l WHERE l.ok = o.ok) > o.ck))",
                "constant",
            ),
        ],
    )
    def test_unsupported_shapes_rejected(self, sql, message):
        db = make_db()
        with pytest.raises(AssertionDefinitionError, match=message):
            AggregateAssertionCompiler(db.catalog).compile(Assertion.parse(sql))


class TestIncrementalChecking:
    def test_within_bound_commits(self, installed):
        db, tintin = installed
        db.execute("INSERT INTO li VALUES (1, 3, 30)")  # third item, sum 60
        assert tintin.safe_commit().committed

    def test_count_violation_rejected(self, installed):
        db, tintin = installed
        db.execute("INSERT INTO li VALUES (1, 3, 1)")
        db.execute("INSERT INTO li VALUES (1, 4, 1)")  # fourth item
        result = tintin.safe_commit()
        assert result.rejected
        assert result.violations[0].assertion == "maxThree"
        assert result.violations[0].rows == [(1, 10)]

    def test_sum_violation_rejected(self, installed):
        db, tintin = installed
        db.execute("INSERT INTO li VALUES (1, 3, 90)")  # sum 120 > 100
        result = tintin.safe_commit()
        assert result.rejected
        assert {v.assertion for v in result.violations} == {"sumCap"}

    def test_new_order_with_violation(self, installed):
        db, tintin = installed
        db.execute("INSERT INTO orders VALUES (3, 30)")
        for i in range(1, 5):
            db.execute(f"INSERT INTO li VALUES (3, {i}, 1)")
        result = tintin.safe_commit()
        assert result.rejected
        assert result.violations[0].rows == [(3, 30)]

    def test_deletion_can_fix_violation(self, installed):
        db, tintin = installed
        # swap a big item for a small one in the same transaction
        db.execute("DELETE FROM li WHERE ok = 1 AND ln = 2")  # remove qty 20
        db.execute("INSERT INTO li VALUES (1, 9, 95)")  # sum 10+95=105? no:
        # 10 (ln 1) + 95 = 105 > 100 -> still violated
        result = tintin.safe_commit()
        assert result.rejected

    def test_deletion_balances_insertion(self, installed):
        db, tintin = installed
        db.execute("DELETE FROM li WHERE ok = 1 AND ln = 2")  # -20
        db.execute("INSERT INTO li VALUES (1, 9, 85)")  # 10+85 = 95 <= 100
        assert tintin.safe_commit().committed

    def test_deleting_outer_row_with_items_is_fine(self, installed):
        db, tintin = installed
        db.execute("DELETE FROM li WHERE ok = 2")
        db.execute("DELETE FROM orders WHERE ok = 2")
        assert tintin.safe_commit().committed

    def test_untouched_tables_skip_check(self, installed):
        db, tintin = installed
        db.execute("CREATE TABLE unrelated (x INTEGER)")
        tintin.events.install(["unrelated"])
        db.execute("INSERT INTO unrelated VALUES (1)")
        result = tintin.safe_commit()
        assert result.committed
        assert result.checked_views == 0  # both aggregate checks skipped
        assert result.skipped_views == 2

    def test_base_data_untouched_on_rejection(self, installed):
        db, tintin = installed
        before = sorted(db.table("li").scan())
        db.execute("INSERT INTO li VALUES (1, 3, 999)")
        tintin.safe_commit()
        assert sorted(db.table("li").scan()) == before

    def test_drop_aggregate_assertion(self, installed):
        db, tintin = installed
        tintin.drop_assertion("maxThree")
        db.execute("INSERT INTO li VALUES (1, 3, 1)")
        db.execute("INSERT INTO li VALUES (1, 4, 1)")
        assert tintin.safe_commit().committed  # only sumCap remains

    def test_describe_mentions_aggregate(self, installed):
        _, tintin = installed
        text = tintin.describe()
        assert "COUNT(*)" in text
        assert "SUM" in text

    def test_baseline_agrees_on_aggregate(self, installed):
        db, tintin = installed
        db.execute("INSERT INTO li VALUES (1, 3, 1)")
        db.execute("INSERT INTO li VALUES (1, 4, 1)")
        result = tintin.full_check_commit()
        assert result.rejected


class TestMinMaxAvg:
    def make(self, sql):
        db = make_db()
        tintin = Tintin(db)
        tintin.install()
        tintin.add_assertion(sql)
        db.insert_rows("orders", [(1, 10)], bypass_triggers=True)
        db.insert_rows("li", [(1, 1, 10), (1, 2, 20)], bypass_triggers=True)
        return db, tintin

    def test_min_bound(self):
        db, tintin = self.make(
            "CREATE ASSERTION minQty CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o WHERE "
            "(SELECT MIN(qty) FROM li AS l WHERE l.ok = o.ok) < 5))"
        )
        db.execute("INSERT INTO li VALUES (1, 3, 2)")
        assert tintin.safe_commit().rejected

    def test_max_bound(self):
        db, tintin = self.make(
            "CREATE ASSERTION maxQty CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o WHERE "
            "(SELECT MAX(qty) FROM li AS l WHERE l.ok = o.ok) > 50))"
        )
        db.execute("INSERT INTO li VALUES (1, 3, 60)")
        assert tintin.safe_commit().rejected

    def test_avg_bound(self):
        db, tintin = self.make(
            "CREATE ASSERTION avgQty CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o WHERE "
            "(SELECT AVG(qty) FROM li AS l WHERE l.ok = o.ok) > 40))"
        )
        db.execute("INSERT INTO li VALUES (1, 3, 200)")  # avg ~76
        assert tintin.safe_commit().rejected

    def test_empty_group_aggregate_is_null_not_violation(self):
        # MIN over an empty group is NULL -> comparison UNKNOWN -> no
        # violation (SQL semantics)
        db, tintin = self.make(
            "CREATE ASSERTION minQty CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o WHERE "
            "(SELECT MIN(qty) FROM li AS l WHERE l.ok = o.ok) < 5))"
        )
        db.execute("INSERT INTO orders VALUES (9, 90)")  # no items at all
        assert tintin.safe_commit().committed


# ---------------------------------------------------------------------------
# Differential property: incremental aggregate check == full recheck


@settings(max_examples=40, deadline=None)
@given(
    base_items=st.lists(
        st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 40)),
        max_size=12,
        unique_by=lambda t: (t[0], t[1]),
    ),
    new_items=st.lists(
        st.tuples(st.integers(1, 4), st.integers(5, 9), st.integers(1, 60)),
        max_size=8,
        unique_by=lambda t: (t[0], t[1]),
    ),
    del_keys=st.lists(
        st.tuples(st.integers(1, 4), st.integers(1, 4)), max_size=8, unique=True
    ),
)
def test_aggregate_incremental_matches_full(base_items, new_items, del_keys):
    db = make_db()
    tintin = Tintin(db)
    tintin.install()
    tintin.add_assertion(SUM_CAP)
    db.insert_rows("orders", [(k, k) for k in range(1, 5)], bypass_triggers=True)
    # keep the initial state consistent: drop items of over-cap orders
    totals: dict[int, int] = {}
    consistent = []
    for ok, ln, qty in base_items:
        if totals.get(ok, 0) + qty <= 100:
            totals[ok] = totals.get(ok, 0) + qty
            consistent.append((ok, ln, qty))
    db.insert_rows("li", consistent, bypass_triggers=True)

    for ok, ln in del_keys:
        db.execute(f"DELETE FROM li WHERE ok = {ok} AND ln = {ln}")
    for ok, ln, qty in new_items:
        db.execute(f"INSERT INTO li VALUES ({ok}, {ln}, {qty})")

    incremental = tintin.check_pending()

    # ground truth on a scratch copy
    scratch = make_db()
    scratch.insert_rows(
        "orders", db.table("orders").rows_snapshot(), bypass_triggers=True
    )
    scratch.insert_rows("li", db.table("li").rows_snapshot(), bypass_triggers=True)
    scratch.apply_batch(
        {"li": db.table("ins_li").rows_snapshot()},
        {"li": db.table("del_li").rows_snapshot()},
    )
    scratch_t = Tintin(scratch)
    scratch_t.install()
    scratch_t.add_assertion(SUM_CAP)
    ground_truth = bool(scratch_t.baseline.check_current_state(scratch))

    assert incremental.rejected == ground_truth
