"""Unit tests for the logic layer (terms, literals, denials, rules)."""

import pytest

from repro.errors import LogicError, SafetyError
from repro.logic import (
    BASE,
    DEL,
    DERIVED,
    INS,
    Atom,
    Builtin,
    Constant,
    Denial,
    DerivedPredicate,
    Predicate,
    Rule,
    Variable,
    VariableFactory,
    collect_predicates,
    substitute_all,
)

O = Variable("o")
L = Variable("l")
ORDER = Predicate("order")
LINEIT = Predicate("lineIt")


class TestTerms:
    def test_variable_identity(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_constant(self):
        assert Constant(5) == Constant(5)
        assert str(Constant("a")) == "'a'"
        assert str(Constant(5)) == "5"

    def test_fresh_variables_never_collide(self):
        factory = VariableFactory()
        names = {factory.fresh().name for _ in range(100)}
        assert len(names) == 100

    def test_fresh_with_hint(self):
        factory = VariableFactory()
        v = factory.fresh("orderkey")
        assert v.name.startswith("orderkey")

    def test_substitute_all(self):
        mapping = {O: L}
        assert substitute_all((O, Constant(1)), mapping) == (L, Constant(1))


class TestPredicatesAndAtoms:
    def test_predicate_display_uses_paper_notation(self):
        assert Predicate("order", INS).display == "ιorder"
        assert Predicate("order", DEL).display == "δorder"
        assert Predicate("order", BASE).display == "order"

    def test_predicate_sql_table(self):
        assert Predicate("order", INS).sql_table() == "ins_order"
        assert Predicate("order", DEL).sql_table() == "del_order"
        assert Predicate("order", BASE).sql_table() == "order"

    def test_unknown_kind_rejected(self):
        with pytest.raises(LogicError):
            Predicate("p", "bogus")

    def test_atom_str(self):
        atom = Atom(LINEIT, (L, O), negated=True)
        assert str(atom) == "¬lineIt(l, o)"

    def test_atom_negate(self):
        atom = Atom(ORDER, (O,))
        assert atom.negate().negated
        assert atom.negate().negate() == atom

    def test_atom_variables(self):
        atom = Atom(LINEIT, (L, Constant(1)))
        assert atom.variables() == {L}

    def test_atom_rename(self):
        atom = Atom(LINEIT, (L, O))
        renamed = atom.rename({L: Variable("z")})
        assert renamed.terms == (Variable("z"), O)

    def test_atom_invalid_term_rejected(self):
        with pytest.raises(LogicError):
            Atom(ORDER, ("not-a-term",))


class TestBuiltins:
    def test_negate_flips_operator(self):
        b = Builtin("<", O, Constant(5))
        assert b.negate() == Builtin(">=", O, Constant(5))

    def test_double_negation_identity(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            b = Builtin(op, O, L)
            assert b.negate().negate() == b

    def test_unknown_operator_rejected(self):
        with pytest.raises(LogicError):
            Builtin("~", O, L)

    def test_evaluate_if_ground(self):
        assert Builtin("<", Constant(1), Constant(2)).evaluate_if_ground() is True
        assert Builtin("=", Constant(1), Constant(2)).evaluate_if_ground() is False
        assert Builtin("=", O, Constant(2)).evaluate_if_ground() is None

    def test_builtin_variables(self):
        assert Builtin("=", O, L).variables() == {O, L}
        assert Builtin("=", Constant(1), L).variables() == {L}


class TestDenials:
    def test_running_example_denial(self):
        denial = Denial(
            "atLeastOneLineItem",
            (Atom(ORDER, (O,)), Atom(LINEIT, (L, O), negated=True)),
        )
        assert str(denial) == "order(o) ∧ ¬lineIt(l, o) → ⊥"
        assert len(denial.positive_atoms) == 1
        assert len(denial.negative_atoms) == 1
        assert denial.variables() == {O, L}

    def test_empty_body_rejected(self):
        with pytest.raises(LogicError):
            Denial("bad", ())

    def test_no_positive_literal_rejected(self):
        with pytest.raises(SafetyError):
            Denial("bad", (Atom(ORDER, (O,), negated=True),))

    def test_unsafe_builtin_rejected(self):
        # variable in builtin not bound by any positive atom
        with pytest.raises(SafetyError):
            Denial("bad", (Atom(ORDER, (O,)), Builtin("<", L, Constant(5))))

    def test_builtin_over_positive_vars_ok(self):
        denial = Denial(
            "ok", (Atom(ORDER, (O,)), Builtin(">", O, Constant(5)))
        )
        assert len(denial.builtins) == 1

    def test_collect_predicates(self):
        denial = Denial(
            "x",
            (Atom(ORDER, (O,)), Atom(LINEIT, (L, O), negated=True)),
        )
        assert collect_predicates(denial.body) == {ORDER, LINEIT}


class TestRulesAndDerived:
    AUX = Predicate("aux", DERIVED)

    def test_paper_aux_rules(self):
        # aux(o) <- ιlineIt(l, o);  aux(o) <- lineIt(l, o) ∧ ¬δlineIt(l, o)
        r1 = Rule(
            Atom(self.AUX, (O,)),
            (Atom(Predicate("lineIt", INS), (L, O)),),
        )
        r2 = Rule(
            Atom(self.AUX, (O,)),
            (
                Atom(LINEIT, (L, O)),
                Atom(Predicate("lineIt", DEL), (L, O), negated=True),
            ),
        )
        derived = DerivedPredicate(self.AUX, (r1, r2))
        assert derived.arity == 1
        assert "ιlineIt" in str(derived)
        assert "¬δlineIt" in str(derived)

    def test_unbound_head_variable_rejected(self):
        with pytest.raises(SafetyError):
            Rule(Atom(self.AUX, (O,)), (Atom(LINEIT, (L, L)),))

    def test_negated_head_rejected(self):
        with pytest.raises(LogicError):
            Rule(Atom(self.AUX, (O,), negated=True), (Atom(ORDER, (O,)),))

    def test_empty_rule_body_rejected(self):
        with pytest.raises(LogicError):
            Rule(Atom(self.AUX, ()), ())

    def test_derived_requires_derived_kind(self):
        with pytest.raises(LogicError):
            DerivedPredicate(ORDER, (Rule(Atom(ORDER, (O,)), (Atom(LINEIT, (L, O)),)),))

    def test_mismatched_rule_head_rejected(self):
        other = Predicate("other", DERIVED)
        rule = Rule(Atom(other, (O,)), (Atom(ORDER, (O,)),))
        with pytest.raises(LogicError):
            DerivedPredicate(self.AUX, (rule,))

    def test_no_rules_rejected(self):
        with pytest.raises(LogicError):
            DerivedPredicate(self.AUX, ())

    def test_mixed_arity_rules_rejected(self):
        r1 = Rule(Atom(self.AUX, (O,)), (Atom(ORDER, (O,)),))
        r2 = Rule(Atom(self.AUX, (O, L)), (Atom(LINEIT, (L, O)),))
        with pytest.raises(LogicError):
            DerivedPredicate(self.AUX, (r1, r2))
