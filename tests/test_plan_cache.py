"""Prepared statements, the transparent plan cache, and EXPLAIN.

Covers the contract the TINTIN hot path relies on: compiled plans are
immutable and reusable (per-execution state lives in the
ExecutionContext), cached plans see live data, and invalidation —
catalog version on DDL, row-count drift on growth — is sound.
"""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.minidb import Database, PreparedStatement
from repro.minidb.database import _row_count_drifted, _split_explain
from repro.sqlparser.parser import parse_query, parse_statement
from repro.sqlparser import nodes as n


def make_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE o (ok INTEGER PRIMARY KEY, ck INTEGER)")
    db.execute(
        "CREATE TABLE i (ik INTEGER NOT NULL, ok INTEGER, qty INTEGER)"
    )
    db.insert_rows("o", [(1, 10), (2, 20)])
    db.insert_rows("i", [(1, 1, 5), (2, 1, 7), (3, 2, 9)])
    return db


class TestPreparedStatement:
    def test_repeated_execution_sees_live_data(self):
        db = make_db()
        prepared = db.prepare("SELECT ok FROM o WHERE ck > 5")
        assert sorted(prepared.execute().rows) == [(1,), (2,)]
        db.insert_rows("o", [(3, 30)])
        assert sorted(prepared.execute().rows) == [(1,), (2,), (3,)]
        db.execute("DELETE FROM o WHERE ok = 1")
        assert sorted(prepared.execute().rows) == [(2,), (3,)]

    def test_correlated_subquery_memo_does_not_leak_between_runs(self):
        # an uncorrelated EXISTS memoizes per execution; a stale memo
        # from a previous run would return the old answer
        db = make_db()
        prepared = db.prepare(
            "SELECT ok FROM o WHERE EXISTS (SELECT * FROM i WHERE qty > 100)"
        )
        assert prepared.execute().rows == []
        db.insert_rows("i", [(4, 2, 500)])
        assert sorted(prepared.execute().rows) == [(1,), (2,)]
        db.execute("DELETE FROM i WHERE qty > 100")
        assert prepared.execute().rows == []

    def test_scalar_subquery_memo_fresh_per_run(self):
        db = make_db()
        prepared = db.prepare(
            "SELECT ok FROM o WHERE (SELECT COUNT(*) FROM i WHERE i.ok = o.ok) > 1"
        )
        assert prepared.execute().rows == [(1,)]
        db.insert_rows("i", [(4, 2, 1)])
        assert sorted(prepared.execute().rows) == [(1,), (2,)]

    def test_ddl_invalidates_and_replans(self):
        db = make_db()
        prepared = db.prepare("SELECT * FROM o")
        assert len(prepared.execute()) == 2
        assert prepared.is_valid()
        db.execute("CREATE TABLE extra (x INTEGER)")
        assert not prepared.is_valid()
        # re-plans transparently and keeps working
        assert len(prepared.execute()) == 2
        assert prepared.is_valid()

    def test_drop_and_recreate_table_uses_new_storage(self):
        db = make_db()
        prepared = db.prepare("SELECT * FROM i")
        assert len(prepared.execute()) == 3
        db.execute("DROP TABLE i")
        db.execute("CREATE TABLE i (ik INTEGER NOT NULL)")
        db.insert_rows("i", [(42,)])
        assert prepared.execute().rows == [(42,)]

    def test_view_redefinition_invalidates(self):
        db = make_db()
        db.execute("CREATE VIEW big AS SELECT ok FROM o WHERE ck > 15")
        prepared = db.prepare("SELECT * FROM big")
        assert prepared.execute().rows == [(2,)]
        db.execute("DROP VIEW big")
        db.execute("CREATE VIEW big AS SELECT ok FROM o WHERE ck > 5")
        assert sorted(prepared.execute().rows) == [(1,), (2,)]

    def test_prepare_rejects_non_select(self):
        db = make_db()
        with pytest.raises(ExecutionError):
            db.prepare("INSERT INTO o VALUES (9, 9)")

    def test_prepare_query_from_ast(self):
        db = make_db()
        prepared = db.prepare_query(parse_query("SELECT ok FROM o WHERE ok = 2"))
        assert prepared.execute().rows == [(2,)]
        assert prepared.columns == ["ok"]

    def test_row_count_drift_triggers_replan(self):
        db = make_db()
        prepared = db.prepare("SELECT i.ik FROM o, i WHERE i.ok = o.ok")
        before = prepared.explain()
        # grow i well past the ratio*delta thresholds
        db.insert_rows("i", [(100 + k, 1, 1) for k in range(2000)])
        assert not prepared.is_valid()
        result = prepared.execute()
        assert prepared.is_valid()
        assert len(result) == 2003
        assert db.plan_cache_stats.invalidations >= 1
        assert prepared.explain()  # replanned tree still renders
        assert before  # silence unused warning


class TestDriftCriterion:
    def test_small_oscillation_is_stable(self):
        # event tables swing 0 <-> update-size every commit; the cache
        # must not thrash on that
        assert not _row_count_drifted(0, 50)
        assert not _row_count_drifted(50, 0)
        assert not _row_count_drifted(10, 63)

    def test_ratio_and_delta_both_required(self):
        assert not _row_count_drifted(1000, 1500)  # big delta, small ratio
        assert not _row_count_drifted(2, 40)  # big ratio, small delta
        assert _row_count_drifted(10, 100)  # the ISSUE's 10-rows example... scaled
        assert _row_count_drifted(0, 64)
        assert _row_count_drifted(1000, 64)


class TestTransparentCache:
    def test_query_text_hits_cache(self):
        db = make_db()
        sql = "SELECT * FROM o"
        first = db.query(sql)
        assert db.plan_cache_stats.misses == 1
        second = db.query(sql)
        assert db.plan_cache_stats.hits == 1
        assert first.rows == second.rows

    def test_execute_select_uses_same_cache(self):
        db = make_db()
        db.query("SELECT ck FROM o")
        assert db.plan_cache_stats.misses == 1
        db.execute("SELECT ck FROM o")
        assert db.plan_cache_stats.hits == 1

    def test_cache_disabled_plans_fresh(self):
        db = make_db()
        db.plan_cache_enabled = False
        db.query("SELECT * FROM o")
        db.query("SELECT * FROM o")
        assert db.plan_cache_stats.hits == 0
        assert db.plan_cache_stats.misses == 0

    def test_cached_results_identical_after_dml(self):
        db = make_db()
        sql = "SELECT ok FROM o WHERE EXISTS (SELECT * FROM i WHERE i.ok = o.ok)"
        assert sorted(db.query(sql).rows) == [(1,), (2,)]
        db.execute("DELETE FROM i WHERE ok = 2")
        assert sorted(db.query(sql).rows) == [(1,)]
        assert db.plan_cache_stats.hits >= 1

    def test_dropped_table_entries_are_pruned(self):
        # a cached plan pins the dropped table's storage; the next cache
        # access after DDL must free it instead of waiting for eviction
        db = make_db()
        db.query("SELECT * FROM i")
        assert "SELECT * FROM i" in db.plan_cache
        db.execute("DROP TABLE i")
        db.query("SELECT * FROM o")  # any cache access triggers the prune
        assert "SELECT * FROM i" not in db.plan_cache

    def test_drop_and_recreate_entries_are_pruned(self):
        # the recreated table resolves under the same name, but the
        # cached plan still pins the *old* storage — identity pruning
        # must drop the entry anyway
        db = make_db()
        db.query("SELECT * FROM i")
        db.execute("DROP TABLE i")
        db.execute("CREATE TABLE i (ik INTEGER NOT NULL)")
        db.query("SELECT * FROM o")
        assert "SELECT * FROM i" not in db.plan_cache

    def test_lru_eviction(self):
        db = Database(plan_cache_size=2)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.query("SELECT x FROM t")
        db.query("SELECT x FROM t WHERE x = 1")
        db.query("SELECT x FROM t WHERE x = 2")  # evicts the oldest
        assert len(db.plan_cache) == 2
        assert db.plan_cache_stats.evictions == 1
        assert "SELECT x FROM t" not in db.plan_cache
        assert "SELECT x FROM t WHERE x = 2" in db.plan_cache


class TestExplain:
    def test_parser_accepts_explain(self):
        stmt = parse_statement("EXPLAIN SELECT * FROM o")
        assert isinstance(stmt, n.Explain)
        assert isinstance(stmt.query, n.Select)

    def test_execute_statement_on_explain_ast(self):
        db = make_db()
        text = db.execute_statement(parse_statement("EXPLAIN SELECT * FROM o"))
        assert "SeqScan(o" in text

    def test_explain_reports_cache_miss_then_hit(self):
        db = make_db()
        first = db.execute("EXPLAIN SELECT * FROM o WHERE ck > 5")
        assert "plan cache: miss" in first
        assert "Filter" in first or "SeqScan" in first
        second = db.execute("EXPLAIN SELECT * FROM o WHERE ck > 5")
        assert "plan cache: hit" in second

    def test_explain_shares_entry_with_query(self):
        db = make_db()
        db.execute("EXPLAIN SELECT ck FROM o")
        db.query("SELECT ck FROM o")
        assert db.plan_cache_stats.hits >= 1

    def test_explain_shows_operator_choices(self):
        db = make_db()
        db.insert_rows("i", [(100 + k, 9, 1) for k in range(100)])
        text = db.execute(
            "EXPLAIN SELECT i.ik FROM o, i WHERE i.ok = o.ok"
        )
        assert "IndexJoin" in text

    def test_explain_disabled_cache(self):
        db = make_db()
        db.plan_cache_enabled = False
        text = db.execute("EXPLAIN SELECT * FROM o")
        assert "plan cache: disabled" in text

    def test_explain_non_select_rejected(self):
        db = make_db()
        with pytest.raises(ExecutionError):
            db.execute("EXPLAIN INSERT INTO o VALUES (5, 5)")

    def test_split_explain_is_textual_and_precise(self):
        assert _split_explain("EXPLAIN SELECT 1 FROM t") == (
            False,
            "SELECT 1 FROM t",
        )
        assert _split_explain("  explain   SELECT * FROM t;") == (
            False,
            "SELECT * FROM t",
        )
        assert _split_explain("SELECT * FROM t") is None
        assert _split_explain("EXPLAINX SELECT") is None
        assert _split_explain("EXPLAIN ANALYZE SELECT 1 FROM t") == (
            True,
            "SELECT 1 FROM t",
        )
        assert _split_explain("explain analyze SELECT * FROM t;") == (
            True,
            "SELECT * FROM t",
        )
        # an identifier that merely starts with ANALYZE is not the keyword
        assert _split_explain("EXPLAIN ANALYZED") == (False, "ANALYZED")

    def test_db_explain_helper_keeps_working(self):
        db = make_db()
        text = db.explain("SELECT * FROM o")
        assert "SeqScan(o" in text
