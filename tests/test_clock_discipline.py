"""Wall-clock hygiene on the commit path (ISSUE 10 satellites).

The bug class: producers along the commit pipeline used to stamp
intervals with ``time.time()`` — enqueue instants, fsync windows,
validation spans, the admission ``retry_after`` hint.  A single NTP
step mid-commit then yields negative queue waits, hour-long "fsyncs"
and retry hints that tell clients to come back yesterday.  The fix
makes :class:`repro.obs.trace.CommitObs` the *single* monotonic→wall
conversion point: every producer reads ``time.monotonic()``, and the
one wall-clock sample per commit (taken at obs construction) shifts
spans into epoch time for display.

Three layers of defense:

* a source scan — no ``time.time(`` call may appear anywhere in
  ``src/repro/server/`` or ``src/repro/net/`` (the conversion point in
  ``repro.obs.trace`` is the sole sanctioned caller);
* unit tests on the affine conversion itself;
* a regression: with the wall clock marching *backwards* under the
  engine, a traced commit still emits only non-negative span durations.
"""

from __future__ import annotations

import re
import threading
import time
from pathlib import Path

import pytest

import repro.net
import repro.server
from repro import Database, Tintin
from repro.net.admission import AdmissionQueue
from repro.errors import OverloadError
from repro.obs.trace import CommitObs, RecordingTracer


# -- source scan ------------------------------------------------------------


_WALL_CLOCK = re.compile(r"\btime\.time\(")


@pytest.mark.parametrize("package", [repro.server, repro.net])
def test_no_wall_clock_reads_in_commit_path_packages(package):
    """``time.time(`` is banned from the scheduler and the network
    front end outright — intervals and deadlines there must come from
    the monotonic clock, and span timestamps are converted exactly
    once, inside ``CommitObs``."""
    package_dir = Path(package.__file__).parent
    offenders = []
    for source in sorted(package_dir.glob("*.py")):
        for lineno, line in enumerate(
            source.read_text().splitlines(), start=1
        ):
            if _WALL_CLOCK.search(line):
                offenders.append(f"{source.name}:{lineno}: {line.strip()}")
    assert not offenders, (
        "wall-clock read(s) on the commit path: " + ", ".join(offenders)
    )


# -- the conversion point ---------------------------------------------------


class TestCommitObsClockDiscipline:
    def test_spans_are_monotonic_shifted_by_one_fixed_offset(self):
        tracer = RecordingTracer()
        obs = CommitObs(tracer)
        offset = obs.t0 - obs.m0
        start = time.monotonic()
        end = start + 0.25
        obs.record("stage", start, end)
        obs.finish("committed")
        stage = tracer.spans()[0]
        assert stage.start == pytest.approx(start + offset)
        assert stage.end == pytest.approx(end + offset)
        assert stage.duration == pytest.approx(0.25)
        # the root span shares the same mapping: one commit, one offset
        root = tracer.spans()[-1]
        assert root.name == "commit"
        assert root.start == pytest.approx(obs.t0)

    def test_offset_is_sampled_once_at_construction(self, monkeypatch):
        """A wall-clock step *after* the obs exists cannot move its
        spans: the offset was fixed at construction."""
        tracer = RecordingTracer()
        obs = CommitObs(tracer)
        offset = obs.t0 - obs.m0
        monkeypatch.setattr(time, "time", lambda: 1.0)  # epoch 1970
        start = time.monotonic()
        obs.record("stage", start, start + 0.5)
        span = tracer.spans()[0]
        assert span.start == pytest.approx(start + offset)
        assert span.duration == pytest.approx(0.5)

    def test_backdated_start_keeps_consistent_mapping(self):
        tracer = RecordingTracer()
        earlier = time.monotonic() - 2.0
        obs = CommitObs(tracer, start=earlier)
        assert obs.m0 == earlier
        assert obs.t0 == pytest.approx(earlier + (obs.t0 - obs.m0))
        total = obs.finish("committed")
        assert total == pytest.approx(2.0, abs=0.5)


# -- the regression ---------------------------------------------------------


def _build_tintin() -> Tintin:
    db = Database("clock")
    db.execute("CREATE TABLE orders (id INTEGER PRIMARY KEY, total DOUBLE)")
    db.execute(
        "CREATE TABLE items (order_id INTEGER, n INTEGER, "
        "PRIMARY KEY (order_id, n), "
        "FOREIGN KEY (order_id) REFERENCES orders (id))"
    )
    tintin = Tintin(db)
    tintin.install()
    tintin.add_assertion(
        "CREATE ASSERTION atLeastOneItem CHECK (NOT EXISTS ("
        "SELECT * FROM orders AS o WHERE NOT EXISTS ("
        "SELECT * FROM items AS i WHERE i.order_id = o.id)))"
    )
    return tintin


def test_backward_stepping_wall_clock_yields_sane_spans(monkeypatch):
    """The wall clock loses ten seconds between any two readings while
    commits run.  Before the sweep, ``queue.wait``/``validate``/
    ``apply`` spans mixed clocks or spanned two wall readings and went
    negative; now every duration must come out non-negative and small.
    """
    state = {"now": 1_700_000_000.0}

    def broken_wall():
        state["now"] -= 10.0
        return state["now"]

    monkeypatch.setattr(time, "time", broken_wall)
    tintin = _build_tintin()
    tracer = RecordingTracer()
    tintin.set_tracer(tracer)
    for key in (1, 2):
        session = tintin.create_session()
        session.insert("orders", [(key, 1.0)])
        session.insert("items", [(key, 1)])
        result = session.commit()
        assert result.committed
    spans = tracer.spans()
    names = {span.name for span in spans}
    assert "commit" in names and "validate" in names
    assert "queue.wait" in names and "apply" in names
    for span in spans:
        assert span.duration >= 0.0, (
            f"negative duration on {span.name}: {span.duration}"
        )
        assert span.duration < 60.0, (
            f"wall-step leaked into {span.name}: {span.duration}"
        )


# -- admission retry_after --------------------------------------------------


class TestRetryAfterBacklogAge:
    def test_hint_grows_with_oldest_waiter_age(self):
        """Step a fake monotonic clock under the queue: the shed
        newcomer's hint is the base plus how long the oldest waiting
        request has already been queued."""
        clock = {"now": 100.0}
        started = threading.Event()
        release = threading.Event()
        queue = AdmissionQueue(
            max_depth=2,
            workers=1,
            retry_after_base=0.05,
            clock=lambda: clock["now"],
        )
        outcomes: dict[str, object] = {}
        try:

            def blocker():
                started.set()
                release.wait(timeout=10)
                return "ran"

            queue.submit(blocker, lambda r, e: outcomes.update(first=(r, e)))
            assert started.wait(timeout=10)
            # the worker is busy; this one waits, enqueued at t=100
            queue.submit(
                lambda: "ran",
                lambda r, e: outcomes.update(second=(r, e)),
            )
            clock["now"] = 103.0  # the waiter is now 3s old
            queue.submit(
                lambda: "never",
                lambda r, e: outcomes.update(shed=(r, e)),
            )
            _, error = outcomes["shed"]
            assert isinstance(error, OverloadError)
            assert error.retry_after == pytest.approx(0.05 + 3.0)
        finally:
            release.set()
            queue.drain(timeout=10)
            queue.stop()
        assert outcomes["first"] == ("ran", None)
        assert outcomes["second"] == ("ran", None)

    def test_hint_is_base_when_nothing_waits(self):
        queue = AdmissionQueue(
            max_depth=2, workers=1, retry_after_base=0.07
        )
        try:
            assert queue._retry_after() == pytest.approx(0.07)
        finally:
            queue.stop()

    def test_hint_never_goes_negative_on_clock_weirdness(self):
        """A clock injected for tests (or a buggy one) running behind
        the enqueue stamp must clamp at the base, not go negative."""
        clock = {"now": 100.0}
        started = threading.Event()
        release = threading.Event()
        queue = AdmissionQueue(
            max_depth=2,
            workers=1,
            retry_after_base=0.05,
            clock=lambda: clock["now"],
        )
        try:
            def blocker():
                started.set()
                release.wait(timeout=10)

            queue.submit(blocker, lambda r, e: None)
            assert started.wait(timeout=10)
            queue.submit(lambda: None, lambda r, e: None)
            clock["now"] = 99.0  # behind the waiter's enqueue stamp
            assert queue._retry_after() == pytest.approx(0.05)
        finally:
            release.set()
            queue.drain(timeout=10)
            queue.stop()
