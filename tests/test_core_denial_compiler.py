"""Tests for assertion -> denial compilation."""

import pytest

from repro.core import Assertion, DenialCompiler
from repro.errors import (
    AssertionDefinitionError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.logic import Atom, Builtin, Constant, NegatedConjunction
from repro.minidb import Database


@pytest.fixture
def db():
    database = Database("tpc")
    database.execute(
        "CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, o_custkey INTEGER)"
    )
    database.execute(
        "CREATE TABLE lineitem (l_orderkey INTEGER NOT NULL, "
        "l_linenumber INTEGER NOT NULL, l_quantity INTEGER, "
        "PRIMARY KEY (l_orderkey, l_linenumber), "
        "FOREIGN KEY (l_orderkey) REFERENCES orders (o_orderkey))"
    )
    return database


def compile_sql(db, sql):
    return DenialCompiler(db.catalog).compile(Assertion.parse(sql))


def not_exists(inner):
    return f"CREATE ASSERTION a CHECK (NOT EXISTS ({inner}))"


class TestAssertionParsing:
    def test_parse_create_assertion(self):
        a = Assertion.parse(not_exists("SELECT * FROM t"))
        assert a.name == "a"

    def test_non_assertion_statement_rejected(self):
        with pytest.raises(AssertionDefinitionError):
            Assertion.parse("SELECT * FROM t")

    def test_check_must_be_not_exists(self):
        a = Assertion.parse("CREATE ASSERTION a CHECK (EXISTS (SELECT * FROM t))")
        with pytest.raises(AssertionDefinitionError):
            a.inner_queries()

    def test_conjunction_of_not_exists_allowed(self):
        a = Assertion.parse(
            "CREATE ASSERTION a CHECK (NOT EXISTS (SELECT * FROM t) "
            "AND NOT EXISTS (SELECT * FROM u))"
        )
        assert len(a.inner_queries()) == 2


class TestRunningExample:
    SQL = (
        "CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS ("
        "SELECT * FROM orders AS o WHERE NOT EXISTS ("
        "SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey)))"
    )

    def test_produces_paper_denial(self, db):
        denials = compile_sql(db, self.SQL)
        assert len(denials) == 1
        denial = denials[0]
        # order(o) ∧ ¬lineIt(l, o) → ⊥
        assert len(denial.positive_atoms) == 1
        assert denial.positive_atoms[0].predicate.name == "orders"
        ncs = denial.negated_conjunctions
        assert len(ncs) == 1
        assert ncs[0].is_simple
        inner = ncs[0].atoms[0]
        assert inner.predicate.name == "lineitem"
        # the correlated variable is shared between the two atoms
        order_key_var = denial.positive_atoms[0].terms[0]
        assert inner.terms[0] == order_key_var

    def test_case_insensitive_tables_and_columns(self, db):
        sql = self.SQL.replace("orders", "ORDERS").replace(
            "l_orderkey", "L_ORDERKEY"
        )
        denials = compile_sql(db, sql)
        assert len(denials) == 1


class TestConditionTranslation:
    def test_builtin_comparison(self, db):
        denials = compile_sql(
            db, not_exists("SELECT * FROM lineitem AS l WHERE l.l_quantity > 100")
        )
        assert denials[0].builtins == (
            Builtin(">", denials[0].positive_atoms[0].terms[2], Constant(100)),
        )

    def test_equality_with_constant_binds_term(self, db):
        denials = compile_sql(
            db, not_exists("SELECT * FROM orders AS o WHERE o.o_custkey = 7")
        )
        assert denials[0].positive_atoms[0].terms[1] == Constant(7)

    def test_join_unifies_variables(self, db):
        denials = compile_sql(
            db,
            not_exists(
                "SELECT * FROM orders AS o, lineitem AS l "
                "WHERE o.o_orderkey = l.l_orderkey"
            ),
        )
        (denial,) = denials
        orders_atom = next(
            a for a in denial.positive_atoms if a.predicate.name == "orders"
        )
        lineitem_atom = next(
            a for a in denial.positive_atoms if a.predicate.name == "lineitem"
        )
        assert orders_atom.terms[0] == lineitem_atom.terms[0]

    def test_contradictory_constants_drop_branch(self, db):
        denials = compile_sql(
            db,
            not_exists(
                "SELECT * FROM orders AS o WHERE o.o_custkey = 1 AND o.o_custkey = 2"
            ),
        )
        assert denials == []

    def test_or_produces_two_denials(self, db):
        denials = compile_sql(
            db,
            not_exists(
                "SELECT * FROM lineitem AS l "
                "WHERE l.l_quantity > 100 OR l.l_quantity < 0"
            ),
        )
        assert len(denials) == 2

    def test_union_produces_two_denials(self, db):
        denials = compile_sql(
            db,
            not_exists(
                "SELECT * FROM lineitem AS l WHERE l.l_quantity > 100 "
                "UNION SELECT * FROM lineitem AS l WHERE l.l_quantity < 0"
            ),
        )
        assert len(denials) == 2
        assert denials[0].name == "a"
        assert denials[1].name == "a_b2"

    def test_in_list_distributes(self, db):
        denials = compile_sql(
            db,
            not_exists("SELECT * FROM orders AS o WHERE o.o_custkey IN (1, 2, 3)"),
        )
        assert len(denials) == 3
        constants = {d.positive_atoms[0].terms[1] for d in denials}
        assert constants == {Constant(1), Constant(2), Constant(3)}

    def test_not_in_list_becomes_inequalities(self, db):
        denials = compile_sql(
            db,
            not_exists(
                "SELECT * FROM orders AS o WHERE o.o_custkey NOT IN (1, 2)"
            ),
        )
        (denial,) = denials
        assert len(denial.builtins) == 2
        assert all(b.op == "<>" for b in denial.builtins)

    def test_between_translates(self, db):
        denials = compile_sql(
            db,
            not_exists(
                "SELECT * FROM lineitem AS l WHERE l.l_quantity BETWEEN 5 AND 9"
            ),
        )
        ops = sorted(b.op for b in denials[0].builtins)
        assert ops == ["<=", ">="]

    def test_true_literal_dropped(self, db):
        denials = compile_sql(
            db, not_exists("SELECT * FROM orders AS o WHERE TRUE")
        )
        assert len(denials) == 1
        assert denials[0].builtins == ()

    def test_false_literal_kills_branch(self, db):
        denials = compile_sql(
            db, not_exists("SELECT * FROM orders AS o WHERE FALSE")
        )
        assert denials == []


class TestSubqueryTranslation:
    def test_positive_exists_flattens(self, db):
        denials = compile_sql(
            db,
            not_exists(
                "SELECT * FROM orders AS o WHERE EXISTS ("
                "SELECT * FROM lineitem AS l "
                "WHERE l.l_orderkey = o.o_orderkey AND l.l_quantity > 9)"
            ),
        )
        (denial,) = denials
        assert len(denial.positive_atoms) == 2
        assert denial.negated_conjunctions == ()

    def test_in_subquery_flattens(self, db):
        denials = compile_sql(
            db,
            not_exists(
                "SELECT * FROM orders AS o WHERE o.o_orderkey IN ("
                "SELECT l_orderkey FROM lineitem)"
            ),
        )
        (denial,) = denials
        assert len(denial.positive_atoms) == 2

    def test_not_in_subquery_becomes_negation(self, db):
        denials = compile_sql(
            db,
            not_exists(
                "SELECT * FROM lineitem AS l WHERE l.l_orderkey NOT IN ("
                "SELECT o_orderkey FROM orders)"
            ),
        )
        (denial,) = denials
        assert len(denial.negated_conjunctions) == 1
        assert denial.negated_conjunctions[0].atoms[0].predicate.name == "orders"

    def test_nested_not_exists(self, db):
        denials = compile_sql(
            db,
            not_exists(
                "SELECT * FROM orders AS o WHERE NOT EXISTS ("
                "SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey "
                "AND NOT EXISTS (SELECT * FROM lineitem AS m "
                "WHERE m.l_orderkey = l.l_orderkey AND m.l_quantity > l.l_quantity))"
            ),
        )
        (denial,) = denials
        nc = denial.negated_conjunctions[0]
        assert not nc.is_simple
        assert len(nc.nested) == 1

    def test_negated_subquery_with_filter_stays_simple(self, db):
        denials = compile_sql(
            db,
            not_exists(
                "SELECT * FROM orders AS o WHERE NOT EXISTS ("
                "SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey "
                "AND l.l_quantity > 5)"
            ),
        )
        nc = denials[0].negated_conjunctions[0]
        assert nc.is_simple
        assert len(nc.builtins) == 1

    def test_union_under_negation_gives_two_conjunctions(self, db):
        denials = compile_sql(
            db,
            not_exists(
                "SELECT * FROM orders AS o WHERE NOT EXISTS ("
                "SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey "
                "UNION SELECT * FROM lineitem AS l WHERE l.l_quantity = 0)"
            ),
        )
        assert len(denials[0].negated_conjunctions) == 2


class TestRejections:
    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            compile_sql(db, not_exists("SELECT * FROM ghost"))

    def test_unknown_column(self, db):
        with pytest.raises(UnknownColumnError):
            compile_sql(db, not_exists("SELECT * FROM orders AS o WHERE o.nope = 1"))

    def test_view_reference_rejected(self, db):
        db.execute("CREATE VIEW v AS SELECT * FROM orders")
        with pytest.raises(AssertionDefinitionError, match="view"):
            compile_sql(db, not_exists("SELECT * FROM v"))

    def test_arithmetic_rejected(self, db):
        with pytest.raises(AssertionDefinitionError, match="arithmetic"):
            compile_sql(
                db,
                not_exists(
                    "SELECT * FROM lineitem AS l WHERE l.l_quantity + 1 > 5"
                ),
            )

    def test_is_null_rejected(self, db):
        with pytest.raises(AssertionDefinitionError):
            compile_sql(
                db, not_exists("SELECT * FROM orders AS o WHERE o.o_custkey IS NULL")
            )

    def test_null_literal_rejected(self, db):
        with pytest.raises(AssertionDefinitionError):
            compile_sql(
                db, not_exists("SELECT * FROM orders AS o WHERE o.o_custkey = NULL")
            )

    def test_ambiguous_column_rejected(self, db):
        db.execute("CREATE TABLE other (o_custkey INTEGER)")
        with pytest.raises(AssertionDefinitionError, match="ambiguous"):
            compile_sql(
                db,
                not_exists("SELECT * FROM orders, other WHERE o_custkey = 1"),
            )

    def test_duplicate_binding_rejected(self, db):
        with pytest.raises(AssertionDefinitionError, match="duplicate"):
            compile_sql(
                db, not_exists("SELECT * FROM orders AS x, lineitem AS x")
            )


class TestOuterTermEqualityUnderNegation:
    def test_outer_equality_kept_inside_negation(self, db):
        # o.o_custkey = o.o_orderkey under NOT EXISTS must remain a
        # condition of the subquery, not leak out as a unification
        denials = compile_sql(
            db,
            not_exists(
                "SELECT * FROM orders AS o WHERE NOT EXISTS ("
                "SELECT * FROM lineitem AS l "
                "WHERE o.o_custkey = o.o_orderkey)"
            ),
        )
        (denial,) = denials
        nc = denial.negated_conjunctions[0]
        assert len(nc.builtins) == 1
        assert nc.builtins[0].op == "="
        # the denial itself must NOT constrain the two order columns
        orders_atom = denial.positive_atoms[0]
        assert orders_atom.terms[0] != orders_atom.terms[1]
        assert denial.builtins == ()
