"""Non-constraint errors must propagate out of the commit scheduler.

ISSUE 4 satellite: PR 3 narrowed ``Session.query_spliced``'s bare
``except Exception`` to duplicate-key conflicts; this locks the rest of
the server package to the same standard.  Two layers of defense:

* a source audit — no handler in ``repro.server`` may catch
  ``Exception``/``BaseException`` (or use a bare ``except``) without
  re-raising; ``repro.net`` and ``repro.obs`` (ISSUE 10) are held to a
  slightly weaker bar — housekeeping paths there (socket teardown,
  slowdown broadcasts, gauge callbacks) may swallow, but only if the
  handler *logs* the failure with context;
* runtime regressions — an engine error (not a constraint violation)
  raised inside ``_commit_group``/``_commit_serially`` reaches the
  leader's caller as the original exception, and every other queued
  member is rejected with an attributed error instead of hanging or
  silently "succeeding".
"""

from __future__ import annotations

import ast
import threading
from pathlib import Path

import pytest

import repro.net
import repro.obs
import repro.server
from repro import Database, Tintin
from repro.errors import ConstraintViolation


def build_tintin() -> Tintin:
    db = Database("errors")
    db.execute("CREATE TABLE orders (id INTEGER PRIMARY KEY, total DOUBLE)")
    db.execute(
        "CREATE TABLE items (order_id INTEGER, n INTEGER, "
        "PRIMARY KEY (order_id, n), "
        "FOREIGN KEY (order_id) REFERENCES orders (id))"
    )
    tintin = Tintin(db)
    tintin.install()
    tintin.add_assertion(
        "CREATE ASSERTION atLeastOneItem CHECK (NOT EXISTS ("
        "SELECT * FROM orders AS o WHERE NOT EXISTS ("
        "SELECT * FROM items AS i WHERE i.order_id = o.id)))"
    )
    return tintin


# -- source audit -----------------------------------------------------------


def _broad_handlers(tree: ast.AST) -> list[ast.ExceptHandler]:
    """Handlers catching Exception/BaseException/everything."""
    broad = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            broad.append(node)
        elif isinstance(node.type, ast.Name) and node.type.id in (
            "Exception",
            "BaseException",
        ):
            broad.append(node)
    return broad


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


_LOG_METHODS = {"debug", "info", "warning", "error", "exception", "critical"}


def _logs(handler: ast.ExceptHandler) -> bool:
    """Whether the handler calls a logger method (``log.warning(...)``,
    ``SLOW_LOG.error(...)``, ...) — the minimum a swallowing
    housekeeping handler owes the operator."""
    for node in ast.walk(handler):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _LOG_METHODS
        ):
            return True
    return False


def _captures(handler: ast.ExceptHandler) -> bool:
    """Whether the handler binds the exception and stores it somewhere
    (``error = exc`` / ``self._start_error = exc``) — the deferred-
    delivery pattern: the exception is reported through a callback or
    re-raised by another thread, not dropped."""
    if handler.name is None:
        return False
    for node in ast.walk(handler):
        if isinstance(node, ast.Assign) and (
            isinstance(node.value, ast.Name)
            and node.value.id == handler.name
        ):
            return True
    return False


def _audit(package, allow_logging: bool) -> list[str]:
    package_dir = Path(package.__file__).parent
    offenders = []
    for source in sorted(package_dir.glob("*.py")):
        tree = ast.parse(source.read_text(), filename=str(source))
        for handler in _broad_handlers(tree):
            if _reraises(handler) or _captures(handler):
                continue
            if allow_logging and _logs(handler):
                continue
            offenders.append(f"{source.name}:{handler.lineno}")
    return offenders


def test_no_swallow_all_handlers_in_server_package():
    offenders = _audit(repro.server, allow_logging=False)
    assert not offenders, (
        "broad exception handler(s) without re-raise in repro.server: "
        + ", ".join(offenders)
    )


def test_no_silent_swallow_in_net_and_obs_packages():
    """ISSUE 10: ``repro.net``/``repro.obs`` housekeeping handlers may
    swallow (teardown must run to completion even over a dead socket)
    but never *silently* — each one must log what it dropped."""
    offenders = _audit(repro.net, allow_logging=True) + _audit(
        repro.obs, allow_logging=True
    )
    assert not offenders, (
        "broad exception handler(s) that neither re-raise nor log in "
        "repro.net/repro.obs: " + ", ".join(offenders)
    )


# -- runtime regressions ----------------------------------------------------


def _stage_valid(session, key: int) -> None:
    session.insert("orders", [(key, 1.0)])
    session.insert("items", [(key, 1)])


def test_apply_error_propagates_from_commit(monkeypatch):
    """A non-constraint engine failure inside the apply escapes
    ``session.commit()`` unwrapped — it is a bug, not a rejection."""
    tintin = build_tintin()
    session = tintin.create_session()
    _stage_valid(session, 1)

    def broken_apply(inserts, deletes):
        raise RuntimeError("index corruption")

    monkeypatch.setattr(tintin.db, "apply_batch", broken_apply)
    with pytest.raises(RuntimeError, match="index corruption"):
        session.commit()


def test_check_error_propagates_from_commit(monkeypatch):
    """Same contract for the validation pass (check_only)."""
    tintin = build_tintin()
    session = tintin.create_session()
    _stage_valid(session, 1)

    def broken_check(db, overlays=None, **kwargs):
        raise ValueError("planner exploded")

    monkeypatch.setattr(
        tintin.safe_commit_proc, "check_only", broken_check
    )
    with pytest.raises(ValueError, match="planner exploded"):
        session.commit()


def test_followers_get_attributed_rejection_when_window_fails(monkeypatch):
    """When the leader's window dies on an engine error, queued
    followers are rejected with the error attributed — never left
    hanging, never falsely committed."""
    tintin = build_tintin()
    scheduler = tintin.sessions.scheduler
    leader_session = tintin.create_session()
    follower_session = tintin.create_session()
    _stage_valid(leader_session, 1)
    _stage_valid(follower_session, 2)

    real_process = scheduler._process_batch
    follower_queued = threading.Event()
    release_leader = threading.Event()

    def gated_process():
        follower_queued.wait(timeout=5)
        release_leader.wait(timeout=5)
        real_process()

    monkeypatch.setattr(scheduler, "_process_batch", gated_process)

    def broken_apply(inserts, deletes):
        raise RuntimeError("disk on fire")

    monkeypatch.setattr(tintin.db, "apply_batch", broken_apply)

    leader_error: list[BaseException] = []
    follower_results: list = []

    def leader():
        try:
            leader_session.commit()
        except BaseException as exc:  # the propagation under test
            leader_error.append(exc)

    def follower():
        follower_queued.set()
        follower_results.append(follower_session.commit())

    leader_thread = threading.Thread(target=leader)
    leader_thread.start()
    follower_queued.wait(timeout=5)
    follower_thread = threading.Thread(target=follower)
    follower_thread.start()
    # let both requests enqueue, then open the window
    import time

    time.sleep(0.05)
    release_leader.set()
    leader_thread.join(timeout=10)
    follower_thread.join(timeout=10)
    assert not leader_thread.is_alive() and not follower_thread.is_alive()

    # one of the two saw the raw engine error (whoever led the window);
    # the other was rejected with the failure attributed
    raw_errors = len(leader_error)
    rejected = [r for r in follower_results if r is not None]
    if raw_errors:
        assert isinstance(leader_error[0], RuntimeError)
    for result in rejected:
        assert not result.committed
        assert result.constraint_error is not None
        assert "disk on fire" in result.constraint_error
    assert raw_errors + len(rejected) == 2


def test_constraint_violations_are_still_reported_not_raised():
    """The narrowing must not over-shoot: genuine constraint conflicts
    stay *reported* through CommitResult, exactly as before."""
    tintin = build_tintin()
    first = tintin.create_session()
    _stage_valid(first, 1)
    assert first.commit().committed
    second = tintin.create_session()
    # same primary key, different payload: not deduplicated by the
    # net-event set semantics, so the apply hits the unique index
    second.insert("orders", [(1, 999.0)])
    second.insert("items", [(1, 9)])
    result = second.commit()
    assert not result.committed
    assert result.constraint_error or result.violations


def test_query_spliced_narrowing_still_propagates_engine_errors(monkeypatch):
    """query_spliced swallows only duplicate-key ConstraintViolation
    during splice-in; any other insert failure must escape."""
    tintin = build_tintin()
    session = tintin.create_session()
    _stage_valid(session, 7)

    table = tintin.db.table("orders")
    original_insert = table.insert

    def broken_insert(row):
        if row[0] == 7:
            raise RuntimeError("page fault")
        return original_insert(row)

    monkeypatch.setattr(table, "insert", broken_insert)
    with pytest.raises(RuntimeError, match="page fault"):
        session.query_spliced("SELECT * FROM orders AS o")
