"""Network front end: handshake, pipelining, admission control,
backpressure, deadlines, the expiry sweeper, stats snapshots, and
graceful shutdown."""

import threading
import time

import pytest

from repro.core import Tintin
from repro.errors import (
    DeadlineExceeded,
    ExecutionError,
    OverloadError,
    ProtocolError,
    SessionExpired,
)
from repro.minidb import Database
from repro.net import (
    AdmissionQueue,
    FaultInjector,
    TintinClient,
    TintinServer,
)
from repro.net import protocol as p


def make_engine():
    db = Database("netdemo")
    db.execute("CREATE TABLE items (id INT NOT NULL, qty INT)")
    tintin = Tintin(db)
    tintin.install()
    tintin.add_assertion(
        "CREATE ASSERTION positiveQty CHECK (NOT EXISTS ("
        "SELECT * FROM items AS i WHERE i.qty < 0))"
    )
    return tintin


@pytest.fixture
def server():
    tintin = make_engine()
    server = tintin.listen()
    yield server
    if not server._stopped.is_set():
        server.shutdown(drain_timeout=5)


@pytest.fixture
def client(server):
    client = TintinClient(*server.address)
    yield client
    client.close_socket()


class TestHandshake:
    def test_hello_reply_carries_session_and_version(self, server):
        with TintinClient(*server.address) as client:
            assert client.session_id is not None
            assert client.connected

    def test_priority_is_recorded_on_the_session(self, server):
        with TintinClient(*server.address, priority=7) as client:
            session = server.tintin.sessions.get(client.session_id)
            assert session.priority == 7

    def test_request_before_hello_is_a_protocol_error(self, server):
        client = TintinClient(*server.address, connect=False)
        client._sock = __import__("socket").create_connection(
            server.address, timeout=5
        )
        client._sock.settimeout(5)
        client._rfile = client._sock.makefile("rb")
        request_id = client._send(p.T_COMMIT, p.encode_json({}))
        with pytest.raises(ProtocolError):
            ftype, payload = client._wait(request_id)
            if ftype == p.T_ERROR:
                client._raise_error(payload)
        client.close_socket()

    def test_goodbye_expires_the_remote_session(self, server):
        client = TintinClient(*server.address)
        session_id = client.session_id
        client.close()
        with pytest.raises(SessionExpired):
            server.tintin.sessions.get(session_id)


class TestSessionOps:
    def test_stage_commit_query_round_trip(self, client):
        assert client.insert("items", [(1, 5), (2, 3)]) == 2
        verdict = client.commit()
        assert verdict["committed"] is True
        assert verdict["applied_rows"] == 2
        rows = client.query("SELECT id, qty FROM items")
        assert rows.columns == ["id", "qty"]
        assert sorted(rows.rows) == [(1, 5), (2, 3)]

    def test_execute_stages_dml_and_answers_selects(self, client):
        assert client.execute("INSERT INTO items VALUES (9, 1)") == 1
        rows = client.execute("SELECT id FROM items")
        # read-your-writes: the staged row is visible pre-commit
        assert rows.rows == [(9,)]

    def test_constraint_violation_is_a_clean_rejection(self, client):
        client.insert("items", [(1, -4)])
        verdict = client.commit()
        assert verdict["committed"] is False
        assert verdict["violations"]
        assert client.query("SELECT * FROM items").rows == []

    def test_delete_and_discard(self, client):
        client.insert("items", [(1, 1)])
        client.commit()
        client.delete("items", [(1, 1)])
        assert client.discard() == 1
        client.commit()
        assert len(client.query("SELECT * FROM items")) == 1

    def test_execution_errors_map_back(self, client):
        with pytest.raises(ExecutionError):
            client.query("SELECT * FROM no_such_table")

    def test_pipelined_requests_answer_in_order(self, client):
        # issue three staged inserts back-to-back without reading, then
        # collect the responses: ids map 1:1 and arrive in order
        ids = [
            client._send(
                p.T_INSERT, p.encode_events_payload("items", [(i, i)])
            )
            for i in range(3)
        ]
        # wait for the LAST first: earlier replies get parked
        last = client._wait(ids[-1])
        assert last[0] == p.T_OK
        for request_id in ids[:-1]:
            ftype, payload = client._wait(request_id)
            assert ftype == p.T_OK
            assert p.decode_json(payload)["staged"] == 1
        verdict = client.commit()
        assert verdict["applied_rows"] == 3


class TestDeadlines:
    def test_zero_timeout_expires_at_admission(self, server, client):
        client.insert("items", [(1, 1)])
        with pytest.raises(DeadlineExceeded):
            client.commit(timeout=0.0, retry=False)
        # nothing reached the base table...
        assert server.tintin.db.query("SELECT * FROM items").rows == []
        # ...but the staged update survived the rejection: the request
        # was never admitted, so a later retry can still commit it
        assert client.query("SELECT * FROM items").rows == [(1, 1)]
        assert client.commit()["committed"] is True

    def test_generous_timeout_commits_normally(self, client):
        client.insert("items", [(1, 1)])
        verdict = client.commit(timeout=30.0)
        assert verdict["committed"] is True


class TestAdmissionQueue:
    def run(self, queue, fn=lambda: "ok", priority=0, deadline=None):
        box = {}
        done = threading.Event()

        def on_done(result, error):
            box["result"], box["error"] = result, error
            done.set()

        queue.submit(fn, on_done, priority=priority, deadline=deadline)
        return box, done

    def test_happy_path(self):
        queue = AdmissionQueue(max_depth=4, workers=1)
        box, done = self.run(queue)
        assert done.wait(5)
        assert box["result"] == "ok" and box["error"] is None
        queue.stop()

    def test_full_queue_sheds_newcomer_with_retry_after(self):
        gate = threading.Event()
        queue = AdmissionQueue(max_depth=2, workers=1)
        holders = [self.run(queue, fn=gate.wait) for _ in range(2)]
        box, done = self.run(queue)  # depth == max_depth: shed
        assert done.wait(5)
        assert isinstance(box["error"], OverloadError)
        assert box["error"].retry_after > 0
        assert box["error"].retriable
        gate.set()
        for holder_box, holder_done in holders:
            assert holder_done.wait(5)
        assert queue.stats.snapshot()["shed_newcomer"] == 1
        queue.stop()

    def test_higher_priority_newcomer_sheds_waiting_low_priority(self):
        gate = threading.Event()
        queue = AdmissionQueue(max_depth=2, workers=1)
        running_box, running_done = self.run(queue, fn=gate.wait)
        waiting_box, waiting_done = self.run(queue, priority=0)
        vip_box, vip_done = self.run(queue, fn=gate.wait, priority=5)
        # the waiting priority-0 request was evicted for the VIP
        assert waiting_done.wait(5)
        assert isinstance(waiting_box["error"], OverloadError)
        gate.set()
        assert vip_done.wait(5)
        assert vip_box["error"] is None
        assert queue.stats.snapshot()["shed_waiting"] == 1
        queue.stop()

    def test_equal_priority_ties_shed_the_newcomer(self):
        gate = threading.Event()
        queue = AdmissionQueue(max_depth=2, workers=1)
        self.run(queue, fn=gate.wait)
        waiting_box, waiting_done = self.run(queue)
        newcomer_box, newcomer_done = self.run(queue)
        assert newcomer_done.wait(5)
        assert isinstance(newcomer_box["error"], OverloadError)
        assert not waiting_done.is_set()  # FIFO fairness kept its place
        gate.set()
        assert waiting_done.wait(5)
        queue.stop()

    def test_deadline_expired_while_queued_is_cancelled(self):
        gate = threading.Event()
        queue = AdmissionQueue(max_depth=4, workers=1)
        self.run(queue, fn=gate.wait)
        started = []
        box, done = self.run(
            queue,
            fn=lambda: started.append(1),
            deadline=time.monotonic() + 0.05,
        )
        time.sleep(0.15)
        gate.set()
        assert done.wait(5)
        assert isinstance(box["error"], DeadlineExceeded)
        assert started == []  # never started
        queue.stop()

    def test_watermark_hysteresis_fires_transitions(self):
        transitions = []
        gate = threading.Event()
        queue = AdmissionQueue(
            max_depth=8,
            high_watermark=2,
            low_watermark=0,
            workers=1,
            on_backpressure=lambda active, delay: transitions.append(
                (active, delay)
            ),
        )
        boxes = [self.run(queue, fn=gate.wait) for _ in range(3)]
        assert queue.backpressure
        assert transitions and transitions[0][0] is True
        assert transitions[0][1] > 0
        gate.set()
        for _, done in boxes:
            assert done.wait(5)
        deadline = time.monotonic() + 5
        while queue.backpressure and time.monotonic() < deadline:
            time.sleep(0.01)
        assert transitions[-1] == (False, 0.0)
        queue.stop()

    def test_drain_sheds_new_work_and_empties(self):
        queue = AdmissionQueue(max_depth=4, workers=1)
        box, done = self.run(queue)
        assert queue.drain(timeout=5)
        late_box, late_done = self.run(queue)
        assert late_done.wait(5)
        assert isinstance(late_box["error"], OverloadError)
        queue.stop()


class TestBackpressureOverWire:
    def test_slowdown_frames_reach_clients(self):
        tintin = make_engine()
        faults = FaultInjector()
        server = tintin.listen(
            max_depth=4,
            high_watermark=1,
            low_watermark=0,
            commit_workers=1,
            faults=faults,
        )
        # hold the scheduler so commits pile up in admission
        faults.delay("scheduler.window", 0.3, times=2)
        clients = [TintinClient(*server.address) for _ in range(3)]
        try:
            threads = []
            for client in clients:
                client.insert("items", [(1, 1)])
                thread = threading.Thread(
                    target=lambda c=client: c.commit(retry=True)
                )
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join(timeout=10)
            # at least one client heard a SLOWDOWN while queued
            assert any(c.slowdown_count > 0 for c in clients)
        finally:
            for client in clients:
                client.close_socket()
            server.shutdown(drain_timeout=5)

    def test_overload_verdict_over_wire_is_retriable(self):
        tintin = make_engine()
        faults = FaultInjector()
        server = tintin.listen(
            max_depth=1, commit_workers=1, faults=faults
        )
        faults.delay("scheduler.window", 0.5, times=1)
        holder = TintinClient(*server.address)
        shed = TintinClient(*server.address)
        try:
            holder.insert("items", [(1, 1)])
            thread = threading.Thread(target=holder.commit)
            thread.start()
            time.sleep(0.1)  # let the holder occupy the only slot
            shed.insert("items", [(2, 1)])
            with pytest.raises(OverloadError) as excinfo:
                shed.commit(retry=False)
            assert excinfo.value.retry_after > 0
            thread.join(timeout=10)
            metrics = server.metrics()
            assert metrics["admission"]["shed_total"] >= 1
        finally:
            holder.close_socket()
            shed.close_socket()
            server.shutdown(drain_timeout=5)


class TestSweeper:
    def test_sweeper_reaps_lapsed_ttl_sessions(self):
        tintin = make_engine()
        manager = tintin.sessions
        manager.start_sweeper(interval=0.05)
        try:
            session = manager.create(ttl=0.1)
            deadline = time.monotonic() + 5
            while (
                manager.active_count > 0 and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert manager.active_count == 0
            assert session.expired
            assert manager.swept_sessions >= 1
        finally:
            manager.stop_sweeper()

    def test_sweeper_reaps_idle_sessions(self):
        tintin = make_engine()
        manager = tintin.sessions
        manager.start_sweeper(interval=0.05, max_idle=0.1)
        try:
            manager.create()  # no TTL: only idleness can reap it
            deadline = time.monotonic() + 5
            while (
                manager.active_count > 0 and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert manager.active_count == 0
        finally:
            manager.stop_sweeper()

    def test_sweeper_skips_pinned_sessions(self):
        tintin = make_engine()
        manager = tintin.sessions
        session = manager.create(ttl=0.05)
        with session._commit_pin():
            time.sleep(0.1)
            manager.sweep()
            assert not session.expired  # pinned: TTL lapse deferred
        manager.sweep()
        assert session.expired

    def test_tintin_close_stops_the_sweeper(self):
        tintin = make_engine()
        tintin.sessions.start_sweeper(interval=0.05)
        assert tintin.sessions.sweeper_running
        tintin.close()  # non-durable engine: close still stops it
        assert not tintin.sessions.sweeper_running

    def test_start_sweeper_is_idempotent(self):
        tintin = make_engine()
        manager = tintin.sessions
        manager.start_sweeper(interval=0.05)
        first = manager._sweeper
        manager.start_sweeper(interval=0.05)
        assert manager._sweeper is first
        manager.stop_sweeper()


class TestStatsSnapshots:
    def test_scheduler_stats_snapshot_is_a_plain_dict(self, client):
        client.insert("items", [(1, 1)])
        client.commit()
        snapshot = client.metrics()["scheduler"]
        assert isinstance(snapshot, dict)
        assert snapshot["commits"] >= 1
        assert "deadline_expired" in snapshot

    def test_snapshot_is_consistent_under_concurrent_bumps(self):
        from repro.server.scheduler import SchedulerStats

        stats = SchedulerStats()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                stats.bump(commits=1, batches=1)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(50):
                snapshot = stats.snapshot()
                # both fields bump together under one lock, so a
                # consistent snapshot never shows them apart
                assert snapshot["commits"] == snapshot["batches"]
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5)

    def test_health_and_metrics_surfaces(self, server, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["sessions"] >= 1
        metrics = client.metrics()
        for key in ("server", "admission", "scheduler", "sessions"):
            assert key in metrics
        assert metrics["server"]["connections_total"] >= 1


class TestGracefulShutdown:
    def test_shutdown_drains_and_refuses_newcomers(self):
        tintin = make_engine()
        server = tintin.listen()
        client = TintinClient(*server.address)
        client.insert("items", [(1, 1)])
        assert client.commit()["committed"] is True
        assert server.shutdown(drain_timeout=5) is True
        # the acked commit survived the drain
        assert len(tintin.db.query("SELECT * FROM items").rows) == 1
        with pytest.raises(Exception):
            TintinClient(*server.address, timeout=1)
        client.close_socket()

    def test_hello_during_drain_is_refused_retriable(self):
        tintin = make_engine()
        server = tintin.listen()
        server._draining = True
        with pytest.raises(OverloadError):
            TintinClient(*server.address, retries=0)
        server._draining = False
        server.shutdown(drain_timeout=5)
