"""Direct tests of the event-capture manager (paper §4, SQL Server
Controller): installation, capture invariants, pending access, apply."""

import pytest

from repro.core.event_tables import (
    EventTableManager,
    del_table_name,
    ins_table_name,
)
from repro.errors import CatalogError, ConstraintViolation
from repro.minidb import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE parent (id INTEGER PRIMARY KEY)")
    database.execute(
        "CREATE TABLE child (id INTEGER PRIMARY KEY, pid INTEGER NOT NULL, "
        "FOREIGN KEY (pid) REFERENCES parent (id))"
    )
    database.execute("INSERT INTO parent VALUES (1), (2)")
    database.execute("INSERT INTO child VALUES (10, 1)")
    return database


class TestInstallation:
    def test_install_all_main_tables(self, db):
        manager = EventTableManager(db)
        captured = manager.install()
        assert sorted(captured) == ["child", "parent"]
        for base in ("parent", "child"):
            assert db.catalog.has_table(ins_table_name(base))
            assert db.catalog.has_table(del_table_name(base))

    def test_event_tables_have_no_constraints(self, db):
        manager = EventTableManager(db)
        manager.install()
        ins = db.table("ins_child")
        assert ins.schema.primary_key == ()
        assert ins.schema.foreign_keys == ()
        assert not any(c.not_null for c in ins.schema.columns)

    def test_event_tables_not_reinstrumented(self, db):
        manager = EventTableManager(db)
        manager.install()
        # event tables themselves must not appear among captured tables
        assert "ins_parent" not in manager.captured_tables

    def test_targeted_install(self, db):
        manager = EventTableManager(db)
        manager.install(["parent"])
        assert manager.captured_tables == ["parent"]
        assert not db.catalog.has_table("ins_child")

    def test_install_is_idempotent_per_table(self, db):
        manager = EventTableManager(db)
        manager.install(["parent"])
        manager.install(["parent", "child"])
        assert sorted(manager.captured_tables) == ["child", "parent"]

    def test_conflicting_event_table_rejected(self, db):
        db.execute("CREATE TABLE ins_parent (x INTEGER)")
        manager = EventTableManager(db)
        with pytest.raises(CatalogError, match="already exists"):
            manager.install(["parent"])


class TestCaptureAndPending:
    def test_pending_counts(self, db):
        manager = EventTableManager(db)
        manager.install()
        db.execute("INSERT INTO parent VALUES (3)")
        db.execute("DELETE FROM child WHERE id = 10")
        counts = manager.pending_counts()
        assert counts["parent"] == (1, 0)
        assert counts["child"] == (0, 1)
        assert manager.has_pending_events()

    def test_pending_rows_access(self, db):
        manager = EventTableManager(db)
        manager.install()
        db.execute("INSERT INTO parent VALUES (3)")
        assert manager.pending_insertions("parent") == [(3,)]
        assert manager.pending_deletions("parent") == []

    def test_truncate_events(self, db):
        manager = EventTableManager(db)
        manager.install()
        db.execute("INSERT INTO parent VALUES (3)")
        db.execute("DELETE FROM child WHERE id = 10")
        assert manager.truncate_events() == 2
        assert not manager.has_pending_events()

    def test_base_tables_untouched_by_capture(self, db):
        manager = EventTableManager(db)
        manager.install()
        db.execute("INSERT INTO parent VALUES (3)")
        db.execute("DELETE FROM parent WHERE id = 2")
        assert sorted(db.table("parent").scan()) == [(1,), (2,)]


class TestApplyPending:
    def test_apply_moves_events_to_base(self, db):
        manager = EventTableManager(db)
        manager.install()
        db.execute("INSERT INTO parent VALUES (3)")
        db.execute("INSERT INTO child VALUES (11, 3)")
        changed = manager.apply_pending()
        assert changed == 2
        assert not manager.has_pending_events()
        assert (3,) in list(db.table("parent").scan())
        assert (11, 3) in list(db.table("child").scan())

    def test_apply_respects_fk_order(self, db):
        manager = EventTableManager(db)
        manager.install()
        # child arrives before its new parent — apply must still work
        db.execute("INSERT INTO child VALUES (12, 9)")
        db.execute("INSERT INTO parent VALUES (9)")
        assert manager.apply_pending() == 2

    def test_apply_constraint_failure_rolls_back(self, db):
        manager = EventTableManager(db)
        manager.install()
        db.execute("INSERT INTO child VALUES (13, 999)")  # no such parent
        with pytest.raises(ConstraintViolation):
            manager.apply_pending()
        # nothing applied, base unchanged
        assert sorted(db.table("child").scan()) == [(10, 1)]

    def test_triggers_reenabled_after_failed_apply(self, db):
        manager = EventTableManager(db)
        manager.install()
        db.execute("INSERT INTO child VALUES (13, 999)")
        with pytest.raises(ConstraintViolation):
            manager.apply_pending()
        manager.truncate_events()
        # capture must still work afterwards
        db.execute("INSERT INTO parent VALUES (5)")
        assert manager.pending_counts()["parent"] == (1, 0)

    def test_delete_and_reinsert_same_key(self, db):
        manager = EventTableManager(db)
        manager.install()
        # a captured UPDATE: delete old row, insert new with same key
        db.execute("UPDATE parent SET id = 2 WHERE id = 2")  # no-op update
        db.execute("DELETE FROM child WHERE id = 10")
        db.execute("INSERT INTO child VALUES (10, 2)")
        assert manager.apply_pending() >= 2
        assert list(db.table("child").lookup_secondary(("id",), (10,))) == [(10, 2)]
