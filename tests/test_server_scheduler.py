"""The commit scheduler: leader election, group batching, the serial
policy, the read/write lock, and the differential guarantee — N
sessions committing sequentially and concurrently must accept/reject
exactly the same updates and produce the same final state."""

import threading

import pytest

from repro import Database, Tintin
from repro.server.locks import ReadWriteLock

ASSERTIONS = (
    "CREATE ASSERTION atLeastOneItem CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE NOT EXISTS ("
    "SELECT * FROM items AS i WHERE i.order_id = o.id)))",
    "CREATE ASSERTION itemHasOrder CHECK (NOT EXISTS ("
    "SELECT * FROM items AS i WHERE NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE o.id = i.order_id)))",
    "CREATE ASSERTION positiveQty CHECK (NOT EXISTS ("
    "SELECT * FROM items AS i WHERE i.qty < 1))",
)


def build_tintin(**serve_opts) -> Tintin:
    db = Database("scheduler-test")
    db.execute("CREATE TABLE orders (id INTEGER PRIMARY KEY)")
    db.execute(
        "CREATE TABLE items (order_id INTEGER, n INTEGER, qty INTEGER, "
        "PRIMARY KEY (order_id, n), "
        "FOREIGN KEY (order_id) REFERENCES orders (id))"
    )
    tintin = Tintin(db)
    tintin.install()
    for sql in ASSERTIONS:
        tintin.add_assertion(sql)
    if serve_opts:
        tintin.serve(**serve_opts)
    return tintin


def scripted_updates(workers: int, rounds: int):
    """A deterministic per-worker update script with planted violations.

    Worker ``w`` owns the disjoint order-key range ``w*1000 + round``,
    so any interleaving of accepted updates commutes — the basis of the
    sequential/concurrent differential.
    """
    script = {}
    for w in range(workers):
        updates = []
        for r in range(rounds):
            key = w * 1000 + r
            if r % 4 == 3:
                # planted violation: an order with no items
                updates.append({"orders": [(key,)]})
            elif r % 4 == 2:
                # planted violation: an item with qty 0
                updates.append(
                    {"orders": [(key,)], "items": [(key, 1, 0)]}
                )
            else:
                updates.append(
                    {
                        "orders": [(key,)],
                        "items": [(key, 1, 5), (key, 2, 7)],
                    }
                )
        script[w] = updates
    return script


def run_script(tintin: Tintin, script, concurrent: bool):
    """Apply the script; returns {(worker, round): committed} outcomes."""
    outcomes = {}

    def run_worker(w, updates):
        session = tintin.create_session()
        for r, update in enumerate(updates):
            for table, rows in update.items():
                session.insert(table, rows)
            outcomes[(w, r)] = session.commit().committed

    if concurrent:
        threads = [
            threading.Thread(target=run_worker, args=item)
            for item in script.items()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    else:
        for w, updates in script.items():
            run_worker(w, updates)
    return outcomes


def table_state(db: Database) -> dict:
    return {
        name: sorted(db.table(name).rows_snapshot())
        for name in ("orders", "items")
    }


class TestDifferential:
    @pytest.mark.parametrize("policy", ["group", "serial"])
    def test_sequential_and_concurrent_agree(self, policy):
        script = scripted_updates(workers=6, rounds=8)

        sequential = build_tintin(policy="serial")
        seq_outcomes = run_script(sequential, script, concurrent=False)

        concurrent = build_tintin(policy=policy, gather_seconds=0.002)
        conc_outcomes = run_script(concurrent, script, concurrent=True)

        assert seq_outcomes == conc_outcomes
        assert table_state(sequential.db) == table_state(concurrent.db)
        # the planted violations were all rejected, the rest committed
        rejected = {k for k, ok in seq_outcomes.items() if not ok}
        assert rejected == {
            (w, r) for w in range(6) for r in range(8) if r % 4 in (2, 3)
        }


class TestConcurrentReaderDifferential:
    def test_staged_readers_during_group_commits(self):
        """N reader threads, each holding staged events, query through
        the overlay-merge path while writers drive group commits.
        Every observed snapshot must be self-consistent: committed
        base state (the assertions hold in every committed state) plus
        exactly the reader's own staged rows — and at quiescence each
        reader's result must equal the single-threaded splice oracle.
        """
        readers, writers, rounds = 4, 3, 12
        tintin = build_tintin(policy="group", gather_seconds=0.001)

        reader_sessions = []
        for index in range(readers):
            session = tintin.create_session()
            key = 900_000 + index
            session.insert("orders", [(key,)])
            session.insert("items", [(key, 1, 5)])
            reader_sessions.append((key, session))

        itemless = (
            "SELECT * FROM orders AS o WHERE NOT EXISTS ("
            "SELECT * FROM items AS i WHERE i.order_id = o.id)"
        )
        stop = threading.Event()
        anomalies = []

        def reader(key, session):
            own = f"SELECT * FROM orders AS o WHERE o.id = {key}"
            while not stop.is_set():
                if session.query(itemless).rows:
                    anomalies.append((key, "itemless witness"))
                if sorted(session.query(own).rows) != [(key,)]:
                    anomalies.append((key, "own staged row invisible"))

        def writer(worker):
            session = tintin.create_session()
            for round_no in range(rounds):
                key = worker * 1000 + round_no
                session.insert("orders", [(key,)])
                session.insert("items", [(key, 1, 5)])
                assert session.commit().committed

        reader_threads = [
            threading.Thread(target=reader, args=item)
            for item in reader_sessions
        ]
        writer_threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(writers)
        ]
        for t in reader_threads + writer_threads:
            t.start()
        for t in writer_threads:
            t.join()
        stop.set()
        for t in reader_threads:
            t.join()
        assert anomalies == []
        assert len(tintin.db.table("orders")) == writers * rounds
        # quiescent differential: overlay reads == the splice oracle
        for _, session in reader_sessions:
            for sql in ("SELECT * FROM orders", "SELECT * FROM items"):
                assert sorted(session.query(sql).rows) == sorted(
                    session.query_spliced(sql).rows
                )


class TestGroupCommit:
    def test_batches_form_under_concurrency(self):
        tintin = build_tintin(gather_seconds=0.05)
        barrier = threading.Barrier(8)
        results = {}

        def client(k):
            session = tintin.create_session()
            session.insert("orders", [(k,)])
            session.insert("items", [(k, 1, 5)])
            barrier.wait()
            results[k] = session.commit()

        threads = [
            threading.Thread(target=client, args=(k,)) for k in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r.committed for r in results.values())
        stats = tintin.sessions.scheduler.stats
        # with an explicit gather window all 8 land in very few batches
        assert stats.max_group_size >= 2
        assert stats.group_fast_path >= 2
        assert max(r.group_size for r in results.values()) >= 2

    def test_serial_policy_never_groups(self):
        tintin = build_tintin(policy="serial", gather_seconds=0.05)
        barrier = threading.Barrier(4)
        results = {}

        def client(k):
            session = tintin.create_session()
            session.insert("orders", [(k,)])
            session.insert("items", [(k, 1, 5)])
            barrier.wait()
            results[k] = session.commit()

        threads = [
            threading.Thread(target=client, args=(k,)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = tintin.sessions.scheduler.stats
        assert stats.group_fast_path == 0
        assert stats.serial_commits == 4
        assert all(r.group_size == 1 for r in results.values())

    def test_default_session_serializes_through_scheduler(self):
        tintin = build_tintin()
        tintin.create_session()  # activate the server layer
        db = tintin.db
        db.execute("INSERT INTO orders VALUES (1)")
        db.execute("INSERT INTO items VALUES (1, 1, 5)")
        result = tintin.safe_commit()
        assert result.committed
        assert tintin.sessions.scheduler.stats.commits == 1
        assert len(db.table("orders")) == 1

    def test_scheduler_preserves_default_staged_events(self):
        tintin = build_tintin()
        db = tintin.db
        # the default (trigger-captured) session has staged an update...
        db.execute("INSERT INTO orders VALUES (50)")
        db.execute("INSERT INTO items VALUES (50, 1, 5)")
        # ...while another session commits through the scheduler
        session = tintin.create_session()
        session.insert("orders", [(60,)])
        session.insert("items", [(60, 1, 5)])
        assert session.commit().committed
        # the default session's events survived the commit window
        assert len(db.table("ins_orders")) == 1
        assert tintin.safe_commit().committed
        assert sorted(db.table("orders").rows_snapshot()) == [(50,), (60,)]


class TestReadWriteLock:
    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        order = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                order.append("read")

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join(timeout=0.05)
        assert order == []  # reader blocked while writer holds the lock
        order.append("write-done")
        lock.release_write()
        thread.join()
        assert order == ["write-done", "read"]

    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(3, timeout=2.0)

        def reader():
            with lock.read_locked():
                inside.wait()  # all three readers hold the lock at once

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        state = []

        def writer():
            lock.acquire_write()
            state.append("wrote")
            lock.release_write()

        def late_reader():
            with lock.read_locked():
                state.append("late-read")

        w = threading.Thread(target=writer)
        w.start()
        while not lock._writers_waiting:
            pass
        r = threading.Thread(target=late_reader)
        r.start()
        r.join(timeout=0.05)
        assert state == []  # the late reader queued behind the writer
        lock.release_read()
        w.join()
        r.join()
        assert state == ["wrote", "late-read"]
