"""Crash recovery: committed-prefix restoration under injected crashes.

The acceptance contract (ISSUE 4): after a simulated crash at *any*
record boundary — and with a torn (mid-record) tail — reopening
restores exactly the committed prefix, ``full_check_commit`` reports
no violations, and a differential against the uncrashed run matches.

The differential is honest: the expected states are snapshotted from
the *live* engine right after each commit, not reconstructed from the
log, so a codec or replay bug cannot cancel itself out.
"""

from __future__ import annotations

import os
import shutil
import struct
import threading
import time

import pytest

from repro import Database, Tintin, recover
from repro.durability import (
    WAL_MAGIC,
    build_checkpoint_payload,
    load_checkpoint,
    read_wal,
    wal_path,
    write_checkpoint,
)
from repro.errors import DurabilityError, SQLSyntaxError

ORDERS_DDL = "CREATE TABLE orders (id INTEGER PRIMARY KEY, total DOUBLE)"
ITEMS_DDL = (
    "CREATE TABLE items (order_id INTEGER, n INTEGER, "
    "PRIMARY KEY (order_id, n), "
    "FOREIGN KEY (order_id) REFERENCES orders (id))"
)
AT_LEAST_ONE = (
    "CREATE ASSERTION atLeastOneItem CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE NOT EXISTS ("
    "SELECT * FROM items AS i WHERE i.order_id = o.id)))"
)


def state(db: Database) -> dict:
    return {
        t.schema.name: sorted(t.rows_snapshot())
        for t in db.catalog.tables(namespace="main")
    }


def build_durable(path: str, mode: str = "batch", fmt: str = "v2"):
    """A durable engine with schema + assertion; returns it plus the
    per-commit state snapshots (``snapshots[k]`` = state after the
    k-th committed batch; ``snapshots`` also carries the pre-commit
    setup state at index -1 conceptually — returned separately).

    ``fmt`` selects the WAL batch-record codec: ``"v2"`` (binary, the
    default), ``"v1"`` (forced JSON), or ``"mixed"`` — the upgrade
    shape: the first half of the log is written v1, then the format
    flips to v2 mid-log, exactly what an in-place release upgrade
    leaves behind.
    """
    tintin = Tintin.open(path, durability=mode)
    if fmt in ("v1", "mixed"):
        tintin.durability.batch_format = 1
    db = tintin.db
    db.execute(ORDERS_DDL)
    db.execute(ITEMS_DDL)
    tintin.install()
    tintin.add_assertion(AT_LEAST_ONE)
    setup_state = state(db)
    snapshots = []
    # three single-session commits (trigger capture -> safeCommit)
    for k in (1, 2, 3):
        db.execute(f"INSERT INTO orders VALUES ({k}, {k * 10}.5)")
        db.execute(f"INSERT INTO items VALUES ({k}, 1)")
        assert tintin.safe_commit().committed
        snapshots.append(state(db))
    if fmt == "mixed":
        # the upgrade point: every batch from here on is binary v2
        tintin.durability.batch_format = 2
    # a rejected update: no WAL record, no state change
    db.execute("INSERT INTO orders VALUES (99, 1.0)")
    assert not tintin.safe_commit().committed
    # two session commits through the scheduler (sequential, so the
    # WAL order matches the snapshot order deterministically)
    for k in (4, 5):
        session = tintin.create_session()
        session.insert("orders", [(k, 5.0)])
        session.insert("items", [(k, 1), (k, 2)])
        assert session.commit().committed
        snapshots.append(state(db))
    # an update through a session, deleting an earlier order
    session = tintin.create_session()
    session.delete("items", [(1, 1)])
    session.delete("orders", [(1, 10.5)])
    assert session.commit().committed
    snapshots.append(state(db))
    if fmt == "mixed":
        scan = read_wal(wal_path(path))
        kinds = {bool(r.get("binary")) for r in scan.records if r["type"] == "batch"}
        assert kinds == {False, True}, "mixed log must hold both formats"
    return tintin, setup_state, snapshots


def frame_spans(raw: bytes) -> list[tuple[int, int]]:
    spans = []
    position = len(WAL_MAGIC)
    while position < len(raw):
        length = struct.unpack_from(">I", raw, position)[0]
        end = position + 8 + length
        spans.append((position, end))
        position = end
    return spans


def crash_copy(source: str, target: str, wal_size: int) -> str:
    """Copy the durability dir, truncating the WAL to ``wal_size``."""
    shutil.copytree(source, target)
    with open(wal_path(target), "r+b") as handle:
        handle.truncate(wal_size)
    return target


def committed_prefix_length(directory: str) -> int:
    """How many committed batch records the (possibly torn) WAL holds."""
    scan = read_wal(wal_path(directory))
    return sum(1 for r in scan.records if r["type"] == "batch")


def n_setup_records(directory: str) -> int:
    scan = read_wal(wal_path(directory))
    return sum(1 for r in scan.records if r["type"] != "batch")


@pytest.mark.parametrize("fmt", ["v1", "v2", "mixed"])
@pytest.mark.parametrize("mode", ["batch", "commit"])
def test_crash_at_every_record_boundary(tmp_path, mode, fmt):
    source = str(tmp_path / "primary")
    tintin, setup_state, snapshots = build_durable(source, mode=mode, fmt=fmt)
    raw = open(wal_path(source), "rb").read()
    spans = frame_spans(raw)
    setup_records = n_setup_records(source)
    del tintin  # simulated crash of the primary — never closed

    for index, (start, end) in enumerate(spans):
        target = str(tmp_path / f"boundary-{index}")
        crash_copy(source, target, end)
        recovered, report = recover(target)
        assert report.torn_tail is None
        batches = committed_prefix_length(target)
        assert report.batches_replayed == batches
        if index + 1 >= setup_records:
            # full setup intact: state must equal the live snapshot
            expected = snapshots[batches - 1] if batches else setup_state
            assert state(recovered.db) == expected, (
                f"crash after record {index} restored the wrong state"
            )
            # every installed EDC still holds on the recovered state
            assert recovered.full_check_commit().committed
            assert list(recovered.assertions) == ["atLeastOneItem"]


@pytest.mark.parametrize("fmt", ["v2", "mixed"])
def test_crash_mid_record_torn_tail(tmp_path, fmt):
    source = str(tmp_path / "primary")
    tintin, setup_state, snapshots = build_durable(source, fmt=fmt)
    raw = open(wal_path(source), "rb").read()
    spans = frame_spans(raw)
    setup_records = n_setup_records(source)
    del tintin

    for index, (start, end) in enumerate(spans):
        for cut in {start + 3, start + 8, (start + end) // 2, end - 1}:
            if cut <= start or cut >= end:
                continue
            target = str(tmp_path / f"torn-{index}-{cut}")
            crash_copy(source, target, cut)
            recovered, report = recover(target)
            # the half-written record is reported and dropped — the
            # state is exactly the previous record's committed prefix
            assert report.torn_tail is not None
            batches = committed_prefix_length(target)
            if index >= setup_records:
                assert state(recovered.db) == (
                    snapshots[batches - 1] if batches else setup_state
                )
                assert recovered.full_check_commit().committed


def test_recovered_engine_keeps_committing(tmp_path):
    """Recovery is not read-only archaeology: the reopened engine keeps
    accepting (and durably logging) new commits, including through
    sessions, and survives a second crash."""
    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source)
    del tintin

    reopened = Tintin.open(source)
    assert state(reopened.db) == snapshots[-1]
    session = reopened.create_session()
    session.insert("orders", [(50, 1.0)])
    session.insert("items", [(50, 1)])
    assert session.commit().committed
    expected = state(reopened.db)
    del reopened  # second crash

    final, report = recover(source)
    assert state(final.db) == expected
    assert final.full_check_commit().committed


def test_seq_continuity_across_checkpoint_close_reopen(tmp_path):
    """The regression that loses data silently: checkpoint truncates
    the WAL, the engine is closed and reopened in a 'new process'
    (fresh WriteAheadLog over the compacted file), new commits are
    acknowledged, then a crash.  Without the truncate marker carrying
    the sequence high-water mark, the new records restart at seq 1 and
    replay skips them as checkpoint-covered."""
    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source)
    tintin.close()  # checkpoint + WAL truncation + log handle closed

    reopened = Tintin.open(source)  # fresh WAL object over the file
    db = reopened.db
    db.execute("INSERT INTO orders VALUES (60, 6.0)")
    db.execute("INSERT INTO items VALUES (60, 1)")
    assert reopened.safe_commit().committed  # acknowledged durable
    expected = state(db)
    del reopened  # crash

    recovered, report = recover(source)
    assert report.batches_replayed == 1
    assert state(recovered.db) == expected
    assert recovered.db.table("orders").contains_row((60, 6.0))


def test_flush_failure_rejects_and_never_becomes_durable(
    tmp_path, monkeypatch
):
    """When the group fsync fails, the members are rejected ('log
    flush failed'), the WAL tail is rolled back, and no later flush or
    shutdown can make the rejected commit durable."""
    import repro.durability.wal as wal_module

    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source)
    session = tintin.create_session()
    session.insert("orders", [(70, 7.0)])
    session.insert("items", [(70, 1)])

    real_fsync = wal_module.os.fsync

    def broken_fsync(fd):
        raise OSError("I/O error")

    monkeypatch.setattr(wal_module.os, "fsync", broken_fsync)
    try:
        result = session.commit()
        assert not result.committed
        assert "log flush failed" in (result.constraint_error or "")
    except OSError:
        pass  # the leader's caller may see the raw flush error instead
    finally:
        monkeypatch.setattr(wal_module.os, "fsync", real_fsync)

    del tintin  # crash (the log is poisoned anyway)
    recovered, _ = recover(source)
    # the rejected commit is NOT in the durable state
    assert not recovered.db.table("orders").contains_row((70, 7.0))
    assert state(recovered.db) == snapshots[-1]


def test_seq_survives_crash_between_truncation_and_marker(tmp_path):
    """The truncate marker is not crash-atomic with the file
    truncation: simulate a crash that left the WAL header-only right
    after a checkpoint.  The manager must re-seed the sequence from
    the checkpoint, so post-crash commits replay instead of being
    skipped as checkpoint-covered."""
    from repro.durability import WAL_MAGIC

    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source)
    tintin.close()  # checkpoint + truncation + marker
    # crash artifact: the truncation reached disk, the marker did not
    with open(wal_path(source), "wb") as handle:
        handle.write(WAL_MAGIC)

    reopened = Tintin.open(source)
    db = reopened.db
    db.execute("INSERT INTO orders VALUES (61, 6.0)")
    db.execute("INSERT INTO items VALUES (61, 1)")
    assert reopened.safe_commit().committed
    expected = state(db)
    del reopened  # crash again

    recovered, report = recover(source)
    assert report.batches_replayed == 1  # NOT skipped
    assert state(recovered.db) == expected


def test_torn_wal_creation_is_recoverable(tmp_path):
    """A zero-byte (or partial-header) wal.log — the crash hit during
    initial creation — must not make the directory unopenable."""
    from repro.durability import WAL_MAGIC

    for artifact in (b"", WAL_MAGIC[:3]):
        target = str(tmp_path / f"torn-{len(artifact)}")
        os.makedirs(target)
        with open(wal_path(target), "wb") as handle:
            handle.write(artifact)
        tintin = Tintin.open(target)  # reinitializes the torn log
        db = tintin.db
        db.execute(ORDERS_DDL)
        db.execute(ITEMS_DDL)
        tintin.install()
        db.execute("INSERT INTO orders VALUES (1, 1.0)")
        db.execute("INSERT INTO items VALUES (1, 1)")
        assert tintin.safe_commit().committed
        expected = state(db)
        del tintin
        recovered, _ = recover(target)
        assert state(recovered.db) == expected


def test_bootstrap_checkpoints_immediately(tmp_path):
    """Tintin.open(db=...) must never acknowledge a durable commit
    that recovery cannot replay: the bootstrap writes a checkpoint up
    front, so a crash before any user checkpoint() still recovers."""
    db = Database("seeded")
    db.execute(ORDERS_DDL)
    db.execute(ITEMS_DDL)
    db.execute("INSERT INTO orders VALUES (1, 1.0)")
    db.execute("INSERT INTO items VALUES (1, 1)")
    source = str(tmp_path / "primary")
    tintin = Tintin.open(source, durability="commit", db=db)
    tintin.install()
    tintin.add_assertion(AT_LEAST_ONE)
    db.execute("INSERT INTO orders VALUES (2, 2.0)")
    db.execute("INSERT INTO items VALUES (2, 1)")
    assert tintin.safe_commit().committed  # acknowledged durable
    expected = state(db)
    del tintin  # crash: the user never called checkpoint()

    recovered, report = recover(source)
    assert report.checkpoint_used
    assert state(recovered.db) == expected
    assert recovered.db.table("orders").contains_row((2, 2.0))
    assert recovered.full_check_commit().committed


def test_checkpoint_bounds_replay(tmp_path):
    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source)
    tintin.checkpoint()
    assert committed_prefix_length(source) == 0  # WAL compacted
    db = tintin.db
    db.execute("INSERT INTO orders VALUES (70, 7.0)")
    db.execute("INSERT INTO items VALUES (70, 1)")
    assert tintin.safe_commit().committed
    expected = state(db)
    del tintin

    recovered, report = recover(source)
    assert report.checkpoint_used
    assert report.batches_replayed == 1  # only the post-checkpoint tail
    assert state(recovered.db) == expected
    assert recovered.full_check_commit().committed


def test_crash_between_checkpoint_and_wal_truncation(tmp_path):
    """The nasty window: checkpoint durably renamed, WAL not yet
    truncated — every logged batch is ALSO inside the checkpoint.
    Replay must skip the covered prefix instead of double-applying."""
    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source)
    # write the checkpoint exactly as Tintin.checkpoint would, but
    # crash before the truncation step
    payload = build_checkpoint_payload(tintin, tintin.durability.wal.last_seq)
    write_checkpoint(source, payload)
    expected = state(tintin.db)
    del tintin

    recovered, report = recover(source)
    assert report.checkpoint_used
    assert report.batches_replayed == 0  # all covered by the checkpoint
    assert state(recovered.db) == expected
    assert recovered.full_check_commit().committed


def test_concurrent_group_commits_recover(tmp_path):
    """Commits racing through the group-commit scheduler: whatever the
    scheduler acknowledged must be on disk after a crash, byte-for-byte
    equal to the live state (combined group records replay correctly)."""
    source = str(tmp_path / "primary")
    tintin = Tintin.open(source, durability="batch")
    db = tintin.db
    db.execute(ORDERS_DDL)
    db.execute(ITEMS_DDL)
    tintin.install()
    tintin.add_assertion(AT_LEAST_ONE)
    tintin.serve(policy="group", gather_seconds=0.0005)

    def worker(worker_id: int) -> None:
        session = tintin.create_session()
        for round_no in range(5):
            key = worker_id * 1000 + round_no
            session.insert("orders", [(key, 1.0)])
            session.insert("items", [(key, 1)])
            assert session.commit().committed

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = tintin.sessions.scheduler.stats
    assert stats.wal_appends > 0
    assert stats.wal_fsyncs <= stats.wal_appends  # group fsync sharing
    expected = state(db)
    del tintin

    recovered, report = recover(source)
    assert state(recovered.db) == expected
    assert recovered.full_check_commit().committed
    assert len(recovered.db.table("orders")) == 30


def test_staged_but_uncommitted_events_are_not_durable(tmp_path):
    """Only safeCommit-accepted batches survive a crash — a session's
    staged events and the global capture tables are volatile by
    design (exactly the paper's transaction boundary)."""
    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source)
    session = tintin.create_session()
    session.insert("orders", [(80, 8.0)])  # staged, never committed
    tintin.db.execute("INSERT INTO orders VALUES (81, 9.0)")  # captured
    del tintin

    recovered, _ = recover(source)
    assert state(recovered.db) == snapshots[-1]
    orders = recovered.db.table("orders")
    assert not orders.contains_row((80, 8.0))
    assert not orders.contains_row((81, 9.0))


def test_ddl_and_assertion_drop_replay(tmp_path):
    source = str(tmp_path / "primary")
    tintin, _, _ = build_durable(source)
    db = tintin.db
    db.execute("CREATE TABLE audit (id INTEGER PRIMARY KEY, note VARCHAR)")
    tintin.drop_assertion("atLeastOneItem")
    expected = state(db)
    del tintin

    recovered, report = recover(source)
    assert report.ddl_replayed >= 2
    assert state(recovered.db) == expected
    assert recovered.db.catalog.has_table("audit")
    assert "atLeastOneItem" not in recovered.assertions
    # the dropped assertion's EDC violation views are gone too (aux
    # views survive by design — they are shareable between assertions)
    assert not recovered.safe_commit_proc.compiled


def test_commit_mode_fsyncs_per_commit(tmp_path):
    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source, mode="commit")
    manager = tintin.durability
    assert manager.stats.logged_batches == 6
    del tintin
    recovered, _ = recover(source)
    assert state(recovered.db) == snapshots[-1]


def test_off_mode_checkpoint_only(tmp_path):
    source = str(tmp_path / "primary")
    tintin = Tintin.open(source, durability="off")
    db = tintin.db
    db.execute(ORDERS_DDL)
    db.execute(ITEMS_DDL)
    tintin.install()
    tintin.add_assertion(AT_LEAST_ONE)
    db.execute("INSERT INTO orders VALUES (1, 1.0)")
    db.execute("INSERT INTO items VALUES (1, 1)")
    assert tintin.safe_commit().committed
    checkpointed = state(db)
    tintin.checkpoint()
    # post-checkpoint commit: volatile in off mode
    db.execute("INSERT INTO orders VALUES (2, 2.0)")
    db.execute("INSERT INTO items VALUES (2, 1)")
    assert tintin.safe_commit().committed
    del tintin

    recovered, report = recover(source)
    assert report.checkpoint_used
    assert report.batches_replayed == 0
    assert state(recovered.db) == checkpointed
    assert recovered.full_check_commit().committed


def test_bootstrap_from_populated_database(tmp_path):
    db = Database("seeded")
    db.execute(ORDERS_DDL)
    db.execute(ITEMS_DDL)
    db.execute("INSERT INTO orders VALUES (1, 1.0)")
    db.execute("INSERT INTO items VALUES (1, 1)")
    source = str(tmp_path / "primary")
    tintin = Tintin.open(source, durability="batch", db=db)
    tintin.install()
    tintin.add_assertion(AT_LEAST_ONE)
    tintin.checkpoint()  # compacts; open() already checkpointed the load
    expected = state(db)
    del tintin
    recovered, _ = recover(source)
    assert state(recovered.db) == expected

    # a directory that already holds state refuses a bootstrap db
    with pytest.raises(DurabilityError):
        Tintin.open(source, db=Database("other"))


def test_user_views_survive_recovery(tmp_path):
    """Views created through SQL (not assertion machinery) are WAL-
    logged as printed SQL and checkpointed, so recovery rebuilds them
    and the catalog shape signature verifies."""
    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source)
    db = tintin.db
    db.execute(
        "CREATE VIEW big_orders AS SELECT o.id FROM orders AS o "
        "WHERE o.total > 20"
    )
    expected_rows = sorted(db.query("SELECT * FROM big_orders AS b").rows)
    del tintin  # crash: the view exists only in the WAL

    recovered, _ = recover(source)
    assert recovered.db.catalog.has_view("big_orders")
    assert (
        sorted(recovered.db.query("SELECT * FROM big_orders AS b").rows)
        == expected_rows
    )

    # checkpoint + drop + crash: the drop is replayed too
    reopened = Tintin.open(source)
    reopened.checkpoint()
    reopened.db.execute("DROP VIEW big_orders")
    del reopened
    final, _ = recover(source)
    assert not final.db.catalog.has_view("big_orders")
    assert final.full_check_commit().committed


def test_committed_groups_survive_later_window_failure(tmp_path, monkeypatch):
    """A window holding several groups: when a later group's apply
    dies on an engine error, the earlier groups' members — already
    applied and WAL-appended — are flushed and acknowledged as
    committed, not swallowed by the window-failure rejection."""
    source = str(tmp_path / "primary")
    tintin = Tintin.open(source, durability="batch")
    db = tintin.db
    db.execute(ORDERS_DDL)
    db.execute(ITEMS_DDL)
    tintin.install()
    scheduler = tintin.sessions.scheduler

    first = tintin.create_session()
    first.insert("orders", [(1, 1.0)])
    first.insert("items", [(1, 1)])
    second = tintin.create_session()
    # same PK, different payload: incompatible footprints, so the two
    # requests land in separate groups of one window
    second.insert("orders", [(1, 2.0)])
    second.insert("items", [(1, 2)])

    real_apply = db.apply_batch
    calls = {"n": 0}

    def failing_second_apply(inserts, deletes):
        calls["n"] += 1
        if calls["n"] >= 2:
            raise RuntimeError("disk on fire")
        return real_apply(inserts, deletes)

    monkeypatch.setattr(db, "apply_batch", failing_second_apply)

    outcomes: dict[str, object] = {}

    def run(name, session):
        try:
            outcomes[name] = session.commit()
        except BaseException as exc:
            outcomes[name] = exc

    gate = threading.Event()
    real_process = scheduler._process_batch

    def gated_process():
        # hold leadership until both requests are queued, so they
        # share one window
        gate.wait(timeout=5)
        return real_process()

    monkeypatch.setattr(scheduler, "_process_batch", gated_process)
    threads = [
        threading.Thread(target=run, args=("first", first)),
        threading.Thread(target=run, args=("second", second)),
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.1)  # both requests enqueue behind the gated leader
    gate.set()
    for thread in threads:
        thread.join(timeout=10)

    # FIFO: first's group applies before second's group dies.  First
    # must NEVER see a false rejection — its outcome is either its
    # committed result, or (when it happened to lead the window) the
    # raw window exception, but its decided result is committed=True
    # and its rows are durable either way.
    first_outcome = outcomes["first"]
    if isinstance(first_outcome, BaseException):
        assert isinstance(first_outcome, RuntimeError)
        assert first.commits == 0  # result never surfaced to the session
    else:
        assert first_outcome.committed, outcomes
    second_outcome = outcomes["second"]
    if not isinstance(second_outcome, BaseException):
        assert not second_outcome.committed, outcomes
    # the committed group's rows are in the base tables AND durable
    monkeypatch.setattr(db, "apply_batch", real_apply)
    assert db.table("orders").rows_snapshot() == [(1, 1.0)]
    expected = {n: sorted(db.table(n).rows_snapshot()) for n in ("orders", "items")}
    del tintin
    recovered, _ = recover(source)
    assert {
        n: sorted(recovered.db.table(n).rows_snapshot())
        for n in ("orders", "items")
    } == expected


# -- log-writer thread crash points -----------------------------------------


def test_log_writer_crash_between_append_and_fsync(tmp_path, monkeypatch):
    """The window appended its WAL record and handed it to the
    log-writer thread; the crash hits before the fsync.  The client
    was never acknowledged (its ack waits on the flush), so the
    recovered state must NOT contain the batch — and once the flush
    lands and the ack is delivered, the same batch must be durable."""
    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source)
    manager = tintin.durability
    scheduler = tintin.sessions.scheduler

    gate = threading.Event()
    release = threading.Event()
    real_sync = manager.sync

    def gated_sync():
        gate.set()
        assert release.wait(timeout=10), "test gate never released"
        real_sync()

    monkeypatch.setattr(manager, "sync", gated_sync)

    session = tintin.create_session()
    session.insert("orders", [(90, 9.0)])
    session.insert("items", [(90, 1)])
    outcome: dict[str, object] = {}
    thread = threading.Thread(
        target=lambda: outcome.setdefault("result", session.commit())
    )
    thread.start()
    assert gate.wait(timeout=10)  # record appended, fsync still pending
    thread.join(timeout=0.05)
    assert thread.is_alive(), "the ack must still be waiting on the flush"
    # crash NOW: the appended frame sits in the log's userspace buffer,
    # exactly what a process death between append and fsync leaves
    pre_fsync = str(tmp_path / "pre-fsync")
    shutil.copytree(source, pre_fsync)
    recovered, _ = recover(pre_fsync)
    assert state(recovered.db) == snapshots[-1]
    assert not recovered.db.table("orders").contains_row((90, 9.0))
    # let the flush land: the commit is acknowledged and durable
    release.set()
    thread.join(timeout=10)
    assert outcome["result"].committed
    post_fsync = str(tmp_path / "post-fsync")
    shutil.copytree(source, post_fsync)
    recovered2, _ = recover(post_fsync)
    assert recovered2.db.table("orders").contains_row((90, 9.0))
    assert state(recovered2.db) == state(tintin.db)


def test_log_writer_fsync_failure_mid_burst(tmp_path, monkeypatch):
    """A failing fsync mid-burst: every member of every affected
    window is rejected or errored — never acknowledged — the WAL rolls
    back its unsynced frames and poisons itself, and recovery restores
    exactly the pre-burst state.  The fault is injected at the
    ``os.fsync`` level so the log's real rollback machinery runs, and
    the windows are forced into a backlog (``max_batch=1`` with both
    requests pre-queued) so one window rides the log-writer thread
    while the other flushes inline."""
    import repro.durability.wal as wal_module

    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source)
    scheduler = tintin.sessions.scheduler
    monkeypatch.setattr(scheduler, "max_batch", 1)

    def broken_fsync(fd):
        raise OSError("I/O error (injected)")

    monkeypatch.setattr(wal_module.os, "fsync", broken_fsync)

    gate = threading.Event()
    real_process = scheduler._process_batch

    def gated_process():
        # hold leadership until both requests are queued, so the first
        # window sees a backlog and routes its flush to the writer
        gate.wait(timeout=10)
        return real_process()

    monkeypatch.setattr(scheduler, "_process_batch", gated_process)

    outcomes: dict[str, object] = {}

    def commit_order(name: str, key: int) -> None:
        session = tintin.create_session()
        session.insert("orders", [(key, 1.0)])
        session.insert("items", [(key, 1)])
        try:
            outcomes[name] = session.commit()
        except BaseException as exc:  # a leader may see the raw error
            outcomes[name] = exc

    threads = [
        threading.Thread(target=commit_order, args=("first", 91)),
        threading.Thread(target=commit_order, args=("second", 92)),
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.1)  # both requests enqueue behind the gated leader
    gate.set()
    for thread in threads:
        thread.join(timeout=10)

    for name in ("first", "second"):
        outcome = outcomes[name]
        if isinstance(outcome, BaseException):
            # an inline flush propagates the raw I/O error to the
            # window leader — still never an acknowledgement
            assert isinstance(outcome, (OSError, DurabilityError)), outcome
        else:
            assert not outcome.committed, f"{name} was acknowledged"

    del tintin  # crash; the rolled-back frames must not resurrect
    recovered, _ = recover(source)
    assert state(recovered.db) == snapshots[-1]
    assert not recovered.db.table("orders").contains_row((91, 1.0))
    assert not recovered.db.table("orders").contains_row((92, 1.0))


def test_log_writer_poisoned_log_rejects_later_windows(tmp_path, monkeypatch):
    """After a failed flush rolled back and poisoned the WAL, every
    later window is rejected too — a rejected commit can never become
    durable behind the client's back."""
    import repro.durability.wal as wal_module
    from repro.errors import DurabilityError

    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source)

    real_fsync = wal_module.os.fsync

    def broken_fsync(fd):
        raise OSError("I/O error (injected)")

    monkeypatch.setattr(wal_module.os, "fsync", broken_fsync)
    session = tintin.create_session()
    session.insert("orders", [(93, 1.0)])
    session.insert("items", [(93, 1)])
    try:
        result = session.commit()
        assert not result.committed
        assert "log flush failed" in (result.constraint_error or "")
    except OSError:
        pass  # the window leader may see the raw flush error instead
    monkeypatch.setattr(wal_module.os, "fsync", real_fsync)

    # the log is poisoned: the next window dies on the append and the
    # member is rejected (or its leader sees the DurabilityError)
    later = tintin.create_session()
    later.insert("orders", [(94, 1.0)])
    later.insert("items", [(94, 1)])
    try:
        outcome = later.commit()
        assert not outcome.committed
    except DurabilityError:
        pass

    del tintin  # crash; the rejected commits must not be on disk
    recovered, _ = recover(source)
    assert state(recovered.db) == snapshots[-1]
    assert not recovered.db.table("orders").contains_row((93, 1.0))
    assert not recovered.db.table("orders").contains_row((94, 1.0))


def test_log_writer_coalesces_windows_under_burst(tmp_path, monkeypatch):
    """Windows submitted while one flush is in flight are drained as a
    single burst and share ONE fsync — the cross-window batching the
    log-writer thread exists for.  Driven at the LogWriter level so
    the burst timing is deterministic."""
    from repro.core.safe_commit import CommitResult
    from repro.server.scheduler import LogWriter, SchedulerStats

    source = str(tmp_path / "primary")
    tintin, _, _ = build_durable(source)
    manager = tintin.durability

    gate = threading.Event()
    release = threading.Event()
    real_sync = manager.sync

    def gated_first_sync():
        if not release.is_set():
            gate.set()
            assert release.wait(timeout=10)
        real_sync()

    monkeypatch.setattr(manager, "sync", gated_first_sync)

    class _Member:
        def __init__(self):
            self.result = None
            self.done = threading.Event()

    stats = SchedulerStats()
    writer = LogWriter(stats)
    members = [_Member() for _ in range(3)]
    ok = CommitResult(committed=True)
    writer.submit(manager, [(members[0], ok)])  # flush goes in flight
    assert gate.wait(timeout=10)
    # two more windows queue behind the stuck flush
    writer.submit(manager, [(members[1], ok)])
    writer.submit(manager, [(members[2], ok)])
    release.set()
    for member in members:
        assert member.done.wait(timeout=10)
        assert member.result.committed  # acks waited on their fsync
    writer.stop()
    assert stats.writer_windows == 3
    assert stats.writer_flushes == 2, (
        "windows 2+3 queued behind window 1's fsync must share one flush"
    )
    tintin.close()


def test_backlog_routes_flushes_to_log_writer(tmp_path, monkeypatch):
    """The scheduler's adaptive flush: a window with requests already
    queued behind it (burst pressure) hands its fsync to the log-writer
    thread and immediately processes the next window; with no backlog
    the leader flushes inline.  Everything acknowledged is durable."""
    source = str(tmp_path / "primary")
    tintin, _, _ = build_durable(source)
    scheduler = tintin.sessions.scheduler
    monkeypatch.setattr(scheduler, "max_batch", 1)  # one window per request

    gate = threading.Event()
    real_process = scheduler._process_batch

    def gated_process():
        # hold leadership until all requests are queued: every window
        # but the last then sees a backlog and rides the writer
        gate.wait(timeout=10)
        return real_process()

    monkeypatch.setattr(scheduler, "_process_batch", gated_process)
    base_windows = scheduler.stats.writer_windows

    def commit_order(key: int) -> None:
        session = tintin.create_session()
        session.insert("orders", [(key, 1.0)])
        session.insert("items", [(key, 1)])
        assert session.commit().committed

    threads = [
        threading.Thread(target=commit_order, args=(key,))
        for key in (95, 96, 97)
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.1)  # all three requests enqueue behind the gated leader
    gate.set()
    for thread in threads:
        thread.join(timeout=10)
    assert scheduler.stats.writer_windows - base_windows >= 2, (
        "backlogged windows must flush through the log-writer thread"
    )
    # and everything acknowledged is durable
    expected = state(tintin.db)
    del tintin
    recovered, _ = recover(source)
    assert state(recovered.db) == expected
    for key in (95, 96, 97):
        assert recovered.db.table("orders").contains_row((key, 1.0))


# -- single-pass open --------------------------------------------------------


def test_durable_open_scans_once(tmp_path):
    """The single-pass-open regression: ``Tintin.open`` on an existing
    directory performs exactly ONE full WAL scan and at most one
    checkpoint parse — recovery's scan is handed to the manager, which
    must not re-derive ``last_seq``/``wal_seq`` from disk."""
    from repro.durability import checkpoint_load_count, wal_scan_count

    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source)
    wal_seq = tintin.durability.wal.last_seq
    del tintin  # crash: WAL only, no checkpoint

    scans, parses = wal_scan_count(), checkpoint_load_count()
    reopened = Tintin.open(source)
    assert wal_scan_count() - scans == 1
    assert checkpoint_load_count() - parses == 0  # no checkpoint exists
    assert state(reopened.db) == snapshots[-1]
    # the manager's WAL resumed exactly where recovery's scan ended
    assert reopened.durability.wal.last_seq == wal_seq
    report = reopened.recovery_report
    assert report is not None
    assert report.wal_valid_length == os.path.getsize(wal_path(source))
    reopened.close()  # checkpoint + truncate

    scans, parses = wal_scan_count(), checkpoint_load_count()
    again = Tintin.open(source)
    assert wal_scan_count() - scans == 1
    assert checkpoint_load_count() - parses == 1  # the one recovery parse
    assert state(again.db) == snapshots[-1]
    again.close()

    # a fresh directory needs no scan and no parse at all
    scans, parses = wal_scan_count(), checkpoint_load_count()
    fresh = Tintin.open(str(tmp_path / "fresh"))
    assert wal_scan_count() - scans == 0
    assert checkpoint_load_count() - parses == 0
    fresh.close(checkpoint=False)


def test_single_pass_open_truncates_torn_tail(tmp_path):
    """The reopen-for-append half of the single pass: the torn tail
    recovery's scan reported is truncated by the manager WITHOUT
    re-reading the log, and new commits append cleanly after it."""
    source = str(tmp_path / "primary")
    tintin, _, snapshots = build_durable(source)
    raw = open(wal_path(source), "rb").read()
    spans = frame_spans(raw)
    del tintin
    start, end = spans[-1]
    cut = (start + end) // 2  # tear the last record in half
    with open(wal_path(source), "r+b") as handle:
        handle.truncate(cut)

    reopened = Tintin.open(source)
    assert reopened.recovery_report.torn_tail is not None
    assert os.path.getsize(wal_path(source)) == start  # tail gone
    db = reopened.db
    db.execute("INSERT INTO orders VALUES (60, 6.0)")
    db.execute("INSERT INTO items VALUES (60, 1)")
    assert reopened.safe_commit().committed
    expected = state(db)
    del reopened

    recovered, report = recover(source)
    assert report.torn_tail is None  # the tail was cleanly truncated
    assert state(recovered.db) == expected


def test_recovery_rejects_backwards_sequences(tmp_path):
    """recovery_report's seq-monotonicity verification survives the
    single-pass refactor: a record whose seq goes backwards refuses."""
    from repro.durability import encode_record
    from repro.errors import RecoveryError

    source = str(tmp_path / "primary")
    tintin, _, _ = build_durable(source)
    del tintin
    with open(wal_path(source), "ab") as handle:
        handle.write(
            encode_record({"type": "batch", "seq": 1, "ins": {}, "del": {}})
        )
    with pytest.raises(RecoveryError):
        recover(source)


def test_recovery_rejects_forged_shape_signature(tmp_path):
    """recovery_report's catalog-shape verification survives the
    single-pass refactor: a checkpoint whose recorded signature does
    not match the rebuilt catalog refuses."""
    from repro.errors import RecoveryError

    source = str(tmp_path / "primary")
    tintin, _, _ = build_durable(source)
    tintin.close()  # durable checkpoint
    checkpoint = load_checkpoint(source)
    checkpoint["shape_signature"] = "forged"
    write_checkpoint(source, checkpoint)
    with pytest.raises(RecoveryError):
        recover(source)


# -- parallel checkpoint restore ---------------------------------------------


def test_parallel_checkpoint_restore(tmp_path, monkeypatch):
    """Per-table row loading during checkpoint restore runs on a
    thread pool (tables are independent once created in FK order) and
    restores exactly the serial result, row-count verification
    included."""
    import repro.durability.recovery as recovery_module

    source = str(tmp_path / "primary")
    tintin, _, _ = build_durable(source)
    db = tintin.db
    db.execute("CREATE TABLE audit (id INTEGER PRIMARY KEY, note VARCHAR)")
    for k in range(50):
        db.insert_rows("audit", [(k, f"note-{k}")], bypass_triggers=True)
    tintin.checkpoint()
    expected = state(db)
    del tintin

    monkeypatch.setattr(recovery_module, "PARALLEL_RESTORE_MIN_ROWS", 0)
    # the pool engages whenever the host has cores to use; force it on
    # single-core CI boxes too (correctness is core-count independent)
    monkeypatch.setattr(recovery_module.os, "cpu_count", lambda: 4)
    recovered, report = recover(source)
    assert report.restore_workers > 1  # the pool actually engaged
    assert state(recovered.db) == expected
    assert recovered.full_check_commit().committed

    # row-count verification still fires on the parallel path
    checkpoint = load_checkpoint(source)
    checkpoint["row_counts"]["audit"] = 9999
    write_checkpoint(source, checkpoint)
    from repro.errors import RecoveryError

    with pytest.raises(RecoveryError):
        recover(source)


def test_recovery_rejects_unresolvable_v2_ordinal(tmp_path):
    """A v2 batch record whose table ordinal the replayed catalog
    cannot resolve refuses recovery loudly (log/catalog divergence)."""
    from repro.durability import WriteAheadLog
    from repro.errors import RecoveryError

    source = str(tmp_path / "primary")
    tintin, _, _ = build_durable(source)
    del tintin
    wal = WriteAheadLog(wal_path(source))
    record = wal.append_batch(
        {"phantom": [(1, 2)]}, {}, ordinal_of=lambda name: 99
    )
    assert record["binary"]
    wal.sync()
    wal.close()
    with pytest.raises(RecoveryError):
        recover(source)


def test_recovery_rejects_replay_constraint_violation(tmp_path):
    """A batch whose replay the engine itself rejects (duplicate PK:
    the log and the data disagree) refuses recovery loudly."""
    from repro.durability import WriteAheadLog, batch_payload
    from repro.errors import RecoveryError

    source = str(tmp_path / "primary")
    tintin, _, _ = build_durable(source)
    del tintin
    wal = WriteAheadLog(wal_path(source))
    # order 2 already exists: replaying this insert violates the PK
    wal.append("batch", **batch_payload({"orders": [(2, 99.0)]}, {}))
    wal.sync()
    wal.close()
    with pytest.raises(RecoveryError):
        recover(source)


def test_unlogged_ddl_window_falls_back_to_v1_records(tmp_path):
    """v2 ordinals are only meaningful if every catalog change before
    the batch is already in the log.  In the race window where a DDL's
    catalog mutation has landed but its WAL record has not (the DDL
    listener fires after the catalog commit and can lose the manager-
    lock race to a batch append), the batch must be written as a
    name-based v1 record — immune to ordinal skew at replay."""
    source = str(tmp_path / "primary")
    tintin, _, _ = build_durable(source)
    manager = tintin.durability
    db = tintin.db
    # simulate the window: version bumped, DDL record not yet logged
    db.catalog.bump_version()
    manager.append_batch({"orders": [(71, 1.0)]}, {})
    assert not read_wal(wal_path(source)).records[-1].get("binary")
    # the pending DDL record lands: v2 encoding resumes
    manager.log_ddl("install", tables=[])
    manager.append_batch({"orders": [(72, 1.0)]}, {})
    assert read_wal(wal_path(source)).records[-1].get("binary")


def test_report_and_metrics_surfaces(tmp_path):
    """The human-facing surfaces ride along: RecoveryReport.__str__,
    the manager/WAL stat snapshots, and the closed flag."""
    source = str(tmp_path / "primary")
    tintin, _, _ = build_durable(source)
    manager = tintin.durability
    metrics = manager.metrics()
    assert metrics["mode"] == "batch"
    assert metrics["logged_batches"] > 0
    assert metrics["appends"] > 0 and metrics["bytes_written"] > 0
    assert not manager.closed
    del tintin

    recovered, report = recover(source)
    text = str(report)
    assert "recovered from WAL" in text
    assert f"{report.batches_replayed} batch(es)" in text

    reopened = Tintin.open(source)
    reopened.close()
    assert reopened.durability is None  # detached on close
    crashed, report2 = recover(source)
    assert report2.checkpoint_used
    assert str(report2).startswith("recovered from checkpoint + WAL")


def test_recovery_verifies_batch_row_counts(tmp_path):
    """A WAL whose batch claims row counts the replay cannot reproduce
    is rejected loudly instead of silently diverging."""
    from repro.durability import WriteAheadLog, batch_payload
    from repro.errors import RecoveryError

    source = str(tmp_path / "primary")
    tintin, _, _ = build_durable(source)
    del tintin
    # forge: append a batch record claiming an impossible count
    wal = WriteAheadLog(wal_path(source))
    wal.append(
        "batch",
        **batch_payload(
            {"orders": [(500, 1.0)], "items": [(500, 1)]},
            {},
            counts={"orders": 9999, "items": 9999},
        ),
    )
    wal.sync()
    wal.close()
    with pytest.raises(RecoveryError):
        recover(source)
