"""Shard-key placement and commit-footprint classification."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro import Database
from repro.errors import SchemaError
from repro.shard import ShardConfig


def build_db() -> Database:
    db = Database("cfg")
    db.execute("CREATE TABLE orders (id INTEGER PRIMARY KEY, total DOUBLE)")
    db.execute(
        "CREATE TABLE items (order_id INTEGER, n INTEGER, "
        "PRIMARY KEY (order_id, n))"
    )
    db.execute("CREATE TABLE currencies (code CHAR, rate DOUBLE)")
    return db


class TestShardOf:
    def test_integers_partition_by_modulus(self):
        config = ShardConfig(4)
        assert [config.shard_of(n) for n in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_strings_are_deterministic_across_processes(self):
        """The placement function must agree between router and worker
        processes — Python's salted ``hash`` would not.  Re-derive the
        same placements in a subprocess with a different hash seed."""
        import os
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        config = ShardConfig(4)
        values = ["EUR", "USD", "JPY", "NOK"]
        local = [config.shard_of(v) for v in values]
        script = (
            "import sys; sys.path.insert(0, %r)\n"
            "from repro.shard import ShardConfig\n"
            "c = ShardConfig(4)\n"
            "print([c.shard_of(v) for v in %r])" % (src, values)
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        assert str(local) == remote.stdout.strip()

    def test_bool_hashes_as_value_not_int_bucket(self):
        config = ShardConfig(2)
        # bools take the repr path: True/False are categories, not 1/0
        assert config.shard_of(True) in (0, 1)

    def test_shard_count_validated(self):
        with pytest.raises(SchemaError):
            ShardConfig(0)


class TestSplit:
    def test_single_shard_footprint(self):
        db = build_db()
        config = ShardConfig(2, {"orders": "id", "items": "order_id"})
        split = config.split(
            db,
            {"orders": [(2, 10.0)], "items": [(2, 1)]},
            {},
        )
        assert set(split) == {0}
        inserts, deletes = split[0]
        assert inserts == {"orders": [(2, 10.0)], "items": [(2, 1)]}
        assert deletes == {}

    def test_cross_shard_footprint_partitions_rows(self):
        db = build_db()
        config = ShardConfig(2, {"orders": "id", "items": "order_id"})
        split = config.split(
            db,
            {"orders": [(2, 1.0), (3, 2.0)]},
            {"items": [(3, 9)]},
        )
        assert set(split) == {0, 1}
        assert split[0] == ({"orders": [(2, 1.0)]}, {})
        assert split[1] == ({"orders": [(3, 2.0)]}, {"items": [(3, 9)]})

    def test_undeclared_tables_pin_to_shard_zero(self):
        db = build_db()
        config = ShardConfig(4, {"orders": "id"})
        split = config.split(
            db, {"currencies": [("EUR", 1.1), ("USD", 1.0)]}, {}
        )
        assert set(split) == {0}

    def test_empty_batch_has_empty_footprint(self):
        db = build_db()
        config = ShardConfig(2, {"orders": "id"})
        assert config.split(db, {}, {}) == {}

    def test_key_declarations_are_case_insensitive(self):
        db = build_db()
        config = ShardConfig(2, {"ORDERS": "ID"})
        split = config.split(db, {"orders": [(5, 1.0)]}, {})
        assert set(split) == {1}
