"""Session isolation: private staging, snapshot reads, expiry, and the
edge cases the multi-session design must get right (overlapping staged
deletes, expiry with staged events, violation attribution in a mixed
group-commit batch)."""

import threading

import pytest

from repro import Database, Tintin
from repro.errors import ExecutionError, SessionExpired

ASSERTION = (
    "CREATE ASSERTION atLeastOneItem CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE NOT EXISTS ("
    "SELECT * FROM items AS i WHERE i.order_id = o.id)))"
)

MAX_THREE_ITEMS = (
    "CREATE ASSERTION maxThreeItems CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE "
    "(SELECT COUNT(*) FROM items AS i WHERE i.order_id = o.id) > 3))"
)


def build_tintin(*assertions) -> Tintin:
    db = Database("server-test")
    db.execute("CREATE TABLE orders (id INTEGER PRIMARY KEY)")
    db.execute(
        "CREATE TABLE items (order_id INTEGER, n INTEGER, "
        "PRIMARY KEY (order_id, n), "
        "FOREIGN KEY (order_id) REFERENCES orders (id))"
    )
    tintin = Tintin(db)
    tintin.install()
    for sql in assertions or (ASSERTION,):
        tintin.add_assertion(sql)
    return tintin


def commit_order(tintin: Tintin, key: int, items: int = 1):
    session = tintin.create_session()
    session.insert("orders", [(key,)])
    session.insert("items", [(key, n) for n in range(1, items + 1)])
    result = session.commit()
    assert result.committed, result
    return result


class TestIsolation:
    def test_staged_events_invisible_to_other_sessions(self):
        tintin = build_tintin()
        s1 = tintin.create_session()
        s2 = tintin.create_session()
        s1.execute("INSERT INTO orders VALUES (1)")
        assert len(s1.query("SELECT * FROM orders")) == 1
        assert len(s2.query("SELECT * FROM orders")) == 0
        assert s2.rows("orders") == []
        # the global event tables stay empty: staging is private
        assert len(tintin.db.table("ins_orders")) == 0

    def test_read_your_writes_includes_staged_deletes(self):
        tintin = build_tintin()
        commit_order(tintin, 1)
        session = tintin.create_session()
        session.delete("items", [(1, 1)])
        session.insert("items", [(1, 2)])
        mine = session.query("SELECT * FROM items")
        assert sorted(mine.rows) == [(1, 2)]
        # other sessions (and the base tables) are untouched
        other = tintin.create_session()
        assert sorted(other.query("SELECT * FROM items").rows) == [(1, 1)]
        assert tintin.db.table("items").rows_snapshot() == [(1, 1)]

    def test_splice_oracle_restores_base_exactly(self):
        tintin = build_tintin()
        commit_order(tintin, 1)
        before = sorted(tintin.db.table("orders").rows_snapshot())
        session = tintin.create_session()
        session.insert("orders", [(2,)])
        session.delete("orders", [(1,)])
        # the splice differential oracle mutates and restores ...
        session.query_spliced("SELECT * FROM orders")
        assert sorted(tintin.db.table("orders").rows_snapshot()) == before
        # ... while the production overlay read never touches base at all
        stamp = tintin.db.data_version()
        assert sorted(session.query("SELECT * FROM orders").rows) == [(2,)]
        assert tintin.db.data_version() == stamp

    def test_data_version_stamps_commits_and_reads(self):
        tintin = build_tintin()
        db = tintin.db
        before = db.data_version()
        commit_order(tintin, 1)
        committed = db.data_version()
        assert committed > before  # a commit stamps the base tables
        session = tintin.create_session()
        assert len(session.query("SELECT * FROM orders")) == 1
        # a plain snapshot read leaves no trace: equal stamps prove the
        # read observed one stable version of the base data
        assert db.data_version() == committed

    def test_commit_makes_update_visible_to_all(self):
        tintin = build_tintin()
        s1 = tintin.create_session()
        s2 = tintin.create_session()
        s1.execute("INSERT INTO orders VALUES (7)")
        s1.execute("INSERT INTO items VALUES (7, 1)")
        assert s1.commit().committed
        assert len(s2.query("SELECT * FROM orders")) == 1

    def test_update_stages_delete_plus_insert(self):
        tintin = build_tintin()
        commit_order(tintin, 1)
        session = tintin.create_session()
        session.execute("UPDATE items SET n = 5 WHERE order_id = 1")
        counts = session.pending_counts()
        assert counts["items"] == (1, 1)
        assert session.commit().committed
        assert tintin.db.table("items").rows_snapshot() == [(1, 5)]

    def test_session_rejects_ddl(self):
        tintin = build_tintin()
        session = tintin.create_session()
        with pytest.raises(ExecutionError):
            session.execute("CREATE TABLE t (x INTEGER)")

    def test_dml_text_parsed_once(self):
        tintin = build_tintin()
        db = tintin.db
        session = tintin.create_session()
        session.execute("INSERT INTO orders VALUES (1)")
        before = db.plan_cache_stats.dml_ast_hits
        session.execute("INSERT INTO orders VALUES (1)")  # staged no-op
        assert db.plan_cache_stats.dml_ast_hits == before + 1


class TestOverlappingDeletes:
    def test_two_sessions_delete_the_same_row(self):
        tintin = build_tintin()
        commit_order(tintin, 1)
        commit_order(tintin, 2)
        s1 = tintin.create_session()
        s2 = tintin.create_session()
        # both stage a delete of order 2 (and its item) while it exists
        for s in (s1, s2):
            s.delete("items", [(2, 1)])
            s.delete("orders", [(2,)])
        r1 = s1.commit()
        r2 = s2.commit()
        assert r1.committed and r2.committed
        # the first delete wins; the second applies as a no-op
        assert r1.applied_rows == 2
        assert r2.applied_rows == 0
        assert sorted(tintin.db.table("orders").rows_snapshot()) == [(1,)]

    def test_overlapping_footprints_are_incompatible(self):
        tintin = build_tintin()
        commit_order(tintin, 1)
        scheduler = tintin.sessions.scheduler
        coupling = scheduler._coupling_specs()
        row = (1,)
        fp1 = scheduler._footprint({}, {"orders": [row]})
        fp2 = scheduler._footprint({}, {"orders": [row]})
        fp3 = scheduler._footprint({"orders": [(9,)]}, {})
        assert not fp1.compatible(fp2, coupling)
        assert fp1.compatible(fp3, coupling)
        assert fp3.compatible(fp1, coupling)

    def test_stake_vs_reference_collision_is_incompatible(self):
        tintin = build_tintin()
        scheduler = tintin.sessions.scheduler
        coupling = scheduler._coupling_specs()
        # one session deletes order 5, another stages an item *referencing*
        # order 5: applying in either order changes the other's validity
        fp_del = scheduler._footprint({}, {"orders": [(5,)]})
        fp_ref = scheduler._footprint({"items": [(5, 1)]}, {})
        assert not fp_del.compatible(fp_ref, coupling)
        assert not fp_ref.compatible(fp_del, coupling)

    def test_shared_quantified_parent_serializes(self):
        """Two sessions editing the same order's items must not take the
        group fast path: under atLeastOneItem, one session's insert
        could mask the other's delete-the-last-item violation."""
        tintin = build_tintin()
        commit_order(tintin, 1)  # order 1 with item (1, 1)
        s_del = tintin.create_session()
        s_ins = tintin.create_session()
        s_del.delete("items", [(1, 1)])   # removes order 1's only item
        s_ins.insert("items", [(1, 2)])   # adds a new item to order 1
        scheduler = tintin.sessions.scheduler
        coupling = scheduler._coupling_specs()
        fp_del = scheduler._footprint(*s_del.events.snapshot())
        fp_ins = scheduler._footprint(*s_ins.events.snapshot())
        assert not fp_del.compatible(fp_ins, coupling)
        # FIFO semantics: the delete (first) violates and is rejected,
        # the insert then commits — never "both commit" via the union
        r_del = s_del.commit()
        r_ins = s_ins.commit()
        assert not r_del.committed and r_del.violations
        assert r_del.violations[0].assertion == "atLeastOneItem"
        assert r_ins.committed
        assert sorted(tintin.db.table("items").rows_snapshot()) == [
            (1, 1),
            (1, 2),
        ]

    def test_unquantified_shared_parent_stays_groupable(self):
        """Sharing a parent that no negation quantifies over (orders
        referencing one customer, say) must not break grouping."""
        db = Database("cust")
        db.execute("CREATE TABLE customer (id INTEGER PRIMARY KEY)")
        db.execute(
            "CREATE TABLE orders (id INTEGER PRIMARY KEY, cid INTEGER, "
            "FOREIGN KEY (cid) REFERENCES customer (id))"
        )
        tintin = Tintin(db)
        tintin.install()
        tintin.add_assertion(
            "CREATE ASSERTION orderHasCustomer CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o WHERE NOT EXISTS ("
            "SELECT * FROM customer AS c WHERE c.id = o.cid)))"
        )
        boot = tintin.create_session()
        boot.insert("customer", [(1,)])
        assert boot.commit().committed
        scheduler = tintin.sessions.scheduler
        coupling = scheduler._coupling_specs()
        # both sessions reference customer 1, but neither stages
        # customer events — and orders is quantified over customer,
        # not the other way round
        fp_a = scheduler._footprint({"orders": [(10, 1)]}, {})
        fp_b = scheduler._footprint({"orders": [(11, 1)]}, {})
        assert fp_a.compatible(fp_b, coupling)


class TestExpiry:
    def test_expired_session_discards_staged_events(self):
        tintin = build_tintin()
        session = tintin.create_session()
        session.insert("orders", [(1,)])
        dropped = session.expire()
        assert dropped == 1
        assert not session.events.has_events()
        # nothing leaked anywhere: base and global event tables empty
        assert len(tintin.db.table("orders")) == 0
        assert len(tintin.db.table("ins_orders")) == 0

    def test_operations_on_expired_session_raise(self):
        tintin = build_tintin()
        session = tintin.create_session()
        session.expire()
        with pytest.raises(SessionExpired):
            session.insert("orders", [(1,)])
        with pytest.raises(SessionExpired):
            session.query("SELECT * FROM orders")
        with pytest.raises(SessionExpired):
            session.commit()

    def test_manager_forgets_expired_sessions(self):
        tintin = build_tintin()
        session = tintin.create_session()
        assert tintin.sessions.active_count == 1
        session.expire()
        assert tintin.sessions.active_count == 0
        with pytest.raises(SessionExpired):
            tintin.sessions.get(session.session_id)

    def test_ttl_expiry_with_staged_events(self):
        tintin = build_tintin()
        session = tintin.create_session(ttl=30.0)
        session.insert("orders", [(1,)])
        session.last_used -= 60.0  # simulate 60s of idleness
        with pytest.raises(SessionExpired):
            session.commit()
        assert not session.events.has_events()

    def test_expire_idle_sweep(self):
        tintin = build_tintin()
        idle = tintin.create_session()
        busy = tintin.create_session()
        idle.insert("orders", [(1,)])
        idle.last_used -= 120.0
        expired = tintin.sessions.expire_idle(60.0)
        assert expired == [idle.session_id]
        assert busy.expired is False
        assert tintin.sessions.active_count == 1

    def test_expire_idle_skips_session_with_commit_in_flight(self):
        """A session reaped while its commit is queued must not have
        its staged events discarded mid-validation: the commit pins
        the session, and the idle sweep skips pinned sessions."""
        tintin = build_tintin()
        session = tintin.create_session()
        session.insert("orders", [(1,)])
        session.insert("items", [(1, 1)])
        scheduler = tintin.sessions.scheduler

        # hold the leader lock so the commit stays queued (in flight)
        scheduler._leader_lock.acquire()
        result_box = {}

        def committer():
            result_box["result"] = session.commit()

        thread = threading.Thread(target=committer)
        thread.start()
        try:
            # wait until the request is queued (the session is pinned)
            for _ in range(2000):
                if session.pinned and scheduler._queue:
                    break
                threading.Event().wait(0.001)
            assert session.pinned
            # an aggressive sweep (everything counts as idle) must not
            # reap the session whose commit is being decided
            reaped = tintin.sessions.expire_idle(0.0)
            assert session.session_id not in reaped
            assert not session.expired
        finally:
            scheduler._leader_lock.release()
        thread.join(timeout=10)
        assert result_box["result"].committed
        assert sorted(tintin.db.table("orders").rows_snapshot()) == [(1,)]

    def test_direct_expire_during_commit_leaves_staged_events_alone(self):
        """Even an explicit ``expire()`` racing a queued commit must
        not discard the events the request owns — the commit decision
        stands; the session merely dies afterwards."""
        tintin = build_tintin()
        session = tintin.create_session()
        session.insert("orders", [(1,)])
        session.insert("items", [(1, 1)])
        scheduler = tintin.sessions.scheduler
        scheduler._leader_lock.acquire()
        result_box = {}

        def committer():
            result_box["result"] = session.commit()

        thread = threading.Thread(target=committer)
        thread.start()
        try:
            for _ in range(2000):
                if session.pinned and scheduler._queue:
                    break
                threading.Event().wait(0.001)
            dropped = session.expire()
            assert dropped == 0  # the queued request owns the events
        finally:
            scheduler._leader_lock.release()
        thread.join(timeout=10)
        assert result_box["result"].committed
        assert sorted(tintin.db.table("orders").rows_snapshot()) == [(1,)]
        assert session.expired  # the session is unusable afterwards


class TestViolationAttribution:
    def _inject(self, scheduler, session):
        """Queue a session's staged update without processing it."""
        from repro.server.scheduler import _PendingCommit

        inserts, deletes = session.events.snapshot()
        session.events.truncate()
        pending = _PendingCommit(
            session=session,
            inserts=inserts,
            deletes=deletes,
            footprint=scheduler._footprint(inserts, deletes),
            transactions=session.transactions,
        )
        scheduler._queue.append(pending)
        return pending

    def test_mixed_batch_attributes_violation_to_offender(self):
        tintin = build_tintin()
        scheduler = tintin.sessions.scheduler
        good1 = tintin.create_session()
        bad = tintin.create_session()
        good2 = tintin.create_session()
        good1.insert("orders", [(1,)])
        good1.insert("items", [(1, 1)])
        bad.insert("orders", [(2,)])  # no items: violates the assertion
        good2.insert("orders", [(3,)])
        good2.insert("items", [(3, 1)])
        pendings = [
            self._inject(scheduler, s) for s in (good1, bad, good2)
        ]
        scheduler._process_batch()
        results = [p.result for p in pendings]
        assert results[0].committed and results[2].committed
        assert not results[1].committed
        assert results[1].violations
        assert results[1].violations[0].assertion == "atLeastOneItem"
        # the violating batch fell back to the serial protocol
        assert scheduler.stats.fallbacks >= 1
        assert sorted(tintin.db.table("orders").rows_snapshot()) == [
            (1,),
            (3,),
        ]

    def test_clean_compatible_batch_takes_fast_path(self):
        tintin = build_tintin()
        scheduler = tintin.sessions.scheduler
        sessions = []
        for key in (1, 2, 3):
            s = tintin.create_session()
            s.insert("orders", [(key,)])
            s.insert("items", [(key, 1)])
            sessions.append(s)
        pendings = [self._inject(scheduler, s) for s in sessions]
        scheduler._process_batch()
        assert all(p.result.committed for p in pendings)
        assert all(p.result.group_size == 3 for p in pendings)
        assert scheduler.stats.group_fast_path == 3
        assert scheduler.stats.fallbacks == 0

    def test_aggregate_groups_serialize_per_order(self):
        tintin = build_tintin(ASSERTION, MAX_THREE_ITEMS)
        commit_order(tintin, 1, items=1)
        scheduler = tintin.sessions.scheduler
        s1 = tintin.create_session()
        s2 = tintin.create_session()
        s1.insert("items", [(1, 10)])  # order 1 now at 2 items
        s2.insert("items", [(1, 20), (1, 21)])  # would push it to 4
        pendings = [self._inject(scheduler, s) for s in (s1, s2)]
        # same aggregate group key -> incompatible -> strict FIFO
        assert not pendings[0].footprint.compatible(
            pendings[1].footprint, scheduler._coupling_specs()
        )
        scheduler._process_batch()
        assert pendings[0].result.committed
        assert not pendings[1].result.committed
        assert pendings[1].result.violations[0].assertion == "maxThreeItems"
        assert len(tintin.db.table("items")) == 2

    def test_constraint_error_attributed_in_group(self):
        tintin = build_tintin()
        commit_order(tintin, 1)
        scheduler = tintin.sessions.scheduler
        s1 = tintin.create_session()
        s2 = tintin.create_session()
        s1.insert("orders", [(2,)])
        s1.insert("items", [(2, 1)])
        # duplicate PK against committed data: passes assertion checks,
        # fails on apply — must reject only the offending session
        s2.insert("items", [(1, 1), (9, 9)])
        inserts, deletes = s2.events.snapshot()
        # bypass net-staging to force the duplicate through
        inserts["items"] = [(1, 1)]
        p1 = self._inject(scheduler, s1)
        from repro.server.scheduler import _PendingCommit

        p2 = _PendingCommit(
            session=s2,
            inserts=inserts,
            deletes={},
            footprint=scheduler._footprint(inserts, {}),
            transactions=s2.transactions,
        )
        scheduler._queue.append(p2)
        scheduler._process_batch()
        assert p1.result.committed
        assert not p2.result.committed
        assert "duplicate key" in p2.result.constraint_error


class TestConcurrentClients:
    def test_parallel_sessions_all_commit(self):
        tintin = build_tintin()
        results = {}
        barrier = threading.Barrier(8)

        def client(k):
            session = tintin.create_session()
            session.insert("orders", [(k,)])
            session.insert("items", [(k, 1)])
            barrier.wait()
            results[k] = session.commit()

        threads = [
            threading.Thread(target=client, args=(k,)) for k in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r.committed for r in results.values())
        assert len(tintin.db.table("orders")) == 8
        stats = tintin.sessions.scheduler.stats
        assert stats.commits == 8

    def test_readers_see_before_or_after_never_between(self):
        tintin = build_tintin()
        commit_order(tintin, 1)
        stop = threading.Event()
        bad_states = []
        # in every *committed* state the assertion holds, so a reader
        # that could observe a half-applied commit (order in, item not
        # yet) would see witnesses from this query
        itemless = (
            "SELECT * FROM orders AS o WHERE NOT EXISTS ("
            "SELECT * FROM items AS i WHERE i.order_id = o.id)"
        )

        def reader():
            session = tintin.create_session()
            while not stop.is_set():
                witnesses = session.query(itemless).rows
                if witnesses:
                    bad_states.append(witnesses)

        thread = threading.Thread(target=reader)
        thread.start()
        for key in range(2, 20):
            commit_order(tintin, key)
        stop.set()
        thread.join()
        assert bad_states == []
