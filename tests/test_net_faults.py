"""The fault-injection matrix over the full remote commit path.

Every scenario scripts a deterministic fault (connection drop, stalled
read, fsync delay, disk failure, scheduler stall, kill during drain)
and then checks the two invariants the network layer promises:

* every **acknowledged** commit is present after recovery;
* every **unacknowledged** commit was reported retriable (overload,
  deadline) or explicitly ambiguous (:class:`ConnectionLost`) — never
  as a success.
"""

import threading
import time

import pytest

from repro.core import Tintin
from repro.errors import (
    ConnectionLost,
    OverloadError,
    ReproError,
)
from repro.minidb import Database
from repro.net import FaultInjector, TintinClient


DDL = "CREATE TABLE items (id INT NOT NULL, qty INT)"
ASSERTION = (
    "CREATE ASSERTION positiveQty CHECK (NOT EXISTS ("
    "SELECT * FROM items AS i WHERE i.qty < 0))"
)


def make_durable(path, durability="commit"):
    tintin = Tintin.open(str(path), durability=durability)
    tintin.db.execute(DDL)
    tintin.install()
    tintin.add_assertion(ASSERTION)
    return tintin


def recovered_rows(path):
    reopened = Tintin.open(str(path))
    try:
        return sorted(reopened.db.query("SELECT id, qty FROM items").rows)
    finally:
        reopened.close()


class TestConnectionDrops:
    def test_drop_before_ack_is_ambiguous_never_success(self, tmp_path):
        """The classic lost-ack window: the commit decided (and its
        fsync returned), then the socket died before the verdict frame.
        The client must see :class:`ConnectionLost` — never a success —
        and the commit, being acknowledged durable server-side, must
        survive recovery."""
        tintin = make_durable(tmp_path)
        faults = FaultInjector()
        server = tintin.listen(faults=faults)
        faults.drop_connection("server.before_ack", times=1)
        client = TintinClient(*server.address, retries=0)
        client.insert("items", [(1, 5)])
        with pytest.raises(ConnectionLost):
            client.commit(retry=False)
        client.close_socket()
        assert faults.triggered["server.before_ack"] == 1
        assert server.metrics()["server"]["dropped_connections"] == 1
        server.shutdown(drain_timeout=5)
        assert recovered_rows(tmp_path) == [(1, 5)]

    def test_client_vanishing_after_append_before_fsync(self, tmp_path):
        """The socket dies while the commit's fsync is still pending
        (append done, durability not yet). The client, having never
        read a verdict, must not treat the commit as succeeded; the
        server finishes the fsync and the commit is durable."""
        tintin = make_durable(tmp_path)
        faults = FaultInjector()
        server = tintin.listen(faults=faults)
        # widen the append-to-fsync window, and sever the socket from
        # the server side inside it (after the WAL append buffered)
        faults.delay("wal.before_fsync", 0.3, times=1)
        faults.drop_connection("server.before_ack", times=1)
        client = TintinClient(*server.address, retries=0)
        client.insert("items", [(2, 7)])
        started = time.monotonic()
        with pytest.raises(ConnectionLost):
            client.commit(retry=False)
        # the verdict path waited for the (stalled) fsync before the
        # drop fired: the ack discipline held under the delay
        assert time.monotonic() - started >= 0.25
        client.close_socket()
        server.shutdown(drain_timeout=5)
        assert recovered_rows(tmp_path) == [(2, 7)]


class TestLoadShedding:
    def test_shed_commit_leaves_no_wal_frame(self, tmp_path):
        """A shed commit was never admitted: no engine state, no WAL
        append, and the verdict is retriable."""
        tintin = make_durable(tmp_path)
        faults = FaultInjector()
        server = tintin.listen(max_depth=1, commit_workers=1, faults=faults)
        faults.delay("scheduler.window", 0.5, times=1)
        holder = TintinClient(*server.address)
        shed = TintinClient(*server.address)
        baseline = tintin.durability.wal.stats.snapshot()["appends"]
        holder.insert("items", [(1, 1)])
        thread = threading.Thread(target=holder.commit)
        thread.start()
        time.sleep(0.1)  # the holder now occupies the only slot
        shed.insert("items", [(9, 9)])
        with pytest.raises(OverloadError) as excinfo:
            shed.commit(retry=False)
        assert excinfo.value.retriable
        assert excinfo.value.retry_after > 0
        thread.join(timeout=10)
        appends = tintin.durability.wal.stats.snapshot()["appends"]
        holder.close_socket()
        shed.close_socket()
        server.shutdown(drain_timeout=5)
        # exactly one new frame: the holder's batch.  The shed commit
        # left nothing in the log and nothing in the recovered state.
        assert appends == baseline + 1
        assert recovered_rows(tmp_path) == [(1, 1)]


class TestDeadlines:
    def test_mid_validation_expiry_releases_pin_no_wal_frame(self, tmp_path):
        """A deadline lapsing *during* the violation-view pass cancels
        the commit before apply: no WAL frame, the session pin is
        released, and the expiry sweeper can reap the session."""
        tintin = make_durable(tmp_path)
        faults = FaultInjector()
        faults.install(tintin)
        faults.delay("scheduler.validate", 0.3)
        baseline = tintin.durability.wal.stats.snapshot()["appends"]
        session = tintin.sessions.create(ttl=0.1)
        session.insert("items", [(1, 1)])
        result = session.commit(deadline=time.monotonic() + 0.1)
        assert result.committed is False
        assert result.deadline_expired is True
        assert not session.pinned
        assert tintin.sessions.scheduler.stats.snapshot()[
            "deadline_expired"
        ] >= 1
        assert (
            tintin.durability.wal.stats.snapshot()["appends"] == baseline
        )
        # the TTL has lapsed and the pin is gone: one sweep reaps it
        faults.clear()
        assert session.session_id in tintin.sessions.sweep()
        tintin.close()
        assert recovered_rows(tmp_path) == []


class TestStalls:
    def test_stalled_read_times_out_then_recovers(self, tmp_path):
        """A stalled server read hits only that connection; the client
        times out with ConnectionLost and the idempotent retry path
        reconnects transparently."""
        tintin = make_durable(tmp_path)
        faults = FaultInjector()
        server = tintin.listen(faults=faults)
        client = TintinClient(*server.address, timeout=0.5, retries=2)
        client.insert("items", [(1, 2)])
        assert client.commit()["committed"] is True
        # stall the next frame read for longer than the client timeout
        # (after= skips fires already consumed by this connection)
        fires = faults.fired["server.read"]
        faults.delay("server.read", 2.0, times=1, after=fires)
        rows = client.query("SELECT id, qty FROM items")
        assert rows.rows == [(1, 2)]
        assert client.session_id is not None  # reconnected + re-HELLOed
        client.close_socket()
        server.shutdown(drain_timeout=5)
        assert recovered_rows(tmp_path) == [(1, 2)]

    def test_scheduler_stall_delays_but_loses_nothing(self, tmp_path):
        tintin = make_durable(tmp_path, durability="batch")
        faults = FaultInjector()
        server = tintin.listen(faults=faults)
        faults.delay("scheduler.window", 0.2, times=2)
        clients = [TintinClient(*server.address) for _ in range(2)]
        verdicts = {}

        def commit(index, client):
            client.insert("items", [(index, index)])
            verdicts[index] = client.commit(timeout=10)

        threads = [
            threading.Thread(target=commit, args=(i + 1, c))
            for i, c in enumerate(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=15)
        assert all(v["committed"] for v in verdicts.values())
        for client in clients:
            client.close_socket()
        server.shutdown(drain_timeout=5)
        assert recovered_rows(tmp_path) == [(1, 1), (2, 2)]

    def test_fsync_delay_holds_the_ack(self, tmp_path):
        """An fsync delay slows the acknowledgement but never weakens
        it: the verdict arrives after the sync, and the commit is
        durable."""
        tintin = make_durable(tmp_path)
        faults = FaultInjector()
        server = tintin.listen(faults=faults)
        faults.delay("wal.before_fsync", 0.3, times=1)
        client = TintinClient(*server.address)
        client.insert("items", [(4, 4)])
        started = time.monotonic()
        assert client.commit()["committed"] is True
        assert time.monotonic() - started >= 0.25
        client.close_socket()
        server.shutdown(drain_timeout=5)
        assert recovered_rows(tmp_path) == [(4, 4)]


class TestDiskFailure:
    def test_failed_fsync_never_acknowledges(self, tmp_path):
        """A dying disk at fsync time must surface as an error — the
        commit is rolled back (fsyncgate discipline), so recovery shows
        nothing."""
        tintin = make_durable(tmp_path)
        faults = FaultInjector()
        server = tintin.listen(faults=faults)
        faults.fail("wal.before_fsync", lambda: OSError("disk died"), times=1)
        client = TintinClient(*server.address, retries=0)
        client.insert("items", [(8, 8)])
        with pytest.raises((ReproError, ConnectionLost)) as excinfo:
            verdict = client.commit(retry=False)
            # if a verdict did come back, it must not claim success
            assert not verdict["committed"], verdict
        assert excinfo is not None
        client.close_socket()
        # the log is poisoned: abort the front end (no checkpoint —
        # a checkpoint would legitimately flush the in-memory state)
        server.abort()
        assert recovered_rows(tmp_path) == []


class TestKillDuringDrain:
    def test_abort_after_ack_preserves_acked_commits(self, tmp_path):
        """Killing the server without any drain/checkpoint (abort) is
        the process-crash case: recovery must replay every
        acknowledged commit from the WAL alone."""
        tintin = make_durable(tmp_path)
        server = tintin.listen()
        client = TintinClient(*server.address)
        client.insert("items", [(1, 1)])
        assert client.commit()["committed"] is True
        client.insert("items", [(2, 2)])
        assert client.commit()["committed"] is True
        client.close_socket()
        server.abort()  # no drain, no checkpoint, sockets severed
        assert recovered_rows(tmp_path) == [(1, 1), (2, 2)]

    def test_kill_mid_drain_loses_no_acked_commit(self, tmp_path):
        """The drain itself dies (fault at ``server.drain`` aborts the
        front end): everything acknowledged before the kill is still
        recovered from the log."""
        tintin = make_durable(tmp_path)
        faults = FaultInjector()
        server = tintin.listen(faults=faults)
        client = TintinClient(*server.address)
        client.insert("items", [(3, 3)])
        assert client.commit()["committed"] is True
        client.close_socket()

        def kill(**ctx):
            raise RuntimeError("simulated kill during drain")

        faults.inject("server.drain", kill)
        with pytest.raises(RuntimeError):
            # close_engine=False: the dying process writes no final
            # checkpoint and closes nothing cleanly
            server.shutdown(drain_timeout=5, close_engine=False)
        assert recovered_rows(tmp_path) == [(3, 3)]
