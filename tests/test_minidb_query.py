"""Planner/executor tests: SELECT semantics end to end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError, ExecutionError, SchemaError
from repro.minidb import Database

ORDERS = [
    (1, 10, 100.0),
    (2, 20, 200.0),
    (3, 30, 300.0),
    (4, 10, 50.0),
    (5, None, 75.0),
]
ITEMS = [
    (1, 1, 5),
    (1, 2, 7),
    (2, 1, 9),
    (4, 1, 2),
]


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, "
        "o_custkey INTEGER, o_totalprice DOUBLE)"
    )
    database.execute(
        "CREATE TABLE lineitem (l_orderkey INTEGER NOT NULL, "
        "l_linenumber INTEGER NOT NULL, l_quantity INTEGER, "
        "PRIMARY KEY (l_orderkey, l_linenumber))"
    )
    for row in ORDERS:
        database.insert_rows("orders", [row])
    for row in ITEMS:
        database.insert_rows("lineitem", [row])
    return database


class TestBasicSelect:
    def test_select_star(self, db):
        rs = db.query("SELECT * FROM orders")
        assert sorted(rs.rows) == sorted(ORDERS)
        assert rs.columns == ["o_orderkey", "o_custkey", "o_totalprice"]

    def test_projection(self, db):
        rs = db.query("SELECT o_orderkey FROM orders WHERE o_totalprice > 100.0")
        assert sorted(rs.rows) == [(2,), (3,)]

    def test_projection_alias(self, db):
        rs = db.query("SELECT o_orderkey AS k FROM orders WHERE o_orderkey = 1")
        assert rs.columns == ["k"]

    def test_expression_projection(self, db):
        rs = db.query("SELECT o_totalprice * 2 FROM orders WHERE o_orderkey = 1")
        assert rs.rows == [(200.0,)]
        assert rs.columns == ["col1"]

    def test_where_filters_unknown(self, db):
        # o_custkey of order 5 is NULL: comparison is UNKNOWN -> excluded
        rs = db.query("SELECT o_orderkey FROM orders WHERE o_custkey > 0")
        assert sorted(rs.rows) == [(1,), (2,), (3,), (4,)]

    def test_where_is_null(self, db):
        rs = db.query("SELECT o_orderkey FROM orders WHERE o_custkey IS NULL")
        assert rs.rows == [(5,)]

    def test_distinct(self, db):
        rs = db.query("SELECT DISTINCT o_custkey FROM orders WHERE o_custkey = 10")
        assert rs.rows == [(10,)]

    def test_qualified_star(self, db):
        rs = db.query(
            "SELECT o.* FROM orders AS o, lineitem AS l "
            "WHERE o.o_orderkey = l.l_orderkey AND l.l_linenumber = 2"
        )
        assert rs.rows == [(1, 10, 100.0)]

    def test_unknown_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM ghost")

    def test_unknown_column_raises(self, db):
        with pytest.raises(SchemaError):
            db.query("SELECT nope FROM orders")

    def test_result_set_helpers(self, db):
        rs = db.query("SELECT o_orderkey FROM orders WHERE o_orderkey = 1")
        assert not rs.is_empty
        assert len(rs) == 1
        assert rs.first() == (1,)
        assert rs.column("o_orderkey") == [1]
        with pytest.raises(ExecutionError):
            rs.column("ghost")


class TestJoins:
    def test_comma_join_with_condition(self, db):
        rs = db.query(
            "SELECT o.o_orderkey, l.l_quantity FROM orders AS o, lineitem AS l "
            "WHERE o.o_orderkey = l.l_orderkey"
        )
        assert sorted(rs.rows) == [(1, 5), (1, 7), (2, 9), (4, 2)]

    def test_explicit_join_on(self, db):
        rs = db.query(
            "SELECT o.o_orderkey FROM orders AS o JOIN lineitem AS l "
            "ON o.o_orderkey = l.l_orderkey WHERE l.l_quantity > 6"
        )
        assert sorted(rs.rows) == [(1,), (2,)]

    def test_cross_join(self, db):
        rs = db.query("SELECT o.o_orderkey FROM orders AS o CROSS JOIN lineitem AS l")
        assert len(rs) == len(ORDERS) * len(ITEMS)

    def test_self_join(self, db):
        rs = db.query(
            "SELECT a.o_orderkey, b.o_orderkey FROM orders AS a, orders AS b "
            "WHERE a.o_custkey = b.o_custkey AND a.o_orderkey < b.o_orderkey"
        )
        assert rs.rows == [(1, 4)]

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE customer (c_custkey INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO customer VALUES (10), (20), (30)")
        rs = db.query(
            "SELECT c.c_custkey, l.l_quantity FROM customer AS c, orders AS o, "
            "lineitem AS l WHERE c.c_custkey = o.o_custkey "
            "AND o.o_orderkey = l.l_orderkey AND l.l_linenumber = 1"
        )
        assert sorted(rs.rows) == [(10, 2), (10, 5), (20, 9)]

    def test_null_join_keys_never_match(self, db):
        db.execute("INSERT INTO lineitem VALUES (5, 1, 1)")
        # order 5 has NULL custkey; joining on custkey must not match NULL=NULL
        db.execute("CREATE TABLE k (v INTEGER)")
        db.insert_rows("k", [(None,)])
        rs = db.query(
            "SELECT o.o_orderkey FROM orders AS o, k WHERE o.o_custkey = k.v"
        )
        assert rs.rows == []

    def test_non_equi_join_condition(self, db):
        rs = db.query(
            "SELECT o.o_orderkey, l.l_orderkey FROM orders AS o, lineitem AS l "
            "WHERE o.o_orderkey = l.l_orderkey AND o.o_totalprice > l.l_quantity * 20"
        )
        # order 1: 100.0 is not > 5*20 nor > 7*20; order 2: 200 > 180;
        # order 4: 50 > 40
        assert sorted(rs.rows) == [(2, 2), (4, 4)]

    def test_duplicate_binding_rejected(self, db):
        with pytest.raises(SchemaError):
            db.query("SELECT * FROM orders AS x, lineitem AS x")


class TestSubqueries:
    def test_not_exists_correlated(self, db):
        rs = db.query(
            "SELECT o_orderkey FROM orders AS o WHERE NOT EXISTS "
            "(SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey)"
        )
        assert sorted(rs.rows) == [(3,), (5,)]

    def test_exists_correlated(self, db):
        rs = db.query(
            "SELECT o_orderkey FROM orders AS o WHERE EXISTS "
            "(SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey "
            "AND l.l_quantity > 6)"
        )
        assert sorted(rs.rows) == [(1,), (2,)]

    def test_exists_uncorrelated(self, db):
        rs = db.query(
            "SELECT o_orderkey FROM orders WHERE EXISTS (SELECT * FROM lineitem)"
        )
        assert len(rs) == 5

    def test_not_exists_uncorrelated_empty_inner(self, db):
        db.execute("DELETE FROM lineitem")
        rs = db.query(
            "SELECT o_orderkey FROM orders WHERE EXISTS (SELECT * FROM lineitem)"
        )
        assert rs.rows == []

    def test_in_subquery(self, db):
        rs = db.query(
            "SELECT o_orderkey FROM orders WHERE o_orderkey IN "
            "(SELECT l_orderkey FROM lineitem WHERE l_quantity > 4)"
        )
        assert sorted(rs.rows) == [(1,), (2,)]

    def test_not_in_subquery(self, db):
        rs = db.query(
            "SELECT o_orderkey FROM orders WHERE o_orderkey NOT IN "
            "(SELECT l_orderkey FROM lineitem)"
        )
        assert sorted(rs.rows) == [(3,), (5,)]

    def test_not_in_with_null_inner_yields_nothing(self, db):
        # nullable inner column containing NULL: NOT IN can never be TRUE
        db.execute("CREATE TABLE maybe (v INTEGER)")
        db.insert_rows("maybe", [(1,), (None,)])
        rs = db.query(
            "SELECT o_orderkey FROM orders WHERE o_orderkey NOT IN "
            "(SELECT v FROM maybe)"
        )
        assert rs.rows == []

    def test_in_with_null_inner_still_finds_matches(self, db):
        db.execute("CREATE TABLE maybe (v INTEGER)")
        db.insert_rows("maybe", [(1,), (None,)])
        rs = db.query(
            "SELECT o_orderkey FROM orders WHERE o_orderkey IN (SELECT v FROM maybe)"
        )
        assert rs.rows == [(1,)]

    def test_correlated_in_subquery(self, db):
        rs = db.query(
            "SELECT o_orderkey FROM orders AS o WHERE 1 IN "
            "(SELECT l_linenumber FROM lineitem AS l "
            "WHERE l.l_orderkey = o.o_orderkey)"
        )
        assert sorted(rs.rows) == [(1,), (2,), (4,)]

    def test_nested_not_exists(self, db):
        # orders where every lineitem has quantity > 4
        rs = db.query(
            "SELECT o_orderkey FROM orders AS o WHERE EXISTS "
            "(SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey) "
            "AND NOT EXISTS (SELECT * FROM lineitem AS l "
            "WHERE l.l_orderkey = o.o_orderkey AND l.l_quantity <= 4)"
        )
        assert sorted(rs.rows) == [(1,), (2,)]

    def test_doubly_nested_subquery(self, db):
        db.execute("CREATE TABLE customer (c_custkey INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO customer VALUES (10), (20), (30), (40)")
        # customers that have an order with no lineitems
        rs = db.query(
            "SELECT c_custkey FROM customer AS c WHERE EXISTS "
            "(SELECT * FROM orders AS o WHERE o.o_custkey = c.c_custkey "
            "AND NOT EXISTS (SELECT * FROM lineitem AS l "
            "WHERE l.l_orderkey = o.o_orderkey))"
        )
        assert rs.rows == [(30,)]

    def test_subquery_inside_or_residual(self, db):
        rs = db.query(
            "SELECT o_orderkey FROM orders AS o WHERE o_orderkey = 5 OR EXISTS "
            "(SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey "
            "AND l.l_quantity > 8)"
        )
        assert sorted(rs.rows) == [(2,), (5,)]

    def test_in_subquery_multi_column_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query(
                "SELECT * FROM orders WHERE o_orderkey IN "
                "(SELECT l_orderkey, l_linenumber FROM lineitem)"
            )

    def test_exists_over_union(self, db):
        rs = db.query(
            "SELECT o_orderkey FROM orders AS o WHERE EXISTS "
            "(SELECT l_orderkey FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey "
            "AND l.l_quantity > 8 "
            "UNION SELECT l_orderkey FROM lineitem AS l "
            "WHERE l.l_orderkey = o.o_orderkey AND l.l_quantity < 3)"
        )
        assert sorted(rs.rows) == [(2,), (4,)]


class TestUnion:
    def test_union_distinct(self, db):
        rs = db.query(
            "SELECT o_orderkey FROM orders WHERE o_orderkey = 1 "
            "UNION SELECT o_orderkey FROM orders WHERE o_orderkey = 1"
        )
        assert rs.rows == [(1,)]

    def test_union_all_keeps_duplicates(self, db):
        rs = db.query(
            "SELECT o_orderkey FROM orders WHERE o_orderkey = 1 "
            "UNION ALL SELECT o_orderkey FROM orders WHERE o_orderkey = 1"
        )
        assert rs.rows == [(1,), (1,)]

    def test_union_width_mismatch_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query(
                "SELECT o_orderkey FROM orders "
                "UNION SELECT l_orderkey, l_quantity FROM lineitem"
            )


class TestViews:
    def test_view_in_query(self, db):
        db.execute(
            "CREATE VIEW expensive AS "
            "SELECT o_orderkey AS k, o_totalprice AS p FROM orders "
            "WHERE o_totalprice > 100.0"
        )
        rs = db.query("SELECT k FROM expensive WHERE p < 250.0")
        assert rs.rows == [(2,)]

    def test_view_join_with_table(self, db):
        db.execute(
            "CREATE VIEW expensive AS "
            "SELECT o_orderkey AS k FROM orders WHERE o_totalprice > 100.0"
        )
        rs = db.query(
            "SELECT e.k, l.l_quantity FROM expensive AS e, lineitem AS l "
            "WHERE e.k = l.l_orderkey"
        )
        assert sorted(rs.rows) == [(2, 9)]

    def test_view_over_union(self, db):
        db.execute(
            "CREATE VIEW u AS SELECT o_orderkey AS k FROM orders "
            "WHERE o_orderkey = 1 UNION SELECT o_orderkey FROM orders "
            "WHERE o_orderkey = 2"
        )
        rs = db.query("SELECT * FROM u")
        assert sorted(rs.rows) == [(1,), (2,)]

    def test_view_validates_eagerly(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW bad AS SELECT * FROM ghost")

    def test_view_name_collision(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW orders AS SELECT * FROM lineitem")

    def test_drop_view(self, db):
        db.execute("CREATE VIEW v AS SELECT * FROM orders")
        db.execute("DROP VIEW v")
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM v")


class TestPlanShapes:
    """The planner must choose index probes for update-sized inputs —
    this is the property the whole incremental method rests on."""

    def test_small_outer_probes_large_table(self, db):
        db.execute("CREATE TABLE tiny (k INTEGER)")
        db.insert_rows("tiny", [(1,)])
        for i in range(100, 400):
            db.insert_rows("orders", [(i, i, 1.0)])
        plan = db.explain(
            "SELECT * FROM tiny AS t, orders AS o WHERE o.o_orderkey = t.k"
        )
        assert "IndexJoin(probe orders" in plan

    def test_comparable_sides_use_hash_join(self, db):
        plan = db.explain(
            "SELECT * FROM orders AS a, orders AS b WHERE a.o_orderkey = b.o_orderkey"
        )
        assert "HashJoin" in plan

    def test_correlated_not_exists_is_probe_not_join(self, db):
        plan = db.explain(
            "SELECT * FROM orders AS o WHERE NOT EXISTS "
            "(SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey)"
        )
        # subqueries compile to probe closures inside Filter, not plan joins
        assert "Filter" in plan
        assert "HashJoin" not in plan


@settings(max_examples=60, deadline=None)
@given(
    orders=st.lists(
        st.tuples(st.integers(1, 20), st.integers(1, 5)), max_size=20, unique_by=lambda t: t[0]
    ),
    items=st.lists(st.tuples(st.integers(1, 25), st.integers(1, 3)), max_size=30, unique=True),
)
def test_not_exists_matches_reference_semantics(orders, items):
    """NOT EXISTS agrees with a straightforward Python reference model."""
    db = Database()
    db.execute("CREATE TABLE o (ok INTEGER PRIMARY KEY, ck INTEGER)")
    db.execute("CREATE TABLE l (lk INTEGER, ln INTEGER, PRIMARY KEY (lk, ln))")
    for row in orders:
        db.insert_rows("o", [row])
    for row in items:
        db.insert_rows("l", [row])
    rs = db.query(
        "SELECT ok FROM o WHERE NOT EXISTS (SELECT * FROM l WHERE l.lk = o.ok)"
    )
    expected = sorted(
        (ok,) for ok, _ in orders if not any(lk == ok for lk, _ in items)
    )
    assert sorted(rs.rows) == expected
