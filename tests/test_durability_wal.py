"""WAL record codec: round-trip properties and damage detection.

The satellite contract (ISSUE 4): arbitrary rows — unicode, None,
booleans, wide integers, floats — encode and decode identically; a
corrupted checksum or a truncated tail is *detected* (scanning stops),
never mis-parsed into a bogus record.
"""

from __future__ import annotations

import math
import os
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.durability import (
    WAL_MAGIC,
    WriteAheadLog,
    batch_payload,
    decode_batch,
    decode_records,
    encode_record,
    read_wal,
    rows_from_payload,
    rows_to_payload,
)
from repro.errors import DurabilityError, WALCorruptionError

# -- strategies -------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False),  # ±inf included: legal DOUBLE values
    st.text(max_size=40),
)

rows = st.lists(
    st.tuples(scalars, scalars, scalars), min_size=0, max_size=8
)

table_names = st.sampled_from(["orders", "lineitem", "ünïcode_tbl", "t2"])

event_dicts = st.dictionaries(table_names, rows, max_size=3)


# -- round-trip properties --------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(rows)
def test_rows_round_trip(rws):
    assert rows_from_payload(rows_to_payload(rws)) == rws


@settings(max_examples=100, deadline=None)
@given(event_dicts, event_dicts)
def test_batch_record_round_trip(inserts, deletes):
    record = {"type": "batch", "seq": 7, **batch_payload(inserts, deletes)}
    frame = encode_record(record)
    decoded, valid_length, tail = decode_records(frame)
    assert tail is None
    assert valid_length == len(frame)
    assert len(decoded) == 1
    got_ins, got_del = decode_batch(decoded[0])
    assert got_ins == {t: r for t, r in inserts.items() if r}
    assert got_del == {t: r for t, r in deletes.items() if r}


@settings(max_examples=50, deadline=None)
@given(st.lists(event_dicts, min_size=1, max_size=5))
def test_file_round_trip(tmp_path_factory, batches):
    path = str(tmp_path_factory.mktemp("wal") / "wal.log")
    wal = WriteAheadLog(path)
    for batch in batches:
        wal.append("batch", **batch_payload(batch, {}))
    wal.sync()
    wal.close()
    scan = read_wal(path)
    assert scan.tail_error is None
    assert [r["seq"] for r in scan.records] == list(
        range(1, len(batches) + 1)
    )
    for record, batch in zip(scan.records, batches):
        got_ins, _ = decode_batch(record)
        assert got_ins == {t: r for t, r in batch.items() if r}


def test_nan_is_rejected():
    with pytest.raises(DurabilityError):
        rows_to_payload([(float("nan"), 1)])


def test_infinity_round_trips():
    encoded = rows_to_payload([(float("inf"), float("-inf"))])
    assert rows_from_payload(encoded) == [(float("inf"), float("-inf"))]


# -- damage detection -------------------------------------------------------


def _frames(data: bytes, offset: int) -> list[tuple[int, int]]:
    """(start, end) byte ranges of each frame in ``data``."""
    spans = []
    position = offset
    while position < len(data):
        length = struct.unpack_from(">I", data, position)[0]
        end = position + 8 + length
        spans.append((position, end))
        position = end
    return spans


def _write_wal(path: str, n_records: int = 4) -> bytes:
    wal = WriteAheadLog(path)
    for i in range(n_records):
        wal.append("batch", **batch_payload({"t": [(i, f"row-{i}", None)]}, {}))
    wal.sync()
    wal.close()
    with open(path, "rb") as handle:
        return handle.read()


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_truncated_tail_detected(tmp_path_factory, data):
    path = str(tmp_path_factory.mktemp("wal") / "wal.log")
    raw = _write_wal(path)
    spans = _frames(raw, len(WAL_MAGIC))
    cut = data.draw(
        st.integers(min_value=len(WAL_MAGIC), max_value=len(raw) - 1)
    )
    with open(path, "wb") as handle:
        handle.write(raw[:cut])
    scan = read_wal(path)
    intact = [span for span in spans if span[1] <= cut]
    assert len(scan.records) == len(intact)
    if cut == (intact[-1][1] if intact else len(WAL_MAGIC)):
        assert scan.tail_error is None  # cut exactly on a boundary
    else:
        assert scan.tail_error is not None
        assert scan.torn_bytes == cut - (
            intact[-1][1] if intact else len(WAL_MAGIC)
        )
    # the intact prefix still decodes to the original records
    for i, record in enumerate(scan.records):
        assert decode_batch(record)[0] == {"t": [(i, f"row-{i}", None)]}


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_corrupted_checksum_detected(tmp_path_factory, data):
    path = str(tmp_path_factory.mktemp("wal") / "wal.log")
    raw = _write_wal(path)
    spans = _frames(raw, len(WAL_MAGIC))
    victim = data.draw(st.integers(min_value=0, max_value=len(spans) - 1))
    start, end = spans[victim]
    # flip one payload byte (past the 8-byte frame header)
    position = data.draw(st.integers(min_value=start + 8, max_value=end - 1))
    corrupted = bytearray(raw)
    corrupted[position] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(corrupted))
    scan = read_wal(path)
    # scanning stops AT the damaged frame: the records before it are
    # intact, the damage is reported, nothing after it is mis-parsed
    assert len(scan.records) == victim
    assert scan.tail_error is not None
    assert scan.valid_length == start


def test_foreign_header_rejected(tmp_path):
    path = tmp_path / "not-a-wal.log"
    path.write_bytes(b"GARBAGE!" + b"x" * 64)
    with pytest.raises(WALCorruptionError):
        read_wal(str(path))
    # opening for append must refuse too — never overwrite a foreign
    # file, even one shorter than the 8-byte header
    short = tmp_path / "short.log"
    short.write_bytes(b"abc")
    with pytest.raises(WALCorruptionError):
        WriteAheadLog(str(short))
    assert short.read_bytes() == b"abc"  # untouched


def test_torn_creation_artifacts_reinitialize(tmp_path):
    for artifact in (b"", WAL_MAGIC[:5]):
        path = tmp_path / f"torn-{len(artifact)}.log"
        path.write_bytes(artifact)
        wal = WriteAheadLog(str(path))
        wal.append("batch", **batch_payload({"t": [(1,)]}, {}))
        wal.sync()
        wal.close()
        assert [r["seq"] for r in read_wal(str(path)).records] == [1]


def test_rows_to_payload_accepts_generators():
    rows = ((i, f"r{i}") for i in range(3))
    assert rows_to_payload(rows) == [[0, "r0"], [1, "r1"], [2, "r2"]]


def test_future_format_version_rejected(tmp_path):
    path = tmp_path / "wal.log"
    future = WAL_MAGIC[:-1] + bytes([WAL_MAGIC[-1] + 1])
    path.write_bytes(future)
    with pytest.raises(WALCorruptionError):
        read_wal(str(path))


# -- reopen semantics -------------------------------------------------------


def test_reopen_truncates_torn_tail_and_resumes_seq(tmp_path):
    path = str(tmp_path / "wal.log")
    raw = _write_wal(path, n_records=3)
    with open(path, "wb") as handle:
        handle.write(raw + b"\x00\x00\x00\x40partial")  # torn append
    wal = WriteAheadLog(path)
    assert wal.stats.truncations == 1
    assert wal.last_seq == 3
    record = wal.append("batch", **batch_payload({"t": [(9, "x", True)]}, {}))
    assert record["seq"] == 4
    wal.sync()
    wal.close()
    scan = read_wal(path)
    assert scan.tail_error is None
    assert [r["seq"] for r in scan.records] == [1, 2, 3, 4]


def test_sync_counts_are_explicit(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal.log"))
    for i in range(5):
        wal.append("batch", **batch_payload({"t": [(i,)]}, {}))
    before = wal.stats.fsyncs
    wal.sync()
    assert wal.stats.appends == 5
    assert wal.stats.fsyncs == before + 1  # five appends, one fsync
    wal.close()


def test_truncate_preserves_sequence(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append("batch", **batch_payload({"t": [(1,)]}, {}))
    wal.sync()
    wal.truncate()  # writes a seq-carrying "truncate" marker (seq 2)
    record = wal.append("batch", **batch_payload({"t": [(2,)]}, {}))
    assert record["seq"] == 3  # numbering survives compaction
    wal.sync()
    wal.close()
    assert os.path.getsize(path) > len(WAL_MAGIC)
    scan = read_wal(path)
    assert [(r["type"], r["seq"]) for r in scan.records] == [
        ("truncate", 2),
        ("batch", 3),
    ]
    # the marker is what makes a FRESH open of the compacted log
    # resume numbering instead of restarting at 1 (restarting would
    # make replay skip new records as checkpoint-covered: data loss)
    reopened = WriteAheadLog(path)
    assert reopened.last_seq == 3
    reopened.close()


def test_close_is_idempotent_and_syncs_pending(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append("batch", **batch_payload({"t": [(1,)]}, {}))
    assert not wal.closed
    wal.close()  # implicit sync of the unsynced frame
    assert wal.closed
    wal.close()  # second close is a no-op
    scan = read_wal(path)
    assert [r["seq"] for r in scan.records] == [1]
    assert wal.stats.snapshot()["appends"] == 1


def test_sync_on_closed_log_is_a_clean_error(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal.log"))
    wal.close()
    with pytest.raises(DurabilityError):
        wal.sync()


def test_read_wal_fused_matches_read_wal(tmp_path):
    """The fused replay scan sees the same records (dicts for JSON
    frames, span tuples for binary ones), the same tail discipline,
    and the same header validation as the lazy scan."""
    from repro.durability import (
        decode_batch_v2_at,
        read_wal_fused,
        record_seq,
        record_type,
    )

    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append("open", database="db")
    wal.append_batch(
        {"t": [(1, 2)]}, {}, ordinal_of=lambda name: 0
    )
    wal.append("batch", **batch_payload({"t": [(3,)]}, {}))
    wal.sync()
    wal.close()
    lazy = read_wal(path)
    fused = read_wal_fused(path)
    assert fused.tail_error is None
    assert fused.valid_length == lazy.valid_length
    assert [record_type(r) for r in fused.records] == ["open", "batch", "batch"]
    assert [record_seq(r) for r in fused.records] == [1, 2, 3]
    span = fused.records[1]
    assert type(span) is tuple
    ins, dele, counts = decode_batch_v2_at(fused.data, span[2], span[3], ["t"])
    assert ins == {"t": [(1, 2)]} and dele == {} and counts is None

    # foreign header: same rejection as the lazy reader
    foreign = tmp_path / "foreign.log"
    foreign.write_bytes(b"NOTAWAL!" + b"x" * 32)
    with pytest.raises(WALCorruptionError):
        read_wal_fused(str(foreign))
    # torn creation artifact: same tolerance as the lazy reader
    torn = tmp_path / "torn.log"
    torn.write_bytes(WAL_MAGIC[:4])
    scan = read_wal_fused(str(torn))
    assert scan.records == [] and scan.valid_length == 0


def test_failed_fsync_poisons_log_and_rolls_back(tmp_path, monkeypatch):
    """A failed flush must not leave the unsynced frames buffered — a
    later sync or close would make a commit the client was told FAILED
    durable after all.  The tail is rolled back and the log refuses
    further writes (the fsyncgate discipline)."""
    import repro.durability.wal as wal_module
    from repro.errors import DurabilityError

    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append("batch", **batch_payload({"t": [(1,)]}, {}))
    wal.sync()
    wal.append("batch", **batch_payload({"t": [(2,)]}, {}))

    real_fsync = wal_module.os.fsync

    def broken_fsync(fd):
        raise OSError("I/O error")

    monkeypatch.setattr(wal_module.os, "fsync", broken_fsync)
    with pytest.raises(OSError):
        wal.sync()
    monkeypatch.setattr(wal_module.os, "fsync", real_fsync)

    # the log is poisoned: no further appends or syncs
    with pytest.raises(DurabilityError):
        wal.append("batch", **batch_payload({"t": [(3,)]}, {}))
    with pytest.raises(DurabilityError):
        wal.sync()
    wal.close()  # must not resurrect the rolled-back frame

    scan = read_wal(path)
    assert [r["seq"] for r in scan.records] == [1]  # record 2 is gone
