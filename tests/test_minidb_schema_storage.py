"""Unit tests for table schemas and row storage with indexes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConstraintViolation, ExecutionError, SchemaError
from repro.minidb.schema import Column, ForeignKey, TableSchema
from repro.minidb.storage import Table
from repro.minidb.types import DOUBLE, INTEGER, VARCHAR


def make_schema(primary_key=("id",), uniques=()):
    return TableSchema(
        "t",
        [
            Column("id", INTEGER),
            Column("name", VARCHAR),
            Column("score", DOUBLE),
        ],
        primary_key=primary_key,
        uniques=uniques,
    )


class TestTableSchema:
    def test_basic_properties(self):
        schema = make_schema()
        assert schema.column_names == ("id", "name", "score")
        assert schema.arity == 3

    def test_pk_columns_become_not_null(self):
        schema = make_schema()
        assert schema.column("id").not_null

    def test_case_insensitive_lookup(self):
        schema = make_schema()
        assert schema.column_index("NAME") == 1
        assert schema.has_column("Score")

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            make_schema().column_index("nope")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", INTEGER), Column("A", INTEGER)])

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_pk_over_missing_column_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(primary_key=("nope",))

    def test_pk_repeating_column_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(primary_key=("id", "ID"))

    def test_unique_over_missing_column_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(uniques=(("ghost",),))

    def test_fk_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "c",
                [Column("a", INTEGER)],
                foreign_keys=(ForeignKey(("a",), "p", ("x", "y")),),
            )

    def test_key_positions(self):
        schema = make_schema()
        assert schema.key_positions(("score", "id")) == (2, 0)

    def test_pk_name_case_resolved_to_declared(self):
        schema = TableSchema(
            "t", [Column("Id", INTEGER)], primary_key=("ID",)
        )
        assert schema.primary_key == ("Id",)


class TestTableStorage:
    def test_insert_and_scan(self):
        table = Table(make_schema())
        table.insert((1, "a", 1.0))
        table.insert((2, "b", 2.0))
        assert sorted(table.scan()) == [(1, "a", 1.0), (2, "b", 2.0)]
        assert len(table) == 2

    def test_pk_duplicate_rejected(self):
        table = Table(make_schema())
        table.insert((1, "a", 1.0))
        with pytest.raises(ConstraintViolation):
            table.insert((1, "b", 2.0))
        assert len(table) == 1

    def test_failed_insert_leaves_indexes_clean(self):
        schema = make_schema(uniques=(("name",),))
        table = Table(schema)
        table.insert((1, "a", 1.0))
        with pytest.raises(ConstraintViolation):
            table.insert((1, "z", 2.0))  # pk dup
        with pytest.raises(ConstraintViolation):
            table.insert((2, "a", 2.0))  # unique dup
        # the failed rows must not pollute any index
        table.insert((2, "z", 2.0))
        assert len(table) == 2

    def test_unique_allows_nulls(self):
        table = Table(make_schema(uniques=(("name",),)))
        table.insert((1, None, 1.0))
        table.insert((2, None, 2.0))  # two NULLs do not collide
        assert len(table) == 2

    def test_delete_row(self):
        table = Table(make_schema())
        table.insert((1, "a", 1.0))
        assert table.delete_row((1, "a", 1.0))
        assert len(table) == 0
        assert not table.delete_row((1, "a", 1.0))

    def test_delete_maintains_unique_index(self):
        table = Table(make_schema())
        table.insert((1, "a", 1.0))
        table.delete_row((1, "a", 1.0))
        table.insert((1, "b", 2.0))  # pk 1 free again
        assert len(table) == 1

    def test_contains_row(self):
        table = Table(make_schema())
        table.insert((1, "a", 1.0))
        assert table.contains_row((1, "a", 1.0))
        assert not table.contains_row((1, "a", 9.0))  # same pk, diff payload
        assert not table.contains_row((2, "a", 1.0))

    def test_contains_row_keyless_table(self):
        schema = TableSchema("k", [Column("a", INTEGER)])
        table = Table(schema)
        table.insert((5,))
        assert table.contains_row((5,))
        assert not table.contains_row((6,))

    def test_truncate(self):
        table = Table(make_schema())
        table.insert((1, "a", 1.0))
        table.insert((2, "b", 2.0))
        assert table.truncate() == 2
        assert len(table) == 0
        table.insert((1, "a", 1.0))  # indexes cleared too
        assert len(table) == 1

    def test_validate_row_arity(self):
        table = Table(make_schema())
        with pytest.raises(ExecutionError):
            table.validate_row((1, "a"))

    def test_validate_row_coerces(self):
        table = Table(make_schema())
        row = table.validate_row((1, "a", 3))
        assert row == (1, "a", 3.0)
        assert isinstance(row[2], float)

    def test_rows_snapshot_is_stable(self):
        table = Table(make_schema())
        table.insert((1, "a", 1.0))
        snapshot = table.rows_snapshot()
        table.delete_row((1, "a", 1.0))
        assert snapshot == [(1, "a", 1.0)]


class TestSecondaryIndexes:
    def test_lookup_after_build(self):
        table = Table(make_schema())
        table.insert((1, "a", 1.0))
        table.insert((2, "a", 2.0))
        table.insert((3, "b", 3.0))
        rows = sorted(table.lookup_secondary(("name",), ("a",)))
        assert rows == [(1, "a", 1.0), (2, "a", 2.0)]

    def test_index_maintained_on_insert(self):
        table = Table(make_schema())
        table.ensure_secondary_index(("name",))
        table.insert((1, "a", 1.0))
        assert list(table.lookup_secondary(("name",), ("a",))) == [(1, "a", 1.0)]

    def test_index_maintained_on_delete(self):
        table = Table(make_schema())
        table.insert((1, "a", 1.0))
        table.ensure_secondary_index(("name",))
        table.delete_row((1, "a", 1.0))
        assert list(table.lookup_secondary(("name",), ("a",))) == []

    def test_composite_key_index(self):
        table = Table(make_schema())
        table.insert((1, "a", 1.0))
        table.insert((2, "a", 1.0))
        rows = list(table.lookup_secondary(("name", "score"), ("a", 1.0)))
        assert len(rows) == 2

    def test_index_reused_not_rebuilt(self):
        table = Table(make_schema())
        index1 = table.ensure_secondary_index(("name",))
        index2 = table.ensure_secondary_index(("name",))
        assert index1 is index2

    def test_missing_key_returns_empty(self):
        table = Table(make_schema())
        assert list(table.lookup_secondary(("name",), ("ghost",))) == []


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 30),
            st.sampled_from(["a", "b", "c", None]),
            st.floats(0, 10, allow_nan=False),
        ),
        max_size=60,
    ),
    st.lists(st.integers(0, 30), max_size=30),
)
def test_storage_index_consistency_property(rows, delete_ids):
    """After arbitrary inserts and deletes, index lookups agree with scans."""
    table = Table(make_schema(primary_key=()))
    table.ensure_secondary_index(("name",))
    inserted = []
    for row in rows:
        table.insert(row)
        inserted.append(row)
    for victim in delete_ids:
        for row in list(inserted):
            if row[0] == victim:
                table.delete_row(row)
                inserted.remove(row)
                break
    remaining = sorted(table.scan(), key=repr)
    assert remaining == sorted(inserted, key=repr)
    for name in ("a", "b", "c"):
        via_index = sorted(table.lookup_secondary(("name",), (name,)), key=repr)
        via_scan = sorted((r for r in inserted if r[1] == name), key=repr)
        assert via_index == via_scan
