"""Tests for the benchmark harness and reporting (repro.bench)."""

import pytest

from repro.bench import (
    CellResult,
    build_workload,
    e1_table,
    format_seconds,
    run_cell,
    series_table,
    time_call,
)
from repro.tpch import AT_LEAST_ONE_LINEITEM, MAX_SEVEN_LINEITEMS

ASSERTIONS = (AT_LEAST_ONE_LINEITEM,)


class TestWorkload:
    def test_build_stages_a_pending_update(self):
        workload = build_workload(0.001, 4, ASSERTIONS, seed=5)
        assert workload.update_rows > 0
        assert workload.data_rows > 1000
        counts = workload.tintin.events.pending_counts()
        assert any(i or d for i, d in counts.values())

    def test_check_incremental_is_repeatable(self):
        workload = build_workload(0.001, 4, ASSERTIONS, seed=5)
        first = workload.check_incremental()
        second = workload.check_incremental()
        assert first.committed == second.committed

    def test_apply_then_full_check(self):
        workload = build_workload(0.001, 4, ASSERTIONS, seed=5)
        applied = workload.apply()
        assert applied > 0
        assert workload.check_full() == []

    def test_update_kinds(self):
        insert_only = build_workload(0.001, 4, ASSERTIONS, seed=5, update_kind="insert")
        assert all(
            d == 0 for _, d in insert_only.tintin.events.pending_counts().values()
        )
        delete_only = build_workload(0.001, 4, ASSERTIONS, seed=5, update_kind="delete")
        assert all(
            i == 0 for i, _ in delete_only.tintin.events.pending_counts().values()
        )
        with pytest.raises(ValueError):
            build_workload(0.001, 4, ASSERTIONS, update_kind="bogus")

    def test_optimize_flag_forwarded(self):
        optimized = build_workload(0.001, 2, ASSERTIONS, seed=5)
        unoptimized = build_workload(0.001, 2, ASSERTIONS, seed=5, optimize=False)
        count = lambda w: sum(
            len(a.edcs) for a in w.tintin.assertions.values()
        )
        assert count(unoptimized) > count(optimized)

    def test_aggregate_assertions_supported(self):
        workload = build_workload(0.001, 2, (MAX_SEVEN_LINEITEMS,), seed=5)
        assert workload.check_incremental().committed


class TestRunCell:
    def test_cell_result_fields(self):
        cell = run_cell(0.001, 2, ASSERTIONS, seed=5, repeat=1)
        assert cell.committed
        assert cell.tintin_seconds > 0
        assert cell.baseline_seconds > 0
        assert cell.speedup == cell.baseline_seconds / cell.tintin_seconds

    def test_speedup_inf_guard(self):
        cell = CellResult(0.1, 10, 5, 0.0, 1.0, True)
        assert cell.speedup == float("inf")


class TestReporting:
    def test_format_seconds_ranges(self):
        assert format_seconds(0.00000005) == "0µs"
        assert format_seconds(0.00005) == "50µs"
        assert format_seconds(0.005) == "5.00ms"
        assert format_seconds(2.5) == "2.50s"

    def test_e1_table_shape(self):
        cells = [CellResult(0.1, 1000, 50, 0.001, 0.1, True)]
        text = e1_table(cells)
        assert "speedup" in text
        assert "x" in text
        assert "1000" in text

    def test_series_table_shape(self):
        text = series_table("label", [("row1", 0.001, 0.01)])
        assert "row1" in text
        assert "x" in text

    def test_time_call_returns_best(self):
        calls = []

        def fn():
            calls.append(1)

        seconds = time_call(fn, repeat=3)
        assert len(calls) == 3
        assert seconds >= 0
