"""The two-phase-commit crash matrix.

Every ugly interleaving a distributed commit can die in, parametrized
like ``test_durability_recovery.py``'s single-engine matrix:

* participant death after voting yes — resolved from the
  coordinator's decision log at restart, both ways (commit present,
  abort absent);
* coordinator death between prepare and decision — presumed abort:
  a fresh router over the same directories rolls every prepared slice
  back;
* coordinator death after the decision fsync but before any decide
  reached a participant — the transaction still commits everywhere;
* a torn prepare record (crash mid-fsync) — the vote never became
  durable, so recovery reports nothing in-doubt and the transaction
  aborts cleanly;
* checkpointing is refused while a shard holds a prepared,
  undecided transaction (the prepare record is its only yes vote);
* a full-cluster power cut preserves exactly the acked commits.

Workers crash via the ``("crash",)`` command — ``os._exit(1)`` with
no flush, close or checkpoint, the same power-cut semantics the
durability suite uses.
"""

from __future__ import annotations

import os

import pytest

from repro.durability import wal_path
from repro.errors import ShardError
from repro.shard import ShardedTintin

ORDERS_DDL = "CREATE TABLE orders (id INTEGER PRIMARY KEY, total DOUBLE)"
ITEMS_DDL = (
    "CREATE TABLE items (order_id INTEGER, n INTEGER, "
    "PRIMARY KEY (order_id, n), "
    "FOREIGN KEY (order_id) REFERENCES orders (id))"
)
ASSERTION = (
    "CREATE ASSERTION atLeastOneItem CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE NOT EXISTS ("
    "SELECT * FROM items AS i WHERE i.order_id = o.id)))"
)
KEYS = {"orders": "id", "items": "order_id"}


def build(directory: str, shards: int = 2) -> ShardedTintin:
    engine = ShardedTintin(str(directory), shards=shards, shard_keys=KEYS)
    engine.execute(ORDERS_DDL)
    engine.execute(ITEMS_DDL)
    engine.install()
    engine.add_assertion(ASSERTION)
    return engine


def reopen(directory: str, shards: int = 2) -> ShardedTintin:
    engine = ShardedTintin(str(directory), shards=shards, shard_keys=KEYS)
    engine.declare(ORDERS_DDL)
    engine.declare(ITEMS_DDL)
    return engine


def order_ids(engine) -> list[int]:
    return sorted(
        row[0] for row in engine.query("SELECT * FROM orders AS o").rows
    )


def crash(engine, shard_id: int) -> None:
    """Power-cut one worker; the handle is marked down."""
    with pytest.raises(ShardError):
        engine.handles[shard_id].call("crash")
    assert not engine.handles[shard_id].alive


def events_for(key: int) -> tuple[dict, dict]:
    return {"orders": [(key, 1.0)], "items": [(key, 1)]}, {}


def prepare_on(engine, shard_id: int, gid: str, key: int) -> None:
    inserts, deletes = events_for(key)
    payload = engine.handles[shard_id].call(
        "prepare", gid, inserts, deletes, None
    )
    assert payload["committed"], payload  # the yes vote


def log_decision(engine, gid: str) -> None:
    """What the coordinator does at its commit point."""
    engine._decision_log.append_decide(gid, True)
    engine._decision_log.sync()
    engine._decided.add(gid)


# -- participant death ------------------------------------------------------


@pytest.mark.parametrize(
    "decided", [True, False], ids=["decided-commit", "presumed-abort"]
)
def test_participant_death_after_prepare(tmp_path, decided):
    """A shard that voted yes and died recovers in-doubt, and the
    router resolves it from the decision log: commit when the
    coordinator had decided, abort when it had not."""
    engine = build(tmp_path)
    try:
        gid = "gid-participant-death"
        prepare_on(engine, 0, gid, key=2)
        if decided:
            log_decision(engine, gid)
        crash(engine, 0)
        before = engine.stats.snapshot()["in_doubt_resolved"]
        hello = engine.restart_shard(0)
        assert hello["recovered"]
        assert engine.stats.snapshot()["in_doubt_resolved"] == before + 1
        ids = order_ids(engine)
        assert (2 in ids) == decided
        # the shard is fully operational again either way
        session = engine.create_session()
        session.insert("orders", [(4, 1.0)])
        session.insert("items", [(4, 1)])
        assert session.commit().committed
    finally:
        engine.close()


def test_participant_crash_again_before_resolution(tmp_path):
    """Crashing again while still in doubt re-reports the same gid:
    the prepare record survives any number of restarts until a
    decision resolves it."""
    engine = build(tmp_path)
    try:
        gid = "gid-twice-in-doubt"
        prepare_on(engine, 0, gid, key=2)
        crash(engine, 0)
        handle = engine.handles[0]
        handle.reap()
        hello = handle.spawn(
            engine._ctx, engine._durability_mode, engine._gather_seconds
        )
        assert hello["in_doubt"] == [gid]
        # crash once more *without* resolving
        crash(engine, 0)
        engine.restart_shard(0)  # now resolves (presumed abort)
        assert 2 not in order_ids(engine)
    finally:
        engine.close()


def test_spawn_timeout_raises_instead_of_hanging(tmp_path):
    """A worker that never reports in (wedged bootstrap) is terminated
    and surfaced as a ShardError, not an indefinite hang."""
    engine = build(tmp_path)
    try:
        crash(engine, 0)
        handle = engine.handles[0]
        handle.reap()
        with pytest.raises(ShardError, match="did not report in"):
            handle.spawn(
                engine._ctx,
                engine._durability_mode,
                engine._gather_seconds,
                timeout=0.0,
            )
        handle.reap()  # discard the terminated attempt
        engine.restart_shard(0)  # and a real restart still works
        assert engine.handles[0].alive
    finally:
        engine.close()


def test_dead_participant_fails_prepare_and_aborts_survivors(tmp_path):
    """A cross-shard commit against a down participant must fail
    cleanly: the live shard's prepared slice rolls back, the dead
    shard is skipped on the metrics page, and a restart heals it."""
    engine = build(tmp_path)
    try:
        crash(engine, 1)
        # the scrape skips the dead shard instead of erroring
        lines = engine.metrics_collectors[0].collect()
        assert not any('shard="1"' in line for line in lines)
        session = engine.create_session()
        session.insert("orders", [(2, 1.0), (3, 1.0)])  # shards 0 and 1
        session.insert("items", [(2, 1), (3, 1)])
        result = session.commit()
        assert not result.committed
        assert "failed during prepare" in (result.constraint_error or "")
        engine.restart_shard(1)
        assert order_ids(engine) == []  # shard 0's slice rolled back
        session = engine.create_session()
        session.insert("orders", [(2, 1.0), (3, 1.0)])
        session.insert("items", [(2, 1), (3, 1)])
        assert session.commit().committed
    finally:
        engine.close()


# -- coordinator death ------------------------------------------------------


@pytest.mark.parametrize(
    "decision_logged", [False, True], ids=["before-decision", "after-decision"]
)
def test_coordinator_death_mid_two_phase(tmp_path, decision_logged):
    """The whole site dies between the prepares and the decides.  A
    fresh router over the same directories must converge both shards
    to the same verdict: abort when no decision was logged (presumed
    abort), commit when the decision fsync had happened."""
    engine = build(tmp_path)
    gid = "gid-coordinator-death"
    prepare_on(engine, 0, gid, key=2)
    prepare_on(engine, 1, gid, key=3)
    if decision_logged:
        log_decision(engine, gid)
    crash(engine, 0)
    crash(engine, 1)
    engine.close()  # reaps dead workers, closes the decision log

    recovered = reopen(tmp_path)
    try:
        assert recovered.stats.snapshot()["in_doubt_resolved"] == 2
        ids = order_ids(recovered)
        assert (ids == [2, 3]) if decision_logged else (ids == [])
    finally:
        recovered.close()


# -- torn prepare records ---------------------------------------------------


def test_torn_prepare_record_means_no_vote(tmp_path):
    """A crash mid-write can tear the prepare record.  A torn tail is
    truncated at recovery — the shard never voted, nothing is
    in-doubt, and the transaction aborts by presumption."""
    engine = build(tmp_path)
    try:
        gid = "gid-torn-prepare"
        prepare_on(engine, 0, gid, key=2)
        crash(engine, 0)
        # tear the tail of the shard's WAL: cut into the last frame
        path = wal_path(engine.handles[0].directory)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 7)
        handle0 = engine.handles[0]
        handle0.reap()
        hello = handle0.spawn(
            engine._ctx, engine._durability_mode, engine._gather_seconds
        )
        assert hello["in_doubt"] == []
        assert 2 not in order_ids(engine)
        # and the log accepts new commits after the truncation
        session = engine.create_session()
        session.insert("orders", [(4, 1.0)])
        session.insert("items", [(4, 1)])
        assert session.commit().committed
    finally:
        engine.close()


# -- checkpoint discipline --------------------------------------------------


def test_checkpoint_refused_while_in_doubt(tmp_path):
    """A checkpoint truncates the WAL; while a prepared transaction is
    pending, its prepare record is the only evidence of the yes vote,
    so the worker must refuse."""
    engine = build(tmp_path)
    try:
        gid = "gid-checkpoint-block"
        prepare_on(engine, 0, gid, key=2)
        with pytest.raises(ShardError, match="checkpoint refused"):
            engine.handles[0].call("checkpoint")
        # resolving the transaction lifts the refusal
        engine.handles[0].call("decide", gid, False)
        engine.handles[0].call("checkpoint")
    finally:
        engine.close()


# -- full-cluster power cut -------------------------------------------------


def test_acked_commits_survive_full_cluster_crash(tmp_path):
    """Every commit acknowledged before a whole-cluster power cut is
    present after recovery; everything else (rejected, never
    submitted) is absent — across both routing paths."""
    engine = build(tmp_path)
    acked: list[int] = []
    # single-shard commits
    for key in (2, 3, 4, 5):
        session = engine.create_session()
        session.insert("orders", [(key, float(key))])
        session.insert("items", [(key, 1)])
        if session.commit().committed:
            acked.append(key)
    # a cross-shard 2PC commit
    session = engine.create_session()
    session.insert("orders", [(10, 1.0), (11, 1.0)])
    session.insert("items", [(10, 1), (11, 1)])
    assert session.commit().committed
    acked.extend([10, 11])
    # a rejected cross-shard batch (13 has no item) — must NOT survive
    session = engine.create_session()
    session.insert("orders", [(12, 1.0), (13, 1.0)])
    session.insert("items", [(12, 1)])
    assert not session.commit().committed
    assert sorted(acked) == order_ids(engine)
    crash(engine, 0)
    crash(engine, 1)
    engine.close()

    recovered = reopen(tmp_path)
    try:
        assert order_ids(recovered) == sorted(acked)
    finally:
        recovered.close()
