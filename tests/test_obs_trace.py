"""Commit-path tracing: span structure of one commit, well-formedness
under concurrent group commits, the slow-commit log, and the structural
zero-overhead guarantee of the disabled default."""

import io
import json
import logging
import threading

import pytest

from repro.core import Tintin
from repro.minidb import Database
from repro.obs import JsonlTracer, NullTracer, RecordingTracer
from repro.obs.trace import CommitObs, Span


def make_engine():
    db = Database("tracedemo")
    db.execute("CREATE TABLE items (id INT NOT NULL, qty INT)")
    tintin = Tintin(db)
    tintin.install()
    tintin.add_assertion(
        "CREATE ASSERTION positiveQty CHECK (NOT EXISTS ("
        "SELECT * FROM items AS i WHERE i.qty < 0))"
    )
    return tintin


def by_trace(spans):
    traces = {}
    for s in spans:
        traces.setdefault(s.trace_id, []).append(s)
    return traces


def assert_well_formed(trace_spans):
    """One root named 'commit'; every parent id resolves in-trace;
    every stage lies within the root's time bounds (small slack for
    clock reads on different threads)."""
    roots = [s for s in trace_spans if s.parent_id is None]
    assert len(roots) == 1
    root = roots[0]
    assert root.name == "commit"
    ids = {s.span_id for s in trace_spans}
    for s in trace_spans:
        if s.parent_id is not None:
            assert s.parent_id in ids, f"{s.name} orphaned"
        assert s.start >= root.start - 0.05
        assert s.end <= root.end + 0.05
    return root


class TestSingleCommitTrace:
    def test_stage_breakdown_reconstructs_and_sums_to_total(self):
        tintin = make_engine()
        tracer = RecordingTracer()
        tintin.set_tracer(tracer)
        session = tintin.create_session()
        session.insert("items", [(1, 5)])
        result = session.commit()
        assert result.committed
        traces = by_trace(tracer.spans())
        assert len(traces) == 1
        spans = next(iter(traces.values()))
        root = assert_well_formed(spans)
        assert root.attrs["verdict"] == "committed"
        names = {s.name for s in spans}
        assert {"queue.wait", "validate", "apply"} <= names
        assert any(n.startswith("check.") for n in names)
        # checks nest under the validate span, not the root
        validate = next(s for s in spans if s.name == "validate")
        for s in spans:
            if s.name.startswith("check."):
                assert s.parent_id == validate.span_id
        # direct children of the root account for ~all of the commit
        children = [s for s in spans if s.parent_id == root.span_id]
        covered = sum(s.duration for s in children)
        assert covered <= root.duration + 0.05
        assert root.duration - covered < 0.25

    def test_rejected_commit_carries_violation_verdict(self):
        tintin = make_engine()
        tracer = RecordingTracer()
        tintin.set_tracer(tracer)
        session = tintin.create_session()
        session.insert("items", [(1, -3)])
        result = session.commit()
        assert not result.committed
        root = assert_well_formed(tracer.spans())
        assert root.attrs["verdict"] == "violation"
        check = next(
            s for s in tracer.spans() if s.name.startswith("check.")
        )
        assert check.attrs["violations"] >= 1

    def test_each_commit_gets_its_own_trace_id(self):
        tintin = make_engine()
        tracer = RecordingTracer()
        tintin.set_tracer(tracer)
        for i in range(3):
            session = tintin.create_session()
            session.insert("items", [(i, 1)])
            session.commit()
        assert len(tracer.trace_ids()) == 3


class TestConcurrentGroupCommits:
    def test_every_trace_stays_well_formed_under_concurrency(self):
        tintin = make_engine()
        tracer = RecordingTracer()
        tintin.set_tracer(tracer)
        n = 12
        barrier = threading.Barrier(n)
        results = []

        def worker(i):
            session = tintin.create_session()
            session.insert("items", [(100 + i, 1)])
            barrier.wait()
            results.append(session.commit())

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r.committed for r in results)
        traces = by_trace(tracer.spans())
        assert len(traces) == n
        grouped = 0
        for spans in traces.values():
            assert_well_formed(spans)
            validate = next(s for s in spans if s.name == "validate")
            grouped = max(grouped, validate.attrs.get("group", 1))
        # group commit batched at least some of the simultaneous burst
        # (scheduling-dependent; the structural assertions above are
        # the real point)
        assert grouped >= 1


class TestTracers:
    def test_jsonl_tracer_writes_one_parseable_line_per_span(self):
        buf = io.StringIO()
        tintin = make_engine()
        tintin.set_tracer(JsonlTracer(buf))
        session = tintin.create_session()
        session.insert("items", [(1, 2)])
        session.commit()
        lines = [l for l in buf.getvalue().splitlines() if l]
        assert lines
        parsed = [json.loads(l) for l in lines]
        assert all("trace_id" in d and "span_id" in d for d in parsed)
        assert parsed[-1]["name"] == "commit"  # root emitted last

    def test_set_tracer_none_resets_to_null(self):
        tintin = make_engine()
        tintin.set_tracer(RecordingTracer())
        tintin.set_tracer(None)
        assert isinstance(tintin.tracer, NullTracer)


class TestZeroOverheadDefault:
    def test_no_obs_is_allocated_on_the_default_path(self):
        tintin = make_engine()
        # the factory is the single decision point every commit goes
        # through; with the default NullTracer and no slow log it must
        # yield None, so every downstream stage point reduces to one
        # `obs is None` test
        calls = []
        original = tintin._make_obs

        def spy(*args, **kwargs):
            obs = original(*args, **kwargs)
            calls.append(obs)
            return obs

        tintin._make_obs = spy
        session = tintin.create_session()
        session.insert("items", [(1, 1)])
        assert session.commit().committed
        assert calls, "commit path never consulted the obs factory"
        assert all(obs is None for obs in calls)

    def test_slow_log_alone_still_creates_an_obs(self):
        tintin = make_engine()
        tintin.slow_commit_seconds = 10.0
        obs = tintin._make_obs()
        assert obs is not None
        assert isinstance(tintin.tracer, NullTracer)


class TestSlowCommitLog:
    def test_commit_over_threshold_emits_one_structured_line(self, caplog):
        tintin = make_engine()
        tintin.slow_commit_seconds = 0.0  # everything is "slow"
        session = tintin.create_session()
        session.insert("items", [(1, 1)])
        with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
            session.commit()
        records = [
            r for r in caplog.records if r.name == "repro.obs.slowlog"
        ]
        assert len(records) == 1
        message = records[0].getMessage()
        assert "slow commit trace=" in message
        assert "verdict=committed" in message
        assert "validate=" in message  # per-stage breakdown

    def test_fast_commit_stays_quiet(self, caplog):
        tintin = make_engine()
        tintin.slow_commit_seconds = 30.0
        session = tintin.create_session()
        session.insert("items", [(1, 1)])
        with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
            session.commit()
        assert not [
            r for r in caplog.records if r.name == "repro.obs.slowlog"
        ]


class TestCommitObs:
    def test_finish_is_idempotent_and_emits_root_once(self):
        tracer = RecordingTracer()
        obs = CommitObs(tracer)
        obs.record("stage", 1.0, 2.0)
        obs.finish("committed")
        obs.finish("committed")
        roots = [s for s in tracer.spans() if s.name == "commit"]
        assert len(roots) == 1

    def test_on_finish_callbacks_see_the_verdict(self):
        seen = []
        obs = CommitObs(NullTracer())
        obs.on_finish(lambda o, verdict: seen.append(verdict))
        obs.finish("violation")
        assert seen == ["violation"]

    def test_explicit_trace_id_is_kept(self):
        obs = CommitObs(NullTracer(), "cafe0123cafe0123")
        assert obs.trace_id == "cafe0123cafe0123"

    def test_span_duration(self):
        s = Span("x", "t", 1, None, 1.0, 1.5)
        assert s.duration == pytest.approx(0.5)
        assert s.to_dict()["duration"] == pytest.approx(0.5)
