"""Per-assertion check profiling and EXPLAIN ANALYZE."""

import pytest

from repro.core import Tintin
from repro.minidb import Database
from repro.obs import AssertionProfiler, PlanStatsCollector


def make_engine():
    db = Database("profdemo")
    db.execute(
        "CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, "
        "o_custkey INTEGER)"
    )
    db.execute(
        "CREATE TABLE lineitem (l_orderkey INTEGER NOT NULL, "
        "l_linenumber INTEGER NOT NULL, l_quantity INTEGER, "
        "PRIMARY KEY (l_orderkey, l_linenumber))"
    )
    tintin = Tintin(db)
    tintin.install()
    tintin.add_assertion(
        "CREATE ASSERTION atLeastOne CHECK (NOT EXISTS ("
        "SELECT * FROM orders AS o WHERE NOT EXISTS ("
        "SELECT * FROM lineitem AS l "
        "WHERE l.l_orderkey = o.o_orderkey)))"
    )
    return db, tintin


def stage_valid_order(tintin, key):
    session = tintin.create_session()
    session.insert("orders", [(key, 10)])
    session.insert("lineitem", [(key, 1, 5)])
    return session


class TestAssertionProfiler:
    def test_checks_and_skips_match_the_commit_result(self):
        db, tintin = make_engine()
        profiler = tintin.enable_profiling()
        session = stage_valid_order(tintin, 1)
        result = session.commit()
        assert result.committed
        snap = profiler.snapshot()
        checked = sum(v["checks"] for v in snap.values())
        skipped = sum(v["skips"] for v in snap.values())
        assert checked == result.checked_views
        assert skipped == result.skipped_views
        assert all(v["seconds"] >= 0.0 for v in snap.values())

    def test_violations_are_counted_per_view(self):
        db, tintin = make_engine()
        profiler = tintin.enable_profiling()
        session = tintin.create_session()
        session.insert("orders", [(99, 1)])  # no line item: violates
        result = session.commit()
        assert not result.committed
        snap = profiler.snapshot()
        assert sum(v["violations"] for v in snap.values()) >= 1

    def test_capture_rows_fills_rows_scanned(self):
        db, tintin = make_engine()
        profiler = tintin.enable_profiling(capture_rows=True)
        session = stage_valid_order(tintin, 1)
        assert session.commit().committed
        snap = profiler.snapshot()
        checked = {k: v for k, v in snap.items() if v["checks"]}
        assert checked
        assert any(v["rows_scanned"] > 0 for v in checked.values())

    def test_profile_facade_auto_attaches(self):
        db, tintin = make_engine()
        session = stage_valid_order(tintin, 1)
        session.commit()
        assert tintin.profile() == {}  # attached after that commit
        session = stage_valid_order(tintin, 2)
        session.commit()
        assert tintin.profile()  # now populated

    def test_report_renders_a_table_with_view_names(self):
        db, tintin = make_engine()
        tintin.enable_profiling()
        session = stage_valid_order(tintin, 1)
        session.commit()
        report = tintin.profile_report()
        assert "checks" in report
        assert any(name in report for name in tintin.profile())

    def test_disable_profiling_detaches(self):
        db, tintin = make_engine()
        tintin.enable_profiling()
        tintin.disable_profiling()
        assert tintin.safe_commit_proc.profiler is None

    def test_reset_clears_accumulated_stats(self):
        profiler = AssertionProfiler()
        profiler.record_check("v", 0.01, violations=1)
        profiler.record_skip("w")
        assert profiler.snapshot()
        profiler.reset()
        assert profiler.snapshot() == {}


class TestExplainAnalyze:
    def test_explain_analyze_annotates_actual_rows_and_timings(self):
        db, _ = make_engine()
        db.insert_rows("orders", [(1, 1), (2, 2)], bypass_triggers=True)
        out = db.execute("EXPLAIN ANALYZE SELECT * FROM orders")
        assert "actual rows=2" in out
        assert "rows in" in out
        assert "rows scanned" in out

    def test_plain_explain_has_no_actuals(self):
        db, _ = make_engine()
        out = db.execute("EXPLAIN SELECT * FROM orders")
        assert "actual rows" not in out

    def test_explain_analyze_of_an_assertion_covers_its_views(self):
        db, tintin = make_engine()
        out = tintin.explain_analyze("atLeastOne")
        assert "actual rows=" in out
        views = tintin.assertions["atLeastOne"].view_names
        assert len(views) >= 1

    def test_explain_analyze_accepts_raw_sql(self):
        db, tintin = make_engine()
        db.insert_rows("orders", [(1, 1)], bypass_triggers=True)
        out = tintin.explain_analyze("SELECT * FROM orders")
        assert "actual rows=1" in out


class TestPlanStatsCollector:
    def test_collector_counts_rows_per_scan_node(self):
        db = Database("colldemo")
        db.execute("CREATE TABLE t (a INT NOT NULL)")
        db.insert_rows("t", [(1,), (2,), (3,)])
        prepared = db.prepare("SELECT * FROM t")
        collector = PlanStatsCollector()
        result = prepared.execute(collector=collector)
        assert len(result.rows) == 3
        assert collector.rows_scanned() == 3

    def test_collector_is_inert_when_absent(self):
        db = Database("colldemo2")
        db.execute("CREATE TABLE t (a INT NOT NULL)")
        db.insert_rows("t", [(1,)])
        prepared = db.prepare("SELECT * FROM t")
        assert len(prepared.execute().rows) == 1
