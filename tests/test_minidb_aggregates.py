"""Engine-level aggregate queries (COUNT/SUM/MIN/MAX/AVG and scalar
aggregate subqueries) — the substrate for the aggregate-assertion
extension."""

import pytest

from repro.errors import ExecutionError, SQLSyntaxError
from repro.minidb import Database
from repro.minidb.plan import aggregate_value


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE o (ok INTEGER PRIMARY KEY, ck INTEGER)")
    database.execute(
        "CREATE TABLE i (ok INTEGER, ln INTEGER, qty INTEGER, PRIMARY KEY (ok, ln))"
    )
    database.execute("INSERT INTO o VALUES (1, 10), (2, 20), (3, NULL)")
    database.execute(
        "INSERT INTO i VALUES (1, 1, 5), (1, 2, 7), (2, 1, 9), (2, 2, NULL)"
    )
    return database


class TestAggregateValue:
    def test_count(self):
        assert aggregate_value("COUNT", [1, None, 2]) == 2

    def test_sum_skips_nulls(self):
        assert aggregate_value("SUM", [1, None, 2]) == 3

    def test_min_max(self):
        assert aggregate_value("MIN", [3, 1, None]) == 1
        assert aggregate_value("MAX", [3, 1, None]) == 3

    def test_avg(self):
        assert aggregate_value("AVG", [2, 4]) == 3.0

    def test_empty_semantics(self):
        assert aggregate_value("COUNT", []) == 0
        assert aggregate_value("SUM", [None]) is None
        assert aggregate_value("MIN", []) is None
        assert aggregate_value("AVG", []) is None


class TestAggregateQueries:
    def test_count_star(self, db):
        assert db.query("SELECT COUNT(*) FROM i").rows == [(4,)]

    def test_count_column_skips_nulls(self, db):
        assert db.query("SELECT COUNT(qty) FROM i").rows == [(3,)]

    def test_all_aggregates_together(self, db):
        rows = db.query(
            "SELECT COUNT(*), SUM(qty), MIN(qty), MAX(qty), AVG(qty) FROM i"
        ).rows
        assert rows == [(4, 21, 5, 9, 7.0)]

    def test_aggregate_with_where(self, db):
        assert db.query("SELECT SUM(qty) FROM i WHERE ok = 1").rows == [(12,)]

    def test_aggregate_over_empty_relation(self, db):
        rows = db.query("SELECT COUNT(*), SUM(qty) FROM i WHERE ok = 99").rows
        assert rows == [(0, None)]

    def test_aggregate_over_join(self, db):
        rows = db.query(
            "SELECT COUNT(*) FROM o, i WHERE o.ok = i.ok AND o.ck > 15"
        ).rows
        assert rows == [(2,)]

    def test_output_column_names(self, db):
        result = db.query("SELECT COUNT(*) AS n, SUM(qty) FROM i")
        assert result.columns == ["n", "sum"]

    def test_mixing_aggregate_and_plain_rejected(self, db):
        with pytest.raises(ExecutionError, match="mix"):
            db.query("SELECT ok, COUNT(*) FROM i")

    def test_group_by_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            db.query("SELECT COUNT(*) FROM i GROUP BY ok")

    def test_distinct_aggregate_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT DISTINCT COUNT(*) FROM i")

    def test_aggregate_outside_select_list_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT * FROM i WHERE COUNT(*) > 1")


class TestScalarSubqueries:
    def test_correlated_count(self, db):
        rows = db.query(
            "SELECT ok FROM o WHERE (SELECT COUNT(*) FROM i WHERE i.ok = o.ok) = 2"
        ).rows
        assert sorted(rows) == [(1,), (2,)]

    def test_correlated_sum_with_null(self, db):
        # order 2's quantities are 9 and NULL -> SUM = 9
        rows = db.query(
            "SELECT ok FROM o WHERE (SELECT SUM(qty) FROM i WHERE i.ok = o.ok) = 9"
        ).rows
        assert rows == [(2,)]

    def test_empty_group_sum_is_unknown(self, db):
        # order 3 has no items: SUM = NULL -> comparison UNKNOWN -> excluded
        rows = db.query(
            "SELECT ok FROM o WHERE (SELECT SUM(qty) FROM i WHERE i.ok = o.ok) > 0"
        ).rows
        assert sorted(rows) == [(1,), (2,)]

    def test_empty_group_count_is_zero(self, db):
        rows = db.query(
            "SELECT ok FROM o WHERE (SELECT COUNT(*) FROM i WHERE i.ok = o.ok) = 0"
        ).rows
        assert rows == [(3,)]

    def test_scalar_with_inner_condition(self, db):
        rows = db.query(
            "SELECT ok FROM o WHERE (SELECT COUNT(*) FROM i "
            "WHERE i.ok = o.ok AND i.qty > 6) = 1"
        ).rows
        assert sorted(rows) == [(1,), (2,)]

    def test_uncorrelated_scalar(self, db):
        rows = db.query(
            "SELECT ok FROM o WHERE (SELECT COUNT(*) FROM i) = 4"
        ).rows
        assert len(rows) == 3

    def test_scalar_in_view(self, db):
        db.execute(
            "CREATE VIEW busy AS SELECT ok FROM o WHERE "
            "(SELECT COUNT(*) FROM i WHERE i.ok = o.ok) > 1"
        )
        assert sorted(db.query("SELECT * FROM busy").rows) == [(1,), (2,)]
