"""Round-trip and formatting tests for the SQL printer.

The key property is parse → print → parse gives the same AST, which is
what lets TINTIN store its generated views as standard SQL text.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlparser import (
    nodes as n,
    parse_expression,
    parse_query,
    parse_statement,
    print_expr,
    print_query,
    print_statement,
)

ROUNDTRIP_QUERIES = [
    "SELECT * FROM t",
    "SELECT DISTINCT a, t.b AS x FROM t",
    "SELECT * FROM orders AS o WHERE NOT EXISTS "
    "(SELECT * FROM lineitem AS l WHERE l.ok = o.ok)",
    "SELECT a FROM t WHERE a IN (1, 2, 3)",
    "SELECT a FROM t WHERE a NOT IN (SELECT b FROM u WHERE u.c = t.c)",
    "SELECT * FROM t WHERE a IS NULL OR b IS NOT NULL",
    "SELECT * FROM t, u WHERE t.a = u.a AND (t.b > 1 OR u.c < 2)",
    "SELECT a FROM t UNION SELECT b FROM u",
    "SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL SELECT c FROM v",
    "SELECT * FROM t WHERE NOT (a = 1 AND b = 2)",
    "SELECT o.* FROM orders AS o",
    "SELECT * FROM t WHERE a = 'it''s'",
    "SELECT * FROM t WHERE a = 2.5 AND b = -3",
]

ROUNDTRIP_STATEMENTS = [
    "CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR(20), PRIMARY KEY (a))",
    "CREATE TABLE li (ok INTEGER, ln INTEGER, PRIMARY KEY (ok, ln), "
    "FOREIGN KEY (ok) REFERENCES orders (o_ok))",
    "CREATE TABLE t (a INTEGER, b INTEGER, UNIQUE (a, b))",
    "CREATE VIEW v AS SELECT * FROM t WHERE a > 0",
    "CREATE ASSERTION x CHECK (NOT EXISTS (SELECT * FROM t))",
    "DROP TABLE t",
    "DROP VIEW IF EXISTS v",
    "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
    "INSERT INTO t SELECT * FROM u WHERE u.a > 0",
    "DELETE FROM t WHERE a = 1",
    "UPDATE t SET a = a + 1, b = 2 WHERE c = 3",
    "TRUNCATE TABLE t",
    "CALL safeCommit()",
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", ROUNDTRIP_QUERIES)
    def test_query_roundtrip(self, sql):
        ast1 = parse_query(sql)
        ast2 = parse_query(print_query(ast1))
        assert ast1 == ast2

    @pytest.mark.parametrize("sql", ROUNDTRIP_STATEMENTS)
    def test_statement_roundtrip(self, sql):
        ast1 = parse_statement(sql)
        ast2 = parse_statement(print_statement(ast1))
        assert ast1 == ast2

    def test_printed_text_is_stable(self):
        sql = "SELECT a FROM t WHERE a > 1 AND b < 2"
        once = print_query(parse_query(sql))
        twice = print_query(parse_query(once))
        assert once == twice


class TestFormatting:
    def test_string_escaping(self):
        assert print_expr(n.Literal("o'brien")) == "'o''brien'"

    def test_null_true_false(self):
        assert print_expr(n.Literal(None)) == "NULL"
        assert print_expr(n.Literal(True)) == "TRUE"
        assert print_expr(n.Literal(False)) == "FALSE"

    def test_float_keeps_decimal_point(self):
        text = print_expr(n.Literal(2.0))
        assert parse_expression(text) == n.Literal(2.0)

    def test_or_parenthesized_under_and(self):
        e = parse_expression("(a = 1 OR b = 2) AND c = 3")
        text = print_expr(e)
        assert parse_expression(text) == e

    def test_not_parenthesizes_comparison(self):
        e = n.Not(n.Comparison("=", n.ColumnRef("a"), n.Literal(1)))
        assert parse_expression(print_expr(e)) == e


# ---------------------------------------------------------------------------
# Property-based round-trip on randomly generated expression trees

_names = st.sampled_from(["a", "b", "c", "x1", "col"])
_tables = st.sampled_from([None, "t", "u"])

_literals = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000).map(n.Literal),
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ).map(n.Literal),
    st.text(alphabet="abc'x ", max_size=8).map(n.Literal),
    st.sampled_from([n.Literal(None), n.Literal(True), n.Literal(False)]),
)

_columns = st.builds(n.ColumnRef, column=_names, table=_tables)
_atoms = st.one_of(_literals, _columns)


def _expressions(max_depth=3):
    def extend(children):
        ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
        return st.one_of(
            st.builds(n.Comparison, op=ops, left=children, right=children),
            st.builds(
                lambda items: n.And(tuple(items)),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(
                lambda items: n.Or(tuple(items)),
                st.lists(children, min_size=2, max_size=3),
            ),
            st.builds(n.Not, item=children),
            st.builds(
                lambda item, values, negated: n.InList(item, tuple(values), negated),
                item=_atoms,
                values=st.lists(_literals, min_size=1, max_size=3),
                negated=st.booleans(),
            ),
            st.builds(n.IsNull, item=_atoms, negated=st.booleans()),
        )

    return st.recursive(_atoms, extend, max_leaves=12)


class TestPropertyRoundTrip:
    @settings(max_examples=300, deadline=None)
    @given(_expressions())
    def test_expression_roundtrip(self, expr):
        text = print_expr(expr)
        assert parse_expression(text) == expr

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(_names, min_size=1, max_size=4, unique=True),
        _expressions(),
        st.booleans(),
    )
    def test_select_roundtrip(self, cols, where, distinct):
        select = n.Select(
            items=tuple(n.SelectItem(n.ColumnRef(c)) for c in cols),
            from_items=(n.TableRef("t"), n.TableRef("u", "x")),
            where=where,
            distinct=distinct,
        )
        assert parse_query(print_query(select)) == select
