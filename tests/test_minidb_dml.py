"""DML, constraint enforcement, transactions, triggers and procedures."""

import pytest

from repro.errors import (
    CatalogError,
    ConstraintViolation,
    ExecutionError,
    SchemaError,
    TransactionError,
)
from repro.minidb import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE customer (c_custkey INTEGER PRIMARY KEY, "
        "c_name VARCHAR(25) NOT NULL)"
    )
    database.execute(
        "CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, "
        "o_custkey INTEGER NOT NULL, o_totalprice DOUBLE, "
        "FOREIGN KEY (o_custkey) REFERENCES customer (c_custkey))"
    )
    database.execute("INSERT INTO customer VALUES (1, 'alice'), (2, 'bob')")
    return database


class TestInsert:
    def test_basic_insert(self, db):
        count = db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        assert count == 1
        assert len(db.query("SELECT * FROM orders")) == 1

    def test_multi_row_insert(self, db):
        count = db.execute("INSERT INTO orders VALUES (10, 1, 5.0), (11, 2, 6.0)")
        assert count == 2

    def test_insert_with_column_list_reorders(self, db):
        db.execute(
            "INSERT INTO orders (o_totalprice, o_orderkey, o_custkey) "
            "VALUES (5.0, 10, 1)"
        )
        assert db.query("SELECT * FROM orders").rows == [(10, 1, 5.0)]

    def test_insert_partial_columns_fills_null(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO t (a) VALUES (1)")
        assert db.query("SELECT * FROM t").rows == [(1, None)]

    def test_insert_column_count_mismatch(self, db):
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO orders (o_orderkey) VALUES (1, 2)")

    def test_insert_duplicate_column_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO orders (o_orderkey, o_orderkey) VALUES (1, 2)")

    def test_insert_select(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        db.execute("CREATE TABLE archive (k INTEGER, c INTEGER, p DOUBLE)")
        count = db.execute("INSERT INTO archive SELECT * FROM orders")
        assert count == 1
        assert db.query("SELECT * FROM archive").rows == [(10, 1, 5.0)]

    def test_insert_select_from_self_is_safe(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.execute("INSERT INTO t SELECT * FROM t")
        assert len(db.query("SELECT * FROM t")) == 4

    def test_pk_violation(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO orders VALUES (10, 2, 6.0)")

    def test_not_null_violation(self, db):
        with pytest.raises(ConstraintViolation, match="NOT NULL"):
            db.execute("INSERT INTO customer VALUES (3, NULL)")

    def test_fk_violation_on_insert(self, db):
        with pytest.raises(ConstraintViolation, match="foreign key"):
            db.execute("INSERT INTO orders VALUES (10, 99, 5.0)")

    def test_null_fk_passes(self, db):
        db.execute(
            "CREATE TABLE optional_ref (id INTEGER PRIMARY KEY, c INTEGER, "
            "FOREIGN KEY (c) REFERENCES customer (c_custkey))"
        )
        db.execute("INSERT INTO optional_ref VALUES (1, NULL)")
        assert len(db.query("SELECT * FROM optional_ref")) == 1

    def test_type_error_on_insert(self, db):
        from repro.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            db.execute("INSERT INTO customer VALUES (3, 3)")

    def test_varchar_length_enforced(self, db):
        from repro.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            db.execute(f"INSERT INTO customer VALUES (3, '{'x' * 26}')")


class TestDelete:
    def test_delete_where(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0), (11, 2, 6.0)")
        count = db.execute("DELETE FROM orders WHERE o_orderkey = 10")
        assert count == 1
        assert db.query("SELECT * FROM orders").rows == [(11, 2, 6.0)]

    def test_delete_all(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0), (11, 2, 6.0)")
        assert db.execute("DELETE FROM orders") == 2

    def test_delete_with_alias(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        assert db.execute("DELETE FROM orders AS o WHERE o.o_totalprice > 1.0") == 1

    def test_fk_restrict_on_delete(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        with pytest.raises(ConstraintViolation, match="still referenced"):
            db.execute("DELETE FROM customer WHERE c_custkey = 1")

    def test_delete_unreferenced_parent_ok(self, db):
        assert db.execute("DELETE FROM customer WHERE c_custkey = 2") == 1


class TestUpdate:
    def test_update_non_key(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        count = db.execute(
            "UPDATE orders SET o_totalprice = o_totalprice + 1.0 "
            "WHERE o_orderkey = 10"
        )
        assert count == 1
        assert db.query("SELECT o_totalprice FROM orders").rows == [(6.0,)]

    def test_update_referenced_key_restricted(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        with pytest.raises(ConstraintViolation):
            db.execute("UPDATE customer SET c_custkey = 9 WHERE c_custkey = 1")

    def test_update_unreferenced_key_ok(self, db):
        db.execute("UPDATE customer SET c_custkey = 9 WHERE c_custkey = 2")
        assert db.query(
            "SELECT c_name FROM customer WHERE c_custkey = 9"
        ).rows == [("bob",)]

    def test_update_fk_checked(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        with pytest.raises(ConstraintViolation):
            db.execute("UPDATE orders SET o_custkey = 99 WHERE o_orderkey = 10")

    def test_update_pk_collision(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0), (11, 1, 6.0)")
        with pytest.raises(ConstraintViolation):
            db.execute("UPDATE orders SET o_orderkey = 11 WHERE o_orderkey = 10")
        # the failed update must leave the old row intact
        assert len(db.query("SELECT * FROM orders")) == 2

    def test_update_assigning_column_twice_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("UPDATE orders SET o_custkey = 1, o_custkey = 2")

    def test_update_no_matches(self, db):
        assert db.execute("UPDATE orders SET o_custkey = 1 WHERE o_orderkey = 999") == 0


class TestTruncateDrop:
    def test_truncate(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        assert db.execute("TRUNCATE TABLE orders") == 1
        assert db.query("SELECT * FROM orders").is_empty

    def test_drop_table(self, db):
        db.execute("CREATE TABLE scratch (a INTEGER)")
        db.execute("DROP TABLE scratch")
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM scratch")

    def test_drop_referenced_table_rejected(self, db):
        with pytest.raises(CatalogError, match="referenced"):
            db.execute("DROP TABLE customer")

    def test_drop_if_exists(self, db):
        db.execute("DROP TABLE IF EXISTS ghost")  # no error
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE ghost")


class TestDDLValidation:
    def test_fk_to_unknown_table(self, db):
        with pytest.raises(SchemaError):
            db.execute(
                "CREATE TABLE bad (a INTEGER, FOREIGN KEY (a) REFERENCES ghost (x))"
            )

    def test_fk_to_non_unique_columns(self, db):
        with pytest.raises(SchemaError, match="non-unique"):
            db.execute(
                "CREATE TABLE bad (a INTEGER, "
                "FOREIGN KEY (a) REFERENCES customer (c_name))"
            )

    def test_fk_default_ref_columns_resolve_to_pk(self, db):
        db.execute(
            "CREATE TABLE child (a INTEGER, FOREIGN KEY (a) REFERENCES customer)"
        )
        table = db.table("child")
        assert table.schema.foreign_keys[0].ref_columns == ("c_custkey",)

    def test_self_referencing_fk(self, db):
        db.execute(
            "CREATE TABLE emp (id INTEGER PRIMARY KEY, boss INTEGER, "
            "FOREIGN KEY (boss) REFERENCES emp (id))"
        )
        db.execute("INSERT INTO emp VALUES (1, NULL)")
        db.execute("INSERT INTO emp VALUES (2, 1)")
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO emp VALUES (3, 99)")

    def test_inline_and_table_pk_conflict(self, db):
        with pytest.raises(SchemaError):
            db.execute(
                "CREATE TABLE bad (a INTEGER PRIMARY KEY, b INTEGER, "
                "PRIMARY KEY (b))"
            )

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE customer (x INTEGER)")

    def test_create_assertion_redirected(self, db):
        with pytest.raises(ExecutionError, match="Tintin"):
            db.execute(
                "CREATE ASSERTION a CHECK (NOT EXISTS (SELECT * FROM orders))"
            )


class TestTransactions:
    def test_commit_keeps_changes(self, db):
        db.begin()
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        db.commit()
        assert len(db.query("SELECT * FROM orders")) == 1

    def test_rollback_undoes_insert(self, db):
        db.begin()
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        db.rollback()
        assert db.query("SELECT * FROM orders").is_empty

    def test_rollback_undoes_delete(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        db.begin()
        db.execute("DELETE FROM orders")
        db.rollback()
        assert len(db.query("SELECT * FROM orders")) == 1

    def test_rollback_undoes_update(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        db.begin()
        db.execute("UPDATE orders SET o_totalprice = 99.0")
        db.rollback()
        assert db.query("SELECT o_totalprice FROM orders").rows == [(5.0,)]

    def test_rollback_mixed_operations_in_order(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        db.begin()
        db.execute("DELETE FROM orders WHERE o_orderkey = 10")
        db.execute("INSERT INTO orders VALUES (10, 2, 7.0)")
        db.rollback()
        assert db.query("SELECT * FROM orders").rows == [(10, 1, 5.0)]

    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()
        db.rollback()

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.commit()

    def test_rollback_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.rollback()


class TestTriggers:
    def test_instead_of_insert_captures(self, db):
        captured = []
        db.create_trigger(
            "cap", "orders", "insert",
            lambda d, t, rows: captured.extend(rows),
        )
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        assert captured == [(10, 1, 5.0)]
        assert db.query("SELECT * FROM orders").is_empty  # base untouched

    def test_instead_of_delete_captures(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        captured = []
        db.create_trigger(
            "cap", "orders", "delete",
            lambda d, t, rows: captured.extend(rows),
        )
        db.execute("DELETE FROM orders WHERE o_orderkey = 10")
        assert captured == [(10, 1, 5.0)]
        assert len(db.query("SELECT * FROM orders")) == 1  # base untouched

    def test_disabled_trigger_passes_through(self, db):
        captured = []
        db.create_trigger(
            "cap", "orders", "insert",
            lambda d, t, rows: captured.extend(rows),
        )
        db.disable_triggers("orders")
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        assert captured == []
        assert len(db.query("SELECT * FROM orders")) == 1

    def test_reenabled_trigger_fires_again(self, db):
        captured = []
        db.create_trigger(
            "cap", "orders", "insert",
            lambda d, t, rows: captured.extend(rows),
        )
        db.disable_triggers("orders")
        db.enable_triggers("orders")
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        assert captured == [(10, 1, 5.0)]

    def test_update_with_triggers_becomes_delete_insert(self, db):
        db.execute("INSERT INTO orders VALUES (10, 1, 5.0)")
        events = []
        db.create_trigger(
            "ci", "orders", "insert", lambda d, t, rows: events.append(("ins", rows))
        )
        db.create_trigger(
            "cd", "orders", "delete", lambda d, t, rows: events.append(("del", rows))
        )
        db.execute("UPDATE orders SET o_totalprice = 9.0 WHERE o_orderkey = 10")
        assert ("del", [(10, 1, 5.0)]) in events
        assert ("ins", [(10, 1, 9.0)]) in events

    def test_trigger_on_unknown_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_trigger("x", "ghost", "insert", lambda d, t, r: None)

    def test_duplicate_trigger_name_rejected(self, db):
        db.create_trigger("x", "orders", "insert", lambda d, t, r: None)
        with pytest.raises(CatalogError):
            db.create_trigger("x", "orders", "delete", lambda d, t, r: None)

    def test_bad_event_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_trigger("x", "orders", "upsert", lambda d, t, r: None)


class TestProcedures:
    def test_call_via_sql(self, db):
        db.create_procedure("double_it", lambda d, x: x * 2)
        assert db.execute("CALL double_it(21)") == 42

    def test_call_direct(self, db):
        db.create_procedure("count_orders", lambda d: len(d.query("SELECT * FROM orders")))
        assert db.call("count_orders") == 0

    def test_unknown_procedure(self, db):
        with pytest.raises(CatalogError):
            db.call("ghost")

    def test_replace_procedure(self, db):
        db.create_procedure("p", lambda d: 1)
        db.create_procedure("p", lambda d: 2)
        assert db.call("p") == 2


class TestApplyBatch:
    def test_batch_orders_inserts_parents_first(self, db):
        # lineitem-style child arrives in the dict before its parent
        db.execute(
            "CREATE TABLE li (k INTEGER, o INTEGER, PRIMARY KEY (k), "
            "FOREIGN KEY (o) REFERENCES orders (o_orderkey))"
        )
        changed = db.apply_batch(
            {"li": [(1, 10)], "orders": [(10, 1, 5.0)]},
            {},
        )
        assert changed == 2

    def test_batch_deletes_children_first(self, db):
        db.execute(
            "CREATE TABLE li (k INTEGER, o INTEGER, PRIMARY KEY (k), "
            "FOREIGN KEY (o) REFERENCES orders (o_orderkey))"
        )
        db.apply_batch({"orders": [(10, 1, 5.0)], "li": [(1, 10)]}, {})
        changed = db.apply_batch({}, {"orders": [(10, 1, 5.0)], "li": [(1, 10)]})
        assert changed == 2
        assert db.query("SELECT * FROM orders").is_empty

    def test_batch_rolls_back_on_violation(self, db):
        with pytest.raises(ConstraintViolation):
            db.apply_batch(
                {"orders": [(10, 1, 5.0), (11, 99, 6.0)]},  # 99: no such customer
                {},
            )
        assert db.query("SELECT * FROM orders").is_empty

    def test_batch_inside_existing_transaction(self, db):
        db.begin()
        db.apply_batch({"orders": [(10, 1, 5.0)]}, {})
        db.rollback()
        assert db.query("SELECT * FROM orders").is_empty

    def test_empty_batch(self, db):
        assert db.apply_batch({}, {}) == 0
