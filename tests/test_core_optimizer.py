"""Tests for the semantic EDC optimizer."""

import pytest

from repro.core import Assertion, DenialCompiler, EDCGenerator, SemanticOptimizer
from repro.core.edc import EDC
from repro.logic import Atom, Builtin, Constant, Predicate, Variable
from repro.logic.literals import DEL, INS
from repro.minidb import Database

O = Variable("o")
C = Variable("c")


@pytest.fixture
def db():
    database = Database("tpc")
    database.execute(
        "CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, o_custkey INTEGER)"
    )
    database.execute(
        "CREATE TABLE lineitem (l_orderkey INTEGER NOT NULL, "
        "l_linenumber INTEGER NOT NULL, l_quantity INTEGER, "
        "PRIMARY KEY (l_orderkey, l_linenumber), "
        "FOREIGN KEY (l_orderkey) REFERENCES orders (o_orderkey))"
    )
    return database


def edcs_for(db, sql, optimize=True):
    assertion = Assertion.parse(sql)
    denials = DenialCompiler(db.catalog).compile(assertion)
    generator = EDCGenerator()
    optimizer = SemanticOptimizer(db.catalog, enabled=optimize)
    result, reports = [], []
    for denial in denials:
        edcs, _ = generator.generate(denial)
        kept, report = optimizer.optimize(edcs)
        result.extend(kept)
        reports.append(report)
    return result, reports


RUNNING_EXAMPLE = (
    "CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE NOT EXISTS ("
    "SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey)))"
)


class TestFKPruning:
    def test_paper_edc5_is_discarded(self, db):
        """The paper: 'EDC 5 can be safely discarded assuming that the
        foreign key constraint from lineitem to order is satisfied'."""
        kept, reports = edcs_for(db, RUNNING_EXAMPLE)
        assert len(kept) == 2
        (report,) = reports
        assert report.dropped_count == 1
        assert "foreign key" in report.dropped[0][1]
        # the pruned EDC is the ιorders ∧ δlineitem one
        remaining_tables = [sorted(e.event_tables) for e in kept]
        assert ["del_lineitem", "ins_orders"] not in remaining_tables

    def test_disabled_optimizer_keeps_all_three(self, db):
        kept, reports = edcs_for(db, RUNNING_EXAMPLE, optimize=False)
        assert len(kept) == 3
        assert reports[0].dropped_count == 0

    def test_no_pruning_without_fk(self, db):
        # part/partsupp-style tables without the FK: nothing to prune
        db.execute("CREATE TABLE a (k INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE b (k INTEGER, x INTEGER)")  # no FK
        kept, reports = edcs_for(
            db,
            "CREATE ASSERTION x CHECK (NOT EXISTS (SELECT * FROM a WHERE "
            "NOT EXISTS (SELECT * FROM b WHERE b.k = a.k)))",
        )
        assert len(kept) == 3

    def test_fk_pruning_requires_key_alignment(self, db):
        # the deleted child correlates on a different column than the
        # inserted parent's key -> no pruning
        checker = SemanticOptimizer(db.catalog)
        ins_orders = Atom(Predicate("orders", INS), (O, C))
        del_lineitem = Atom(
            Predicate("lineitem", DEL), (C, Variable("n"), Variable("q"))
        )
        edc = EDC("x1", "x", (ins_orders, del_lineitem))
        kept, report = checker.optimize([edc])
        # child key is C which equals parent's o_custkey, not its PK term O
        assert len(kept) == 0 or len(kept) == 1
        # alignment here: child term C vs parent pk term O -> differ -> kept
        assert len(kept) == 1


class TestContradictionPruning:
    def test_ins_and_base_same_tuple(self, db):
        ins = Atom(Predicate("orders", INS), (O, C))
        base = Atom(Predicate("orders"), (O, C))
        edc = EDC("x1", "x", (ins, base))
        kept, report = SemanticOptimizer(db.catalog).optimize([edc])
        assert kept == []
        assert "new tuples" in report.dropped[0][1]

    def test_ins_and_del_same_tuple(self, db):
        ins = Atom(Predicate("orders", INS), (O, C))
        dele = Atom(Predicate("orders", DEL), (O, C))
        edc = EDC("x1", "x", (ins, dele))
        kept, report = SemanticOptimizer(db.catalog).optimize([edc])
        assert kept == []
        assert "net-effect" in report.dropped[0][1]

    def test_atom_and_its_negation(self, db):
        base = Atom(Predicate("orders"), (O, C))
        neg = Atom(Predicate("orders"), (O, C), negated=True)
        edc = EDC("x1", "x", (base, neg))
        kept, _ = SemanticOptimizer(db.catalog).optimize([edc])
        assert kept == []

    def test_different_terms_not_pruned(self, db):
        ins = Atom(Predicate("orders", INS), (O, C))
        dele = Atom(Predicate("orders", DEL), (Variable("o2"), C))
        edc = EDC("x1", "x", (ins, dele))
        kept, _ = SemanticOptimizer(db.catalog).optimize([edc])
        assert len(kept) == 1


class TestSimplifications:
    def test_duplicate_literal_removed(self, db):
        base = Atom(Predicate("orders"), (O, C))
        ins = Atom(Predicate("orders", INS), (Variable("o2"), Variable("c2")))
        edc = EDC("x1", "x", (ins, base, base))
        kept, report = SemanticOptimizer(db.catalog).optimize([edc])
        assert len(kept[0].body) == 2
        assert report.simplified

    def test_true_builtin_removed(self, db):
        ins = Atom(Predicate("orders", INS), (O, C))
        edc = EDC("x1", "x", (ins, Builtin("<", Constant(1), Constant(2))))
        kept, report = SemanticOptimizer(db.catalog).optimize([edc])
        assert len(kept[0].body) == 1

    def test_duplicate_edcs_removed(self, db):
        ins = Atom(Predicate("orders", INS), (O, C))
        a = EDC("x1", "x", (ins,))
        b = EDC("x2", "x", (ins,))
        kept, report = SemanticOptimizer(db.catalog).optimize([a, b])
        assert len(kept) == 1
        assert ("x2", "duplicate of an earlier EDC") in report.dropped

    def test_disabled_optimizer_is_identity(self, db):
        ins = Atom(Predicate("orders", INS), (O, C))
        edcs = [EDC("x1", "x", (ins, ins))]
        kept, report = SemanticOptimizer(db.catalog, enabled=False).optimize(edcs)
        assert kept == edcs
        assert report.dropped_count == 0
