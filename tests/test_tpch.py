"""Tests for the TPC-H substrate: schema, generator, updates, assertions."""

import pytest

from repro.core import Tintin
from repro.tpch import (
    ALL_ASSERTIONS,
    AT_LEAST_ONE_LINEITEM,
    COMPLEXITY_SUITE,
    TPCHGenerator,
    UpdateGenerator,
    by_name,
    load_tpch,
    tpch_database,
)


@pytest.fixture(scope="module")
def loaded():
    db = tpch_database()
    data = load_tpch(db, scale=0.001, seed=42)
    return db, data


class TestSchema:
    def test_all_eight_tables_exist(self, loaded):
        db, _ = loaded
        for name in (
            "region", "nation", "supplier", "customer",
            "part", "partsupp", "orders", "lineitem",
        ):
            assert db.catalog.has_table(name)

    def test_figure1_keys(self, loaded):
        db, _ = loaded
        lineitem = db.table("lineitem").schema
        assert lineitem.primary_key == ("l_orderkey", "l_linenumber")
        fk_targets = {fk.ref_table for fk in lineitem.foreign_keys}
        assert fk_targets == {"orders", "partsupp"}

    def test_partsupp_composite_pk(self, loaded):
        db, _ = loaded
        assert db.table("partsupp").schema.primary_key == (
            "ps_partkey",
            "ps_suppkey",
        )


class TestGenerator:
    def test_row_count_ratios(self, loaded):
        _, data = loaded
        counts = data.counts()
        assert counts["region"] == 5
        assert counts["nation"] == 25
        assert counts["supplier"] == 10
        assert counts["customer"] == 150
        assert counts["part"] == 200
        assert counts["partsupp"] == 800
        assert counts["orders"] == 1500
        # lineitems: 1-7 per order, so between 1x and 7x orders
        assert 1500 <= counts["lineitem"] <= 1500 * 7

    def test_determinism(self):
        a = TPCHGenerator(0.001, seed=42).generate()
        b = TPCHGenerator(0.001, seed=42).generate()
        assert a.rows == b.rows

    def test_different_seeds_differ(self):
        a = TPCHGenerator(0.001, seed=1).generate()
        b = TPCHGenerator(0.001, seed=2).generate()
        assert a.rows["orders"] != b.rows["orders"]

    def test_scale_scales(self):
        small = TPCHGenerator(0.001).generate()
        large = TPCHGenerator(0.002).generate()
        assert large.counts()["orders"] == 2 * small.counts()["orders"]

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            TPCHGenerator(0)

    def test_generated_data_respects_fks(self, loaded):
        # populate() succeeds under full FK enforcement — re-verify the
        # trickiest one here explicitly: lineitem -> partsupp
        db, _ = loaded
        orphans = db.query(
            "SELECT * FROM lineitem AS l WHERE NOT EXISTS ("
            "SELECT * FROM partsupp AS ps WHERE ps.ps_partkey = l.l_partkey "
            "AND ps.ps_suppkey = l.l_suppkey)"
        )
        assert orphans.is_empty

    def test_initial_state_satisfies_all_assertions(self):
        db = tpch_database()
        load_tpch(db, scale=0.001, seed=42)
        tintin = Tintin(db)
        tintin.install()
        for spec in ALL_ASSERTIONS:
            tintin.add_assertion(spec.sql)
        violations = tintin.baseline.check_current_state(db)
        assert violations == []


class TestUpdateGenerator:
    def make(self):
        db = tpch_database()
        load_tpch(db, scale=0.001, seed=42)
        return db, UpdateGenerator(db, seed=7)

    def test_rf1_inserts_orders_with_items(self):
        _, gen = self.make()
        batch = gen.rf1_new_orders(5)
        assert len(batch.inserts["orders"]) == 5
        assert len(batch.inserts["lineitem"]) >= 5
        assert not batch.deletes

    def test_rf1_uses_fresh_orderkeys(self):
        db, gen = self.make()
        existing = {row[0] for row in db.table("orders").scan()}
        batch = gen.rf1_new_orders(5)
        new_keys = {row[0] for row in batch.inserts["orders"]}
        assert not (new_keys & existing)

    def test_rf2_deletes_orders_with_their_items(self):
        db, gen = self.make()
        batch = gen.rf2_delete_orders(5)
        assert len(batch.deletes["orders"]) == 5
        deleted_orders = {row[0] for row in batch.deletes["orders"]}
        item_orders = {row[0] for row in batch.deletes["lineitem"]}
        assert item_orders == deleted_orders

    def test_mixed_refresh_has_both(self):
        _, gen = self.make()
        batch = gen.mixed_refresh(6)
        assert batch.inserts["orders"]
        assert batch.deletes["orders"]

    def test_staged_valid_refresh_commits(self):
        db, gen = self.make()
        tintin = Tintin(db)
        tintin.install()
        tintin.add_assertion(AT_LEAST_ONE_LINEITEM.sql)
        gen.mixed_refresh(6).stage(db)
        result = tintin.safe_commit()
        assert result.committed, str(result)

    def test_violating_order_without_lineitem_rejected(self):
        db, gen = self.make()
        tintin = Tintin(db)
        tintin.install()
        tintin.add_assertion(AT_LEAST_ONE_LINEITEM.sql)
        gen.violating_order_without_lineitem().stage(db)
        assert tintin.safe_commit().rejected

    def test_violating_empty_an_order_rejected(self):
        db, gen = self.make()
        tintin = Tintin(db)
        tintin.install()
        tintin.add_assertion(AT_LEAST_ONE_LINEITEM.sql)
        gen.violating_empty_an_order().stage(db)
        assert tintin.safe_commit().rejected

    def test_violating_negative_quantity_rejected(self):
        db, gen = self.make()
        tintin = Tintin(db)
        tintin.install()
        tintin.add_assertion(by_name("positiveQuantity").sql)
        gen.violating_negative_quantity().stage(db)
        assert tintin.safe_commit().rejected

    def test_batch_size_counts_rows(self):
        _, gen = self.make()
        batch = gen.rf1_new_orders(3)
        assert batch.size == len(batch.inserts["orders"]) + len(
            batch.inserts["lineitem"]
        )


class TestAssertionSuite:
    def test_complexity_suite_is_ordered(self):
        ranks = [spec.complexity for spec in COMPLEXITY_SUITE]
        assert ranks == sorted(ranks)

    def test_all_assertions_compile(self):
        db = tpch_database()
        load_tpch(db, scale=0.0005, seed=1)
        tintin = Tintin(db)
        tintin.install()
        for spec in ALL_ASSERTIONS:
            assertion = tintin.add_assertion(spec.sql)
            if assertion.aggregate is not None:
                continue  # aggregate assertions use the group-probe checker
            assert assertion.edcs, f"{spec.name} produced no EDCs"
            assert assertion.view_names

    def test_by_name(self):
        assert by_name("atLeastOneLineItem") is AT_LEAST_ONE_LINEITEM
        with pytest.raises(KeyError):
            by_name("ghost")

    def test_refreshes_pass_whole_suite(self):
        db = tpch_database()
        load_tpch(db, scale=0.0005, seed=1)
        tintin = Tintin(db)
        tintin.install()
        for spec in COMPLEXITY_SUITE:
            tintin.add_assertion(spec.sql)
        gen = UpdateGenerator(db, seed=11)
        gen.mixed_refresh(4).stage(db)
        result = tintin.safe_commit()
        assert result.committed, str(result)
