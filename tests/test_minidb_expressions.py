"""Unit tests for expression compilation and three-valued logic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError, SchemaError
from repro.minidb.expressions import (
    Scope,
    compile_expr,
    sql_and,
    sql_compare,
    sql_not,
    sql_or,
)
from repro.sqlparser import parse_expression
from repro.sqlparser import nodes as n


def evaluate(text, row=(), entries=(), params=None):
    scope = Scope(list(entries))
    fn = compile_expr(parse_expression(text), scope)
    return fn(row, params or {})


class TestKleeneLogic:
    TRI = (True, False, None)

    def test_and_truth_table(self):
        assert sql_and([True, True]) is True
        assert sql_and([True, False]) is False
        assert sql_and([False, None]) is False  # False dominates
        assert sql_and([True, None]) is None
        assert sql_and([None, None]) is None
        assert sql_and([]) is True

    def test_or_truth_table(self):
        assert sql_or([False, False]) is False
        assert sql_or([True, None]) is True  # True dominates
        assert sql_or([False, None]) is None
        assert sql_or([None, None]) is None
        assert sql_or([]) is False

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None

    @given(st.lists(st.sampled_from(TRI), max_size=5))
    def test_de_morgan(self, values):
        assert sql_not(sql_and(values)) == sql_or([sql_not(v) for v in values])

    def test_compare_null_is_unknown(self):
        assert sql_compare("=", None, 1) is None
        assert sql_compare("<>", None, None) is None
        assert sql_compare("<", 1, None) is None

    @pytest.mark.parametrize(
        "op,l,r,expected",
        [
            ("=", 1, 1, True),
            ("=", 1, 2, False),
            ("<>", "a", "b", True),
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 2.5, 2, True),
            (">=", 1, 2, False),
            ("=", 1, 1.0, True),
        ],
    )
    def test_compare_values(self, op, l, r, expected):
        assert sql_compare(op, l, r) is expected

    def test_incomparable_types_raise(self):
        with pytest.raises(ExecutionError):
            sql_compare("<", 1, "a")
        with pytest.raises(ExecutionError):
            sql_compare("=", True, 1)


class TestScope:
    def test_qualified_resolution(self):
        scope = Scope([("t", "a"), ("u", "a")])
        assert scope.resolve(n.ColumnRef("a", "t")) == 0
        assert scope.resolve(n.ColumnRef("a", "u")) == 1

    def test_unqualified_unambiguous(self):
        scope = Scope([("t", "a"), ("u", "b")])
        assert scope.resolve(n.ColumnRef("b")) == 1

    def test_unqualified_ambiguous_raises(self):
        scope = Scope([("t", "a"), ("u", "a")])
        with pytest.raises(SchemaError):
            scope.resolve(n.ColumnRef("a"))

    def test_case_insensitive(self):
        scope = Scope([("T", "Amount")])
        assert scope.resolve(n.ColumnRef("AMOUNT", "t")) == 0

    def test_unknown_raises(self):
        with pytest.raises(SchemaError):
            Scope([("t", "a")]).resolve(n.ColumnRef("z"))

    def test_outer_chain_resolution(self):
        outer = Scope([("o", "x")])
        inner = Scope([("i", "y")], outer=outer)
        kind, key = inner.resolve_with_outer(n.ColumnRef("x", "o"))
        assert kind == "outer"
        assert key == ("o", "x")

    def test_local_shadows_outer(self):
        outer = Scope([("t", "a")])
        inner = Scope([("t", "a")], outer=outer)
        kind, where = inner.resolve_with_outer(n.ColumnRef("a", "t"))
        assert kind == "local"


class TestCompiledExpressions:
    ENTRIES = (("t", "a"), ("t", "b"), ("t", "s"))

    def run(self, text, row):
        return evaluate(text, row, self.ENTRIES)

    def test_column_and_literal(self):
        assert self.run("a", (5, 0, "x")) == 5
        assert self.run("42", (0, 0, "")) == 42

    def test_comparison(self):
        assert self.run("a < b", (1, 2, "")) is True
        assert self.run("a < b", (None, 2, "")) is None

    def test_arithmetic(self):
        assert self.run("a + b * 2", (1, 3, "")) == 7
        assert self.run("a - b", (1, 3, "")) == -2
        assert self.run("b / a", (2, 7, "")) == 3  # integer division truncates

    def test_float_division(self):
        assert self.run("b / a", (2.0, 7, "")) == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            self.run("a / b", (1, 0, ""))

    def test_arithmetic_null_propagates(self):
        assert self.run("a + b", (None, 3, "")) is None

    def test_arithmetic_on_strings_raises(self):
        with pytest.raises(ExecutionError):
            self.run("s + s", (0, 0, "x"))

    def test_and_or_not(self):
        assert self.run("a = 1 AND b = 2", (1, 2, "")) is True
        assert self.run("a = 1 OR b = 9", (1, 2, "")) is True
        assert self.run("NOT a = 1", (1, 2, "")) is False

    def test_is_null(self):
        assert self.run("a IS NULL", (None, 0, "")) is True
        assert self.run("a IS NOT NULL", (None, 0, "")) is False
        assert self.run("a IS NULL", (1, 0, "")) is False

    def test_in_list(self):
        assert self.run("a IN (1, 2, 3)", (2, 0, "")) is True
        assert self.run("a IN (1, 2, 3)", (9, 0, "")) is False
        assert self.run("a NOT IN (1, 2)", (9, 0, "")) is True

    def test_in_list_null_semantics(self):
        # NULL subject -> UNKNOWN
        assert self.run("a IN (1, 2)", (None, 0, "")) is None
        # subject not found but NULL in list -> UNKNOWN
        assert self.run("a IN (1, NULL)", (9, 0, "")) is None
        # found despite NULL in list -> TRUE
        assert self.run("a IN (9, NULL)", (9, 0, "")) is True
        # NOT IN with NULL in list can never be TRUE
        assert self.run("a NOT IN (1, NULL)", (9, 0, "")) is None

    def test_between_desugared(self):
        assert self.run("a BETWEEN 1 AND 3", (2, 0, "")) is True
        assert self.run("a BETWEEN 1 AND 3", (4, 0, "")) is False

    def test_string_comparison(self):
        assert self.run("s = 'x'", (0, 0, "x")) is True
        assert self.run("s < 'y'", (0, 0, "x")) is True

    def test_boolean_literal(self):
        assert self.run("TRUE", ()) is True
        assert self.run("FALSE OR TRUE", ()) is True

    def test_params_lookup(self):
        outer = Scope([("o", "x")])
        inner = Scope([("t", "a")], outer=outer)
        fn = compile_expr(parse_expression("a = o.x"), inner)
        assert fn((5,), {("o", "x"): 5}) is True
        assert fn((5,), {("o", "x"): 6}) is False

    def test_subquery_without_compiler_raises(self):
        scope = Scope([("t", "a")])
        with pytest.raises(ExecutionError):
            compile_expr(
                parse_expression("EXISTS (SELECT * FROM u)"), scope
            )


@settings(max_examples=200, deadline=None)
@given(
    a=st.one_of(st.none(), st.integers(-5, 5)),
    b=st.one_of(st.none(), st.integers(-5, 5)),
)
def test_comparison_never_lies_property(a, b):
    """Compiled comparisons agree with Python semantics on non-NULLs and
    return UNKNOWN whenever a NULL is involved."""
    result = evaluate("a < b", (a, b), (("t", "a"), ("t", "b")))
    if a is None or b is None:
        assert result is None
    else:
        assert result is (a < b)
