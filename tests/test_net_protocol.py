"""Wire-protocol codec tests: frames, JSON payloads, and the binary
row payloads that reuse the WAL v2 tagged-value codec."""

import math

import pytest

from repro.errors import ProtocolError
from repro.net import protocol as p


class TestFrames:
    def test_frame_round_trip(self):
        frame = p.encode_frame(p.T_COMMIT, 42, b"payload")
        length, ftype, request_id = p.decode_header(frame[: p.HEADER_LEN])
        assert (length, ftype, request_id) == (7, p.T_COMMIT, 42)
        assert frame[p.HEADER_LEN :] == b"payload"

    def test_empty_payload(self):
        frame = p.encode_frame(p.T_HEALTH, 1)
        assert len(frame) == p.HEADER_LEN
        assert p.decode_header(frame)[0] == 0

    def test_oversize_payload_refused_on_encode(self):
        with pytest.raises(ProtocolError):
            p.encode_frame(p.T_INSERT, 1, b"x" * (p.MAX_FRAME_PAYLOAD + 1))

    def test_oversize_announcement_refused_on_decode(self):
        header = p.HEADER.pack(p.MAX_FRAME_PAYLOAD + 1, p.T_INSERT, 1)
        with pytest.raises(ProtocolError):
            p.decode_header(header)


class TestJsonPayloads:
    def test_round_trip(self):
        payload = p.encode_json({"a": 1, "b": [1, 2], "c": "x"})
        assert p.decode_json(payload) == {"a": 1, "b": [1, 2], "c": "x"}

    def test_malformed_json_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            p.decode_json(b"{nope")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            p.decode_json(b"[1,2]")

    def test_error_payload_carries_retry_after(self):
        spec = p.decode_json(
            p.error_payload(p.E_OVERLOAD, "shed", True, 0.25)
        )
        assert spec == {
            "code": "overload",
            "message": "shed",
            "retriable": True,
            "retry_after": 0.25,
        }

    def test_error_payload_omits_absent_retry_after(self):
        spec = p.decode_json(p.error_payload(p.E_EXECUTION, "boom"))
        assert "retry_after" not in spec


class TestEventsPayload:
    def test_round_trip(self):
        rows = [(1, "a", None, 2.5, True), (-7, "", 0, -0.0, False)]
        payload = p.encode_events_payload("lineitem", rows)
        table, decoded = p.decode_events_payload(payload)
        assert table == "lineitem"
        assert decoded == rows

    def test_unicode_table_and_values(self):
        rows = [("héllo", "naïve × π",)]
        table, decoded = p.decode_events_payload(
            p.encode_events_payload("tablé", rows)
        )
        assert table == "tablé"
        assert decoded == rows

    def test_empty_rows(self):
        table, decoded = p.decode_events_payload(
            p.encode_events_payload("t", [])
        )
        assert (table, decoded) == ("t", [])

    def test_trailing_garbage_rejected(self):
        payload = p.encode_events_payload("t", [(1,)]) + b"\x00"
        with pytest.raises(ProtocolError):
            p.decode_events_payload(payload)

    def test_truncated_payload_rejected(self):
        payload = p.encode_events_payload("t", [(1, "abcdef")])
        with pytest.raises(ProtocolError):
            p.decode_events_payload(payload[:-3])


class TestRowsPayload:
    def test_round_trip(self):
        columns = ["id", "name", "score"]
        rows = [(1, "a", 0.5), (2, "b", None)]
        decoded_cols, decoded_rows = p.decode_rows_payload(
            p.encode_rows_payload(columns, rows)
        )
        assert decoded_cols == columns
        assert decoded_rows == rows

    def test_zero_columns_zero_rows(self):
        assert p.decode_rows_payload(p.encode_rows_payload([], [])) == ([], [])

    def test_many_columns_varint_boundary(self):
        columns = [f"c{i}" for i in range(200)]  # count > 0x7F
        rows = [tuple(range(200))]
        decoded_cols, decoded_rows = p.decode_rows_payload(
            p.encode_rows_payload(columns, rows)
        )
        assert decoded_cols == columns
        assert decoded_rows == rows

    def test_large_ints_and_floats_survive(self):
        rows = [(2**62, -(2**62), math.pi, 1e-300)]
        _, decoded = p.decode_rows_payload(p.encode_rows_payload(["v"] * 4, rows))
        assert decoded == rows
