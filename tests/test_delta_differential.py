"""Differential fuzzing of the delta-aware check pipeline (PR 8).

Hypothesis generates random DML churn — valid inserts, witness-removing
deletes, planted violations, catalog-drift DDL, trigger-bypassing base
writes, and recovery-style state resets — and drives it through two
engines built identically:

* the **subject**, with delta plans and aggregate memos enabled
  (``safe_commit_proc.delta_enabled = True``, the default), and
* the **oracle**, forced onto the full prepared-view path.

Every commit must produce the same verdict and the same violation set
on both; the final base-table states must be identical; and a closing
``full_check_commit`` on the subject must be clean.  A second property
replays the same churn across a *real* crash/recovery boundary (WAL
replay, derived delta/memo state rebuilt from cold).

The schema is the small orders/items pair with a triple-nested seeded
denial (``everyOrderHasMaxItem``) and a memoized COUNT aggregate
(``atMostThreeItems``) so every delta-path flavour is on the table.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, Tintin, recover

ORDERS_DDL = "CREATE TABLE orders (id INTEGER PRIMARY KEY, total DOUBLE)"
ITEMS_DDL = (
    "CREATE TABLE items (order_id INTEGER, n INTEGER, qty INTEGER, "
    "PRIMARY KEY (order_id, n), "
    "FOREIGN KEY (order_id) REFERENCES orders (id))"
)
MAX_ITEM = (
    "CREATE ASSERTION everyOrderHasMaxItem CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE NOT EXISTS ("
    "SELECT * FROM items AS i WHERE i.order_id = o.id "
    "AND NOT EXISTS (SELECT * FROM items AS j "
    "WHERE j.order_id = i.order_id AND j.qty > i.qty))))"
)
COUNT_CAP = (
    "CREATE ASSERTION atMostThreeItems CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE "
    "(SELECT COUNT(*) FROM items AS i WHERE i.order_id = o.id) > 3))"
)


def build_engine(tintin: Tintin, delta: bool) -> Tintin:
    db = tintin.db
    db.execute(ORDERS_DDL)
    db.execute(ITEMS_DDL)
    tintin.install()
    tintin.add_assertion(MAX_ITEM)
    tintin.add_assertion(COUNT_CAP)
    tintin.safe_commit_proc.delta_enabled = delta
    return tintin


def state(db: Database) -> dict:
    return {
        name: sorted(db.table(name).rows_snapshot())
        for name in ("orders", "items")
    }


# -- op strategies ----------------------------------------------------------
#
# Ops carry raw integers; the interpreter resolves them against a shadow
# model of the applied state, so every generated sequence is meaningful
# and its expected verdict is known by construction.

_pick = st.integers(0, 99)
op_strategy = st.one_of(
    st.tuples(st.just("new"), st.integers(0, 3)),  # 0 items => violation
    st.tuples(st.just("add"), _pick, st.integers(1, 9)),
    st.tuples(st.just("strip"), _pick),  # remove every item => violation
    st.tuples(st.just("drop"), _pick),  # remove order + items => clean
    st.tuples(st.just("flood"), _pick),  # push COUNT past the cap
    st.just(("ddl",)),  # catalog drift: disarm + fall back
    st.just(("bulk",)),  # trigger-bypassing base write: stamp drift
    st.just(("reset",)),  # recovery-style derived-state rebuild
)
ops_strategy = st.lists(op_strategy, min_size=1, max_size=25)

# ``bulk`` writes bypass the capture triggers, so they are invisible to
# the WAL — a crash legitimately loses them.  The recovery property
# fuzzes the durable subset only.
durable_op_strategy = st.one_of(
    st.tuples(st.just("new"), st.integers(0, 3)),
    st.tuples(st.just("add"), _pick, st.integers(1, 9)),
    st.tuples(st.just("strip"), _pick),
    st.tuples(st.just("drop"), _pick),
    st.tuples(st.just("flood"), _pick),
    st.just(("ddl",)),
    st.just(("reset",)),
)
durable_ops_strategy = st.lists(durable_op_strategy, min_size=1, max_size=25)


def run_ops(tintin: Tintin, ops, crash_dir: str | None = None,
            crash_at: int | None = None):
    """Interpret ``ops``; returns (verdicts, final state, engine).

    ``verdicts`` is one ``(committed, violated names)`` pair per
    checked commit.  With ``crash_dir``/``crash_at`` set, the engine is
    abandoned before op ``crash_at`` and rebuilt via :func:`recover` —
    the delta/memo state must come back cold and correct.
    """
    delta = tintin.safe_commit_proc.delta_enabled
    orders: dict[int, list[int]] = {}
    next_id = 1
    ddl_count = 0
    verdicts = []
    for index, op in enumerate(ops):
        if crash_at is not None and index == crash_at:
            del tintin  # simulated crash — never closed
            tintin, _report = recover(crash_dir)
            tintin.safe_commit_proc.delta_enabled = delta
            assert not any(
                c.delta_armed for c in tintin.safe_commit_proc.compiled
            ), "recovery must rebuild delta state from cold"
        db = tintin.db
        tag = op[0]
        live = sorted(k for k, items in orders.items() if items)
        expected = True
        if tag == "new":
            count = op[1]
            oid, next_id = next_id, next_id + 1
            db.execute(f"INSERT INTO orders VALUES ({oid}, {oid}.0)")
            for n in range(1, count + 1):
                db.execute(f"INSERT INTO items VALUES ({oid}, {n}, {n})")
            if count:
                orders[oid] = list(range(1, count + 1))
            else:
                expected = False
        elif tag in ("add", "strip", "drop", "flood"):
            if not live:
                continue
            oid = live[op[1] % len(live)]
            items = orders[oid]
            if tag == "add":
                db.execute(
                    f"INSERT INTO items VALUES "
                    f"({oid}, {max(items) + 1}, {op[2]})"
                )
                if len(items) >= 3:
                    expected = False
                else:
                    items.append(max(items) + 1)
            elif tag == "strip":
                for n in items:
                    db.execute(
                        f"DELETE FROM items "
                        f"WHERE order_id = {oid} AND n = {n}"
                    )
                expected = False
            elif tag == "drop":
                for n in items:
                    db.execute(
                        f"DELETE FROM items "
                        f"WHERE order_id = {oid} AND n = {n}"
                    )
                db.execute(f"DELETE FROM orders WHERE id = {oid}")
                del orders[oid]
            else:  # flood past the COUNT cap
                base = max(items) + 1
                for k in range(4 - len(items) + 1):
                    db.execute(
                        f"INSERT INTO items VALUES ({oid}, {base + k}, 2)"
                    )
                expected = False
        elif tag == "ddl":
            db.execute(f"CREATE TABLE scratch_{ddl_count} (x INTEGER)")
            ddl_count += 1
            continue  # nothing staged, nothing to check
        elif tag == "bulk":
            # invariant-preserving direct write around the triggers:
            # bumps the base data_version without a note_applied stamp
            oid, next_id = next_id, next_id + 1
            db.insert_rows("orders", [(oid, 1.0)], bypass_triggers=True)
            db.insert_rows("items", [(oid, 1, 5)], bypass_triggers=True)
            orders[oid] = [1]
            continue
        else:  # reset — what recovery does to derived state
            tintin.safe_commit_proc.reset_delta_state()
            continue
        result = tintin.safe_commit()
        names = sorted(v.assertion for v in result.violations)
        verdicts.append((result.committed, names))
        assert result.committed == expected, (
            f"op {index} {op}: expected committed={expected}, "
            f"got {result.committed} ({names})"
        )
    return verdicts, state(tintin.db), tintin


@given(ops_strategy)
@settings(max_examples=60, deadline=None)
def test_delta_pipeline_matches_full_oracle(ops):
    oracle = build_engine(Tintin(Database("oracle")), delta=False)
    subject = build_engine(Tintin(Database("subject")), delta=True)
    oracle_verdicts, oracle_state, _ = run_ops(oracle, ops)
    verdicts, final_state, subject = run_ops(subject, ops)
    assert verdicts == oracle_verdicts
    assert final_state == oracle_state
    # the delta/memo shortcuts never leave a violation behind
    assert subject.full_check_commit().committed


@given(durable_ops_strategy, st.integers(0, 24))
@settings(max_examples=15, deadline=None)
def test_delta_pipeline_survives_recovery(tmp_path_factory, ops, crash_pos):
    oracle = build_engine(Tintin(Database("oracle")), delta=False)
    oracle_verdicts, oracle_state, _ = run_ops(oracle, ops)

    path = str(tmp_path_factory.mktemp("delta") / "engine")
    subject = build_engine(Tintin.open(path, durability="commit"), delta=True)
    crash_at = crash_pos % len(ops)
    verdicts, final_state, subject = run_ops(
        subject, ops, crash_dir=path, crash_at=crash_at
    )
    assert verdicts == oracle_verdicts
    assert final_state == oracle_state
    assert subject.full_check_commit().committed
