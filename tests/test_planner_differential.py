"""Differential fuzzing: the optimizing planner vs the naive reference
executor.

Hypothesis generates random data and random queries over a two-table
schema (including NULLs, correlated [NOT] EXISTS, [NOT] IN subqueries,
IN-lists, scalar COUNT/SUM subqueries and UNIONs).  The planner — with
its index joins, probe closures and memoization — must return exactly
the same bag of rows as the brute-force evaluator.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.reference_executor import ReferenceExecutor
from repro.minidb import Database
from repro.sqlparser import nodes as n


def make_db(orders_rows, items_rows) -> Database:
    db = Database()
    db.execute("CREATE TABLE o (ok INTEGER, ck INTEGER)")
    db.execute("CREATE TABLE i (ik INTEGER NOT NULL, ok INTEGER, qty INTEGER)")
    db.insert_rows("o", orders_rows)
    db.insert_rows("i", items_rows)
    return db


def bag(rows):
    return sorted(rows, key=repr)


# -- data strategies ----------------------------------------------------------

_maybe_int = st.one_of(st.none(), st.integers(0, 5))
orders_strategy = st.lists(
    st.tuples(_maybe_int, _maybe_int), max_size=8
)
items_strategy = st.lists(
    st.tuples(st.integers(0, 9), _maybe_int, _maybe_int), max_size=10
)

# -- query strategies ------------------------------------------------------------

_o_cols = st.sampled_from(["ok", "ck"])
_i_cols = st.sampled_from(["ik", "ok", "qty"])
_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
_consts = st.integers(0, 5).map(n.Literal)


def _o_ref(col):
    return n.ColumnRef(col, "a")


def _i_ref(col):
    return n.ColumnRef(col, "b")


def _simple_conditions(refs):
    """Conditions over the given column-ref strategy."""
    return st.one_of(
        st.builds(n.Comparison, op=_ops, left=refs, right=_consts),
        st.builds(n.Comparison, op=_ops, left=refs, right=refs),
        st.builds(n.IsNull, item=refs, negated=st.booleans()),
        st.builds(
            lambda item, values, negated: n.InList(item, tuple(values), negated),
            item=refs,
            values=st.lists(_consts, min_size=1, max_size=3),
            negated=st.booleans(),
        ),
    )


def _inner_subquery(correlate: bool):
    """A subquery over i AS b, optionally correlated with outer a."""
    corr = n.Comparison("=", n.ColumnRef("ok", "b"), n.ColumnRef("ok", "a"))

    def build(conditions):
        where_parts = list(conditions)
        if correlate:
            where_parts.append(corr)
        return n.Select(
            items=(n.SelectItem(n.ColumnRef("ik", "b")),),
            from_items=(n.TableRef("i", "b"),),
            where=n.conjoin(where_parts),
        )

    return st.lists(_simple_conditions(_i_cols.map(_i_ref)), max_size=2).map(build)


def _outer_conditions():
    o_refs = _o_cols.map(_o_ref)
    exists = st.builds(
        n.Exists,
        query=_inner_subquery(correlate=True),
        negated=st.booleans(),
    )
    in_subquery = st.builds(
        n.InSubquery,
        item=o_refs,
        query=_inner_subquery(correlate=False),
        negated=st.booleans(),
    )
    count_subquery = st.builds(
        lambda q, op, const: n.Comparison(op, n.ScalarSubquery(q), const),
        q=_inner_subquery(correlate=True).map(
            lambda s: n.Select(
                items=(n.SelectItem(n.AggregateCall("COUNT", None)),),
                from_items=s.from_items,
                where=s.where,
            )
        ),
        op=_ops,
        const=st.integers(0, 3).map(n.Literal),
    )
    leaf = st.one_of(
        _simple_conditions(o_refs), exists, in_subquery, count_subquery
    )
    return st.one_of(
        leaf,
        st.builds(lambda a, b: n.And((a, b)), leaf, leaf),
        st.builds(lambda a, b: n.Or((a, b)), leaf, leaf),
        st.builds(n.Not, item=leaf),
    )


single_table_query = st.builds(
    lambda where, distinct: n.Select(
        items=(n.Star(),),
        from_items=(n.TableRef("o", "a"),),
        where=where,
        distinct=distinct,
    ),
    where=st.one_of(st.none(), _outer_conditions()),
    distinct=st.booleans(),
)

join_query = st.builds(
    lambda extra: n.Select(
        items=(n.SelectItem(n.ColumnRef("ok", "a")), n.SelectItem(n.ColumnRef("qty", "b"))),
        from_items=(n.TableRef("o", "a"), n.TableRef("i", "b")),
        where=n.conjoin(
            [n.Comparison("=", n.ColumnRef("ok", "a"), n.ColumnRef("ok", "b"))]
            + list(extra)
        ),
    ),
    extra=st.lists(_simple_conditions(_i_cols.map(_i_ref)), max_size=2),
)

union_query = st.builds(
    lambda first, second, all_: n.Union(
        (
            n.Select(
                items=(n.SelectItem(n.ColumnRef("ok", "a")),),
                from_items=(n.TableRef("o", "a"),),
                where=first,
            ),
            n.Select(
                items=(n.SelectItem(n.ColumnRef("ok", "a")),),
                from_items=(n.TableRef("o", "a"),),
                where=second,
            ),
        ),
        all=all_,
    ),
    first=st.one_of(st.none(), _simple_conditions(_o_cols.map(_o_ref))),
    second=st.one_of(st.none(), _simple_conditions(_o_cols.map(_o_ref))),
    all_=st.booleans(),
)


class TestPlannerDifferential:
    @settings(max_examples=200, deadline=None)
    @given(orders=orders_strategy, items=items_strategy, query=single_table_query)
    def test_single_table_queries(self, orders, items, query):
        db = make_db(orders, items)
        planned = db.query_ast(query).rows
        reference = ReferenceExecutor(db).rows(query)
        assert bag(planned) == bag(reference)

    @settings(max_examples=100, deadline=None)
    @given(orders=orders_strategy, items=items_strategy, query=join_query)
    def test_join_queries(self, orders, items, query):
        db = make_db(orders, items)
        planned = db.query_ast(query).rows
        reference = ReferenceExecutor(db).rows(query)
        assert bag(planned) == bag(reference)

    @settings(max_examples=100, deadline=None)
    @given(orders=orders_strategy, items=items_strategy, query=union_query)
    def test_union_queries(self, orders, items, query):
        db = make_db(orders, items)
        planned = db.query_ast(query).rows
        reference = ReferenceExecutor(db).rows(query)
        assert bag(planned) == bag(reference)

    @settings(max_examples=60, deadline=None)
    @given(orders=orders_strategy, items=items_strategy)
    def test_aggregate_queries(self, orders, items):
        db = make_db(orders, items)
        query = n.Select(
            items=(
                n.SelectItem(n.AggregateCall("COUNT", None)),
                n.SelectItem(n.AggregateCall("SUM", n.ColumnRef("qty", "b"))),
                n.SelectItem(n.AggregateCall("MIN", n.ColumnRef("qty", "b"))),
                n.SelectItem(n.AggregateCall("MAX", n.ColumnRef("qty", "b"))),
            ),
            from_items=(n.TableRef("i", "b"),),
            where=None,
        )
        planned = db.query_ast(query).rows
        reference = ReferenceExecutor(db).rows(query)
        assert planned == reference

    @settings(max_examples=60, deadline=None)
    @given(orders=orders_strategy, items=items_strategy, query=single_table_query)
    def test_repeated_cached_execution(self, orders, items, query):
        """A plan executed twice (cache path) must equal a fresh plan —
        per-execution probe memos must not leak between runs."""
        db = make_db(orders, items)
        prepared = db.prepare_query(query)
        first = prepared.execute().rows
        second = prepared.execute().rows
        reference = ReferenceExecutor(db).rows(query)
        assert bag(first) == bag(reference)
        assert bag(second) == bag(reference)


class TestPlanCacheDifferential:
    """Cache-on vs cache-off must be observably identical while DML,
    DDL (table/view create + drop) and index-building queries
    interleave — this is the invalidation-soundness proof."""

    #: (kind, payload) steps; every "query" step is compared across the
    #: cached and uncached databases.
    SCRIPT = [
        ("sql", "CREATE TABLE o (ok INTEGER, ck INTEGER)"),
        ("sql", "CREATE TABLE i (ik INTEGER NOT NULL, ok INTEGER, qty INTEGER)"),
        ("rows", ("o", [(1, 10), (2, 20), (3, None)])),
        ("rows", ("i", [(1, 1, 5), (2, 2, 7), (3, 2, None)])),
        ("query", "SELECT * FROM o"),
        ("query", "SELECT a.ok, b.qty FROM o AS a, i AS b WHERE a.ok = b.ok"),
        ("query", "SELECT ok FROM o AS a WHERE EXISTS "
                  "(SELECT * FROM i AS b WHERE b.ok = a.ok)"),
        # DML between repeats of the same text: hits must see new data
        ("sql", "INSERT INTO o VALUES (4, 40)"),
        ("rows", ("i", [(4, 4, 11)])),
        ("query", "SELECT * FROM o"),
        ("query", "SELECT a.ok, b.qty FROM o AS a, i AS b WHERE a.ok = b.ok"),
        # view DDL: create, query through it, redefine, query again
        ("sql", "CREATE VIEW busy AS SELECT ok FROM i WHERE qty > 6"),
        ("query", "SELECT * FROM busy"),
        ("sql", "DROP VIEW busy"),
        ("sql", "CREATE VIEW busy AS SELECT ok FROM i WHERE qty > 10"),
        ("query", "SELECT * FROM busy"),
        # table drop + recreate under the same name with a new shape
        ("sql", "DROP TABLE o"),
        ("sql", "CREATE TABLE o (ok INTEGER, ck INTEGER, extra INTEGER)"),
        ("rows", ("o", [(7, 70, 700), (8, 80, 800)])),
        ("query", "SELECT * FROM o"),
        ("query", "SELECT ok FROM o AS a WHERE NOT EXISTS "
                  "(SELECT * FROM i AS b WHERE b.ok = a.ok)"),
        ("sql", "DELETE FROM i WHERE qty > 6"),
        ("query", "SELECT * FROM busy"),
        ("query", "SELECT COUNT(*), SUM(qty), MIN(qty), MAX(qty) FROM i"),
    ]

    def _run(self, cache_enabled: bool) -> list:
        db = Database()
        db.plan_cache_enabled = cache_enabled
        outputs = []
        for kind, payload in self.SCRIPT:
            if kind == "sql":
                db.execute(payload)
            elif kind == "rows":
                table, rows = payload
                db.insert_rows(table, rows)
            else:
                # run every query twice so the cached database takes the
                # hit path on the second execution
                first = bag(db.query(payload).rows)
                second = bag(db.query(payload).rows)
                assert first == second, payload
                outputs.append((payload, first))
        return outputs

    def test_interleaved_dml_ddl_identical(self):
        cached = self._run(True)
        fresh = self._run(False)
        assert cached == fresh

    def test_growth_driven_replan_identical(self):
        """Row-count drift re-plans (IndexJoin vs HashJoin flip) without
        changing results."""
        dbs = []
        for cache_enabled in (True, False):
            db = Database()
            db.plan_cache_enabled = cache_enabled
            db.execute("CREATE TABLE o (ok INTEGER, ck INTEGER)")
            db.execute(
                "CREATE TABLE i (ik INTEGER NOT NULL, ok INTEGER, qty INTEGER)"
            )
            db.insert_rows("o", [(k, k) for k in range(5)])
            db.insert_rows("i", [(k, k % 5, k) for k in range(10)])
            dbs.append(db)
        sql = "SELECT a.ok, b.qty FROM o AS a, i AS b WHERE a.ok = b.ok"
        results = [bag(db.query(sql).rows) for db in dbs]
        assert results[0] == results[1]
        # grow i by 100x so the cached plan is invalidated by drift
        for db in dbs:
            db.insert_rows("i", [(1000 + k, k % 5, 1) for k in range(1000)])
        results = [bag(db.query(sql).rows) for db in dbs]
        assert results[0] == results[1]
        assert dbs[0].plan_cache_stats.invalidations >= 1
