"""Differential fuzzing: the optimizing planner vs the naive reference
executor.

Hypothesis generates random data and random queries over a two-table
schema (including NULLs, correlated [NOT] EXISTS, [NOT] IN subqueries,
IN-lists, scalar COUNT/SUM subqueries and UNIONs).  The planner — with
its index joins, probe closures and memoization — must return exactly
the same bag of rows as the brute-force evaluator.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.reference_executor import ReferenceExecutor
from repro.minidb import Database
from repro.sqlparser import nodes as n


def make_db(orders_rows, items_rows) -> Database:
    db = Database()
    db.execute("CREATE TABLE o (ok INTEGER, ck INTEGER)")
    db.execute("CREATE TABLE i (ik INTEGER NOT NULL, ok INTEGER, qty INTEGER)")
    db.insert_rows("o", orders_rows)
    db.insert_rows("i", items_rows)
    return db


def bag(rows):
    return sorted(rows, key=repr)


# -- data strategies ----------------------------------------------------------

_maybe_int = st.one_of(st.none(), st.integers(0, 5))
orders_strategy = st.lists(
    st.tuples(_maybe_int, _maybe_int), max_size=8
)
items_strategy = st.lists(
    st.tuples(st.integers(0, 9), _maybe_int, _maybe_int), max_size=10
)

# -- query strategies ------------------------------------------------------------

_o_cols = st.sampled_from(["ok", "ck"])
_i_cols = st.sampled_from(["ik", "ok", "qty"])
_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
_consts = st.integers(0, 5).map(n.Literal)


def _o_ref(col):
    return n.ColumnRef(col, "a")


def _i_ref(col):
    return n.ColumnRef(col, "b")


def _simple_conditions(refs):
    """Conditions over the given column-ref strategy."""
    return st.one_of(
        st.builds(n.Comparison, op=_ops, left=refs, right=_consts),
        st.builds(n.Comparison, op=_ops, left=refs, right=refs),
        st.builds(n.IsNull, item=refs, negated=st.booleans()),
        st.builds(
            lambda item, values, negated: n.InList(item, tuple(values), negated),
            item=refs,
            values=st.lists(_consts, min_size=1, max_size=3),
            negated=st.booleans(),
        ),
    )


def _inner_subquery(correlate: bool):
    """A subquery over i AS b, optionally correlated with outer a."""
    corr = n.Comparison("=", n.ColumnRef("ok", "b"), n.ColumnRef("ok", "a"))

    def build(conditions):
        where_parts = list(conditions)
        if correlate:
            where_parts.append(corr)
        return n.Select(
            items=(n.SelectItem(n.ColumnRef("ik", "b")),),
            from_items=(n.TableRef("i", "b"),),
            where=n.conjoin(where_parts),
        )

    return st.lists(_simple_conditions(_i_cols.map(_i_ref)), max_size=2).map(build)


def _outer_conditions():
    o_refs = _o_cols.map(_o_ref)
    exists = st.builds(
        n.Exists,
        query=_inner_subquery(correlate=True),
        negated=st.booleans(),
    )
    in_subquery = st.builds(
        n.InSubquery,
        item=o_refs,
        query=_inner_subquery(correlate=False),
        negated=st.booleans(),
    )
    count_subquery = st.builds(
        lambda q, op, const: n.Comparison(op, n.ScalarSubquery(q), const),
        q=_inner_subquery(correlate=True).map(
            lambda s: n.Select(
                items=(n.SelectItem(n.AggregateCall("COUNT", None)),),
                from_items=s.from_items,
                where=s.where,
            )
        ),
        op=_ops,
        const=st.integers(0, 3).map(n.Literal),
    )
    leaf = st.one_of(
        _simple_conditions(o_refs), exists, in_subquery, count_subquery
    )
    return st.one_of(
        leaf,
        st.builds(lambda a, b: n.And((a, b)), leaf, leaf),
        st.builds(lambda a, b: n.Or((a, b)), leaf, leaf),
        st.builds(n.Not, item=leaf),
    )


single_table_query = st.builds(
    lambda where, distinct: n.Select(
        items=(n.Star(),),
        from_items=(n.TableRef("o", "a"),),
        where=where,
        distinct=distinct,
    ),
    where=st.one_of(st.none(), _outer_conditions()),
    distinct=st.booleans(),
)

join_query = st.builds(
    lambda extra: n.Select(
        items=(n.SelectItem(n.ColumnRef("ok", "a")), n.SelectItem(n.ColumnRef("qty", "b"))),
        from_items=(n.TableRef("o", "a"), n.TableRef("i", "b")),
        where=n.conjoin(
            [n.Comparison("=", n.ColumnRef("ok", "a"), n.ColumnRef("ok", "b"))]
            + list(extra)
        ),
    ),
    extra=st.lists(_simple_conditions(_i_cols.map(_i_ref)), max_size=2),
)

union_query = st.builds(
    lambda first, second, all_: n.Union(
        (
            n.Select(
                items=(n.SelectItem(n.ColumnRef("ok", "a")),),
                from_items=(n.TableRef("o", "a"),),
                where=first,
            ),
            n.Select(
                items=(n.SelectItem(n.ColumnRef("ok", "a")),),
                from_items=(n.TableRef("o", "a"),),
                where=second,
            ),
        ),
        all=all_,
    ),
    first=st.one_of(st.none(), _simple_conditions(_o_cols.map(_o_ref))),
    second=st.one_of(st.none(), _simple_conditions(_o_cols.map(_o_ref))),
    all_=st.booleans(),
)


class TestPlannerDifferential:
    @settings(max_examples=200, deadline=None)
    @given(orders=orders_strategy, items=items_strategy, query=single_table_query)
    def test_single_table_queries(self, orders, items, query):
        db = make_db(orders, items)
        planned = db.query_ast(query).rows
        reference = ReferenceExecutor(db).rows(query)
        assert bag(planned) == bag(reference)

    @settings(max_examples=100, deadline=None)
    @given(orders=orders_strategy, items=items_strategy, query=join_query)
    def test_join_queries(self, orders, items, query):
        db = make_db(orders, items)
        planned = db.query_ast(query).rows
        reference = ReferenceExecutor(db).rows(query)
        assert bag(planned) == bag(reference)

    @settings(max_examples=100, deadline=None)
    @given(orders=orders_strategy, items=items_strategy, query=union_query)
    def test_union_queries(self, orders, items, query):
        db = make_db(orders, items)
        planned = db.query_ast(query).rows
        reference = ReferenceExecutor(db).rows(query)
        assert bag(planned) == bag(reference)

    @settings(max_examples=60, deadline=None)
    @given(orders=orders_strategy, items=items_strategy)
    def test_aggregate_queries(self, orders, items):
        db = make_db(orders, items)
        query = n.Select(
            items=(
                n.SelectItem(n.AggregateCall("COUNT", None)),
                n.SelectItem(n.AggregateCall("SUM", n.ColumnRef("qty", "b"))),
                n.SelectItem(n.AggregateCall("MIN", n.ColumnRef("qty", "b"))),
                n.SelectItem(n.AggregateCall("MAX", n.ColumnRef("qty", "b"))),
            ),
            from_items=(n.TableRef("i", "b"),),
            where=None,
        )
        planned = db.query_ast(query).rows
        reference = ReferenceExecutor(db).rows(query)
        assert planned == reference
