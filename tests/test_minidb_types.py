"""Unit tests for SQL types and coercion."""

import pytest

from repro.errors import SchemaError, TypeCheckError
from repro.minidb.types import (
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    SQLType,
    coerce,
    comparable,
    resolve_type,
)


class TestResolveType:
    @pytest.mark.parametrize(
        "name,kind",
        [
            ("INT", "INTEGER"),
            ("integer", "INTEGER"),
            ("BIGINT", "INTEGER"),
            ("REAL", "DOUBLE"),
            ("FLOAT", "DOUBLE"),
            ("double", "DOUBLE"),
            ("TEXT", "VARCHAR"),
            ("STRING", "VARCHAR"),
            ("BOOL", "BOOLEAN"),
            ("DATE", "DATE"),
        ],
    )
    def test_aliases(self, name, kind):
        assert resolve_type(name).kind == kind

    def test_varchar_with_length(self):
        t = resolve_type("VARCHAR", (25,))
        assert t == SQLType("VARCHAR", 25)
        assert str(t) == "VARCHAR(25)"

    def test_char_maps_to_varchar(self):
        assert resolve_type("CHAR", (10,)).kind == "VARCHAR"

    def test_decimal_params_ignored(self):
        assert resolve_type("DECIMAL", (15, 2)) == DOUBLE

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            resolve_type("BLOB")

    def test_bad_varchar_params(self):
        with pytest.raises(SchemaError):
            resolve_type("VARCHAR", (0,))
        with pytest.raises(SchemaError):
            resolve_type("VARCHAR", (1, 2))

    def test_params_on_scalar_type_rejected(self):
        with pytest.raises(SchemaError):
            resolve_type("INTEGER", (4,))


class TestCoerce:
    def test_null_passes_all_types(self):
        for t in (INTEGER, DOUBLE, BOOLEAN, DATE, SQLType("VARCHAR", 3)):
            assert coerce(None, t) is None

    def test_integer(self):
        assert coerce(42, INTEGER) == 42

    def test_integral_float_to_integer(self):
        assert coerce(42.0, INTEGER) == 42

    def test_fractional_float_rejected_for_integer(self):
        with pytest.raises(TypeCheckError):
            coerce(1.5, INTEGER)

    def test_bool_is_not_integer(self):
        with pytest.raises(TypeCheckError):
            coerce(True, INTEGER)

    def test_string_not_integer(self):
        with pytest.raises(TypeCheckError):
            coerce("1", INTEGER)

    def test_double_from_int(self):
        value = coerce(3, DOUBLE)
        assert value == 3.0 and isinstance(value, float)

    def test_bool_is_not_double(self):
        with pytest.raises(TypeCheckError):
            coerce(False, DOUBLE)

    def test_varchar(self):
        assert coerce("abc", SQLType("VARCHAR", 3)) == "abc"

    def test_varchar_too_long(self):
        with pytest.raises(TypeCheckError):
            coerce("abcd", SQLType("VARCHAR", 3))

    def test_varchar_unbounded(self):
        assert coerce("x" * 1000, SQLType("VARCHAR")) == "x" * 1000

    def test_varchar_rejects_number(self):
        with pytest.raises(TypeCheckError):
            coerce(5, SQLType("VARCHAR"))

    def test_boolean(self):
        assert coerce(True, BOOLEAN) is True

    def test_boolean_rejects_int(self):
        with pytest.raises(TypeCheckError):
            coerce(1, BOOLEAN)

    def test_date_valid(self):
        assert coerce("2016-03-15", DATE) == "2016-03-15"

    @pytest.mark.parametrize(
        "bad", ["2016-3-15", "20160315", "2016-13-01", "2016-00-10", "x", "2016-01-32"]
    )
    def test_date_invalid(self, bad):
        with pytest.raises(TypeCheckError):
            coerce(bad, DATE)

    def test_error_message_names_column(self):
        with pytest.raises(TypeCheckError, match="orders.o_orderkey"):
            coerce("x", INTEGER, "orders.o_orderkey")


class TestComparable:
    def test_numbers(self):
        assert comparable(1, 2.5)

    def test_strings(self):
        assert comparable("a", "b")

    def test_booleans(self):
        assert comparable(True, False)

    def test_bool_vs_int_not_comparable(self):
        assert not comparable(True, 1)

    def test_string_vs_number_not_comparable(self):
        assert not comparable("1", 1)
