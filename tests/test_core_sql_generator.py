"""Tests for EDC -> SQL view generation."""

import pytest

from repro.core import Assertion, DenialCompiler, EDCGenerator, SQLGenerator
from repro.core.edc import EDC, EventGuard
from repro.errors import CompilationError
from repro.logic import Atom, Builtin, Constant, Predicate, Variable
from repro.logic.literals import DEL, INS
from repro.minidb import Database
from repro.sqlparser import parse_query, print_query

O = Variable("o")
C = Variable("c")


@pytest.fixture
def db():
    database = Database("tpc")
    database.execute(
        "CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, o_custkey INTEGER)"
    )
    database.execute(
        "CREATE TABLE lineitem (l_orderkey INTEGER NOT NULL, "
        "l_linenumber INTEGER NOT NULL, l_quantity INTEGER, "
        "PRIMARY KEY (l_orderkey, l_linenumber))"
    )
    # event tables (normally created by EventTableManager)
    for base in ("orders", "lineitem"):
        for prefix in ("ins", "del"):
            columns = database.table(base).schema
            ddl_cols = ", ".join(
                f"{c.name} {c.sql_type}" for c in columns.columns
            )
            database.execute(f"CREATE TABLE {prefix}_{base} ({ddl_cols})")
    return database


def views_for(db, sql):
    assertion = Assertion.parse(sql)
    denials = DenialCompiler(db.catalog).compile(assertion)
    generator = EDCGenerator()
    sql_gen = SQLGenerator(db.catalog)
    texts = []
    for denial in denials:
        edcs, _ = generator.generate(denial)
        for edc in edcs:
            texts.append(print_query(sql_gen.edc_query(edc)))
    return texts


class TestGeneratedSQL:
    def test_paper_view_text(self, db):
        """The insertion EDC of the running example must produce the
        paper's exact query shape (§2's atLeastOneLineItem1 view)."""
        texts = views_for(
            db,
            "CREATE ASSERTION a CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o WHERE NOT EXISTS ("
            "SELECT * FROM lineitem AS l "
            "WHERE l.l_orderkey = o.o_orderkey)))",
        )
        # without the optimizer, both EDC4 and EDC5 reference ins_orders;
        # EDC4 is the one whose FROM is ins_orders alone
        ins_views = [
            t for t in texts if t.startswith("SELECT * FROM ins_orders AS T0 WHERE")
        ]
        assert len(ins_views) == 1
        text = ins_views[0]
        assert "NOT EXISTS (SELECT * FROM lineitem AS" in text
        assert "NOT EXISTS (SELECT * FROM ins_lineitem AS" in text
        # correlation is on the order key only
        assert text.count("l_orderkey = T0.o_orderkey") == 2

    def test_generated_sql_parses_back(self, db):
        texts = views_for(
            db,
            "CREATE ASSERTION a CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o, lineitem AS l "
            "WHERE o.o_orderkey = l.l_orderkey AND l.l_quantity > 5))",
        )
        for text in texts:
            parse_query(text)  # must be valid standard SQL

    def test_event_tables_come_first_in_from(self, db):
        texts = views_for(
            db,
            "CREATE ASSERTION a CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o, lineitem AS l "
            "WHERE o.o_orderkey = l.l_orderkey))",
        )
        for text in texts:
            first_table = text.split("FROM ")[1].split(" ")[0]
            assert first_table.startswith(("ins_", "del_")), text

    def test_constants_become_where_conditions(self, db):
        texts = views_for(
            db,
            "CREATE ASSERTION a CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o WHERE o.o_custkey = 7))",
        )
        assert any("o_custkey = 7" in t for t in texts)

    def test_builtin_comparisons_rendered(self, db):
        texts = views_for(
            db,
            "CREATE ASSERTION a CHECK (NOT EXISTS ("
            "SELECT * FROM lineitem AS l WHERE l.l_quantity > 100))",
        )
        assert any("l_quantity > 100" in t for t in texts)

    def test_aux_expansion_is_per_rule(self, db):
        texts = views_for(
            db,
            "CREATE ASSERTION a CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o WHERE NOT EXISTS ("
            "SELECT * FROM lineitem AS l "
            "WHERE l.l_orderkey = o.o_orderkey)))",
        )
        # the deletion EDCs render ¬aux as two NOT EXISTS (one per rule:
        # ins-branch, survive-branch with nested ¬del)
        deletion_views = [t for t in texts if "del_lineitem" in t]
        assert deletion_views
        for text in deletion_views:
            assert "ins_lineitem" in text
            assert text.count("NOT EXISTS") >= 2

    def test_guard_renders_as_exists_disjunction(self, db):
        guard = EventGuard(
            (Predicate("lineitem", INS), Predicate("lineitem", DEL))
        )
        ins = Atom(Predicate("orders", INS), (O, C))
        edc = EDC("g1", "g", (ins, guard))
        text = print_query(SQLGenerator(db.catalog).edc_query(edc))
        assert "EXISTS (SELECT * FROM ins_lineitem" in text
        assert "EXISTS (SELECT * FROM del_lineitem" in text
        assert " OR " in text

    def test_missing_positive_literal_rejected(self, db):
        edc = EDC("x1", "x", (Builtin("<", Constant(1), Constant(2)),))
        with pytest.raises(CompilationError, match="positive"):
            SQLGenerator(db.catalog).edc_query(edc)

    def test_unbound_builtin_variable_rejected(self, db):
        ins = Atom(Predicate("orders", INS), (O, C))
        loose = Builtin("<", Variable("zz"), Constant(2))
        edc = EDC("x1", "x", (ins, loose))
        with pytest.raises(CompilationError, match="not bound"):
            SQLGenerator(db.catalog).edc_query(edc)

    def test_arity_mismatch_rejected(self, db):
        bad = Atom(Predicate("orders", INS), (O,))  # orders has 2 columns
        edc = EDC("x1", "x", (bad,))
        with pytest.raises(CompilationError, match="arity"):
            SQLGenerator(db.catalog).edc_query(edc)

    def test_unknown_aux_rejected(self, db):
        ins = Atom(Predicate("orders", INS), (O, C))
        ghost = Atom(Predicate("ghost_aux", "derived"), (O,), negated=True)
        edc = EDC("x1", "x", (ins, ghost), aux=())
        with pytest.raises(CompilationError, match="unknown aux"):
            SQLGenerator(db.catalog).edc_query(edc)

    def test_aliases_are_unique_within_view(self, db):
        texts = views_for(
            db,
            "CREATE ASSERTION a CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o WHERE NOT EXISTS ("
            "SELECT * FROM lineitem AS l "
            "WHERE l.l_orderkey = o.o_orderkey)))",
        )
        for text in texts:
            aliases = [
                word for word in text.replace("(", " ").split() if word.startswith("T")
                and word[1:].isdigit()
            ]
            # every alias introduction "AS Tn" is unique
            introduced = [
                aliases[i] for i, word in enumerate(aliases)
            ]
            tokens = text.split()
            declared = [
                tokens[i + 1]
                for i, tok in enumerate(tokens)
                if tok == "AS" and i + 1 < len(tokens)
            ]
            assert len(declared) == len(set(declared)), text


class TestAuxViews:
    def test_materializable_aux_becomes_union_view(self, db):
        assertion = Assertion.parse(
            "CREATE ASSERTION a CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o WHERE NOT EXISTS ("
            "SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey)))"
        )
        denials = DenialCompiler(db.catalog).compile(assertion)
        generator = EDCGenerator()
        sql_gen = SQLGenerator(db.catalog)
        _, aux = generator.generate(denials[0])
        view = sql_gen.aux_view(aux[0])
        assert view is not None
        text = print_query(view.query)
        assert "UNION" in text
        assert "ins_lineitem" in text
        parse_query(text)

    def test_parameterized_only_aux_returns_none(self, db):
        # head param bound only through a built-in comparison
        from repro.logic import DerivedPredicate, Rule
        from repro.logic.literals import DERIVED

        q = Variable("q")
        aux_pred = Predicate("aux_p", DERIVED)
        rule = Rule(
            Atom(aux_pred, (q,)),
            (
                Atom(Predicate("lineitem", INS), (O, C, Variable("qq"))),
                Builtin(">", Variable("qq"), q),
            ),
            parameterized=True,
        )
        aux = DerivedPredicate(aux_pred, (rule,))
        assert SQLGenerator(db.catalog).aux_view(aux) is None
