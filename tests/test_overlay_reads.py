"""The overlay-merge snapshot read path.

Session reads with staged events must (a) return exactly what the
splice oracle returns (base − staged deletes + staged inserts, through
every operator and probe shape), (b) never touch base storage —
``data_version`` stamps, row counts and plan-cache statistics are
unperturbed by pure reads — and (c) run under the *shared* lock, so
readers with staged events are truly concurrent.
"""

import threading

import pytest

from repro import Database, Tintin
from repro.errors import ConstraintViolation
from repro.minidb.storage import TableOverlay

ASSERTION = (
    "CREATE ASSERTION atLeastOneItem CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE NOT EXISTS ("
    "SELECT * FROM items AS i WHERE i.order_id = o.id)))"
)


def build_tintin(*assertions, extra_ddl=()) -> Tintin:
    db = Database("overlay-test")
    db.execute("CREATE TABLE orders (id INTEGER PRIMARY KEY)")
    db.execute(
        "CREATE TABLE items (order_id INTEGER, n INTEGER, "
        "PRIMARY KEY (order_id, n), "
        "FOREIGN KEY (order_id) REFERENCES orders (id))"
    )
    for sql in extra_ddl:
        db.execute(sql)
    tintin = Tintin(db)
    tintin.install()
    for sql in assertions or (ASSERTION,):
        tintin.add_assertion(sql)
    return tintin


def commit_order(tintin: Tintin, key: int, items: int = 1):
    session = tintin.create_session()
    session.insert("orders", [(key,)])
    session.insert("items", [(key, n) for n in range(1, items + 1)])
    result = session.commit()
    assert result.committed, result
    session.expire()


class TestTableOverlay:
    def test_scan_masks_deletes_and_appends_inserts(self):
        db = Database("t")
        table = db.create_table("CREATE TABLE t (x INTEGER)")
        for value in (1, 2, 2, 3):
            table.insert((value,))
        overlay = TableOverlay(inserts=[(9,)], deletes=[(2,)])
        assert sorted(overlay.scan(table)) == [(1,), (2,), (3,), (9,)]

    def test_multiset_masking_hides_one_copy_per_delete(self):
        db = Database("t")
        table = db.create_table("CREATE TABLE t (x INTEGER)")
        for value in (5, 5, 5):
            table.insert((value,))
        one = TableOverlay(deletes=[(5,)])
        assert list(one.scan(table)) == [(5,), (5,)]
        two = TableOverlay(deletes=[(5,), (5,)])
        assert list(two.scan(table)) == [(5,)]

    def test_lookup_merges_index_hits_with_overlay(self):
        db = Database("t")
        table = db.create_table("CREATE TABLE t (k INTEGER, v INTEGER)")
        for row in ((1, 10), (1, 11), (2, 20)):
            table.insert(row)
        overlay = TableOverlay(inserts=[(1, 12), (3, 30)], deletes=[(1, 10)])
        hits = sorted(overlay.lookup(table, ("k",), (1,)))
        assert hits == [(1, 11), (1, 12)]
        assert list(overlay.lookup(table, ("k",), (3,))) == [(3, 30)]
        assert sorted(overlay.lookup(table, ("k",), (2,))) == [(2, 20)]

    def test_contains_respects_masking(self):
        db = Database("t")
        table = db.create_table("CREATE TABLE t (x INTEGER)")
        table.insert((1,))
        table.insert((1,))
        assert TableOverlay(deletes=[(1,)]).contains(table, (1,))
        assert not TableOverlay(deletes=[(1,), (1,)]).contains(table, (1,))
        assert TableOverlay(inserts=[(7,)]).contains(table, (7,))


class TestOverlayVsSpliceDifferential:
    """The overlay-merge executor and the splice oracle must agree on
    every query shape the planner can produce."""

    QUERIES = (
        "SELECT * FROM orders",
        "SELECT * FROM items WHERE items.order_id = 1",
        # IndexJoin / HashJoin over a table with staged events
        "SELECT o.id, i.n FROM orders AS o, items AS i "
        "WHERE i.order_id = o.id",
        # correlated NOT EXISTS probe (the EDC shape)
        "SELECT * FROM orders AS o WHERE NOT EXISTS ("
        "SELECT * FROM items AS i WHERE i.order_id = o.id)",
        # IN probe against a staged table
        "SELECT * FROM orders AS o WHERE o.id IN ("
        "SELECT i.order_id FROM items AS i)",
        # scalar aggregate subquery probing a staged table
        "SELECT * FROM orders AS o WHERE ("
        "SELECT COUNT(*) FROM items AS i WHERE i.order_id = o.id) > 1",
        # ungrouped aggregates over staged tables
        "SELECT COUNT(*) FROM items",
        "SELECT COUNT(*), MAX(i.n) FROM items AS i",
    )

    def _staged_session(self):
        tintin = build_tintin()
        for key in (1, 2, 3):
            commit_order(tintin, key, items=2)
        session = tintin.create_session()
        session.insert("orders", [(10,)])
        session.insert("items", [(10, 1), (10, 2), (1, 9)])
        session.delete("items", [(2, 1), (2, 2)])
        session.delete("orders", [(3,)])
        return session

    @pytest.mark.parametrize("sql", QUERIES)
    def test_overlay_equals_splice(self, sql):
        session = self._staged_session()
        overlay = session.query(sql)
        spliced = session.query_spliced(sql)
        assert sorted(overlay.rows) == sorted(spliced.rows)

    def test_plain_read_unchanged_without_staged_events(self):
        tintin = build_tintin()
        commit_order(tintin, 1)
        session = tintin.create_session()
        assert sorted(session.query("SELECT * FROM orders").rows) == [(1,)]

    def test_conflicting_committed_key_shadows_staged_insert(self):
        """If another session commits the same unique key after this
        session staged an insert, the snapshot shows the committed row
        — never two rows under one primary key — exactly like the
        splice baseline, where the physical insert fails."""
        tintin = build_tintin()
        commit_order(tintin, 1)
        session = tintin.create_session()
        session.insert("orders", [(2,)])
        session.insert("items", [(2, 1)])
        commit_order(tintin, 2)  # the key lands in base after staging
        overlay = sorted(session.query("SELECT * FROM orders").rows)
        spliced = sorted(session.query_spliced("SELECT * FROM orders").rows)
        assert overlay == spliced == [(1,), (2,)]

    def test_colliding_staged_inserts_are_first_wins(self):
        """Staging tables are constraint-free, so two different tuples
        can be staged under one primary key; physically the second
        insert would fail on the duplicate key, so the overlay keeps
        the first and drops the later collision — never two rows under
        one key, and always in agreement with the splice oracle."""
        tintin = build_tintin(
            ASSERTION,
            extra_ddl=(
                "CREATE TABLE prices (id INTEGER PRIMARY KEY, p INTEGER)",
            ),
        )
        session = tintin.create_session()
        session.insert("prices", [(5, 10)])
        session.insert("prices", [(5, 11)])
        overlay = session.query("SELECT * FROM prices").rows
        spliced = session.query_spliced("SELECT * FROM prices").rows
        assert overlay == spliced == [(5, 10)]
        assert session.rows("prices") == [(5, 10)]

    def test_staged_update_of_committed_row(self):
        """delete-old + insert-new over the same primary key (a staged
        UPDATE): the staged delete unmasks the key, so the new version
        is visible and the old one is not."""
        tintin = build_tintin(
            ASSERTION,
            extra_ddl=(
                "CREATE TABLE prices (id INTEGER PRIMARY KEY, p INTEGER)",
            ),
        )
        boot = tintin.create_session()
        boot.insert("prices", [(1, 10)])
        assert boot.commit().committed
        session = tintin.create_session()
        session.execute("UPDATE prices SET p = 20 WHERE id = 1")
        assert session.query("SELECT * FROM prices").rows == [(1, 20)]
        assert session.query_spliced("SELECT * FROM prices").rows == [(1, 20)]

    def test_rows_matches_query_star(self):
        session = self._staged_session()
        for table in ("orders", "items"):
            assert sorted(session.rows(table)) == sorted(
                session.query(f"SELECT * FROM {table}").rows
            )


class TestReadsLeaveNoTrace:
    """Satellite regression: spliced reads used to bump
    ``Table.data_version`` and row counts, spuriously invalidating
    prepared plans through the drift check.  Overlay reads must leave
    every stamp and every plan-cache counter (except hits) alone."""

    def test_data_version_and_plan_cache_unperturbed(self):
        tintin = build_tintin()
        db = tintin.db
        for key in (1, 2):
            commit_order(tintin, key)
        session = tintin.create_session()
        session.insert("orders", [(5,)])
        session.insert("items", [(5, 1)])
        session.delete("items", [(1, 1)])

        # warm the cache so the loop below is pure hits
        session.query("SELECT * FROM orders")
        session.rows("orders")
        stamp = db.data_version()
        stats = db.plan_cache_stats
        misses, invalidations = stats.misses, stats.invalidations
        hits_before = stats.hits

        for _ in range(10):
            session.query("SELECT * FROM orders")
            session.query(
                "SELECT o.id, i.n FROM orders AS o, items AS i "
                "WHERE i.order_id = o.id"
            )
            session.rows("items")

        assert db.data_version() == stamp
        assert stats.invalidations == invalidations
        assert stats.misses == misses + 1  # only the join text was new
        assert stats.hits > hits_before  # reads reuse cached plans

    def test_base_rows_identical_after_read(self):
        tintin = build_tintin()
        commit_order(tintin, 1)
        before = sorted(tintin.db.table("orders").rows_snapshot())
        session = tintin.create_session()
        session.insert("orders", [(2,)])
        session.delete("orders", [(1,)])
        session.query("SELECT * FROM orders")
        assert sorted(tintin.db.table("orders").rows_snapshot()) == before


class TestMultisetRows:
    """Satellite regression: ``Session.rows`` used a set for staged
    deletes, so one staged delete of a duplicated row hid every copy."""

    def _tintin_with_duplicates(self):
        tintin = build_tintin(
            ASSERTION,
            extra_ddl=("CREATE TABLE log (msg VARCHAR(10))",),
        )
        # keyless table: duplicates are legal; create them physically
        # (set-semantic staging would refuse to stage a duplicate)
        log = tintin.db.table("log")
        for _ in range(3):
            log.insert(("dup",))
        return tintin

    def test_one_staged_delete_hides_one_copy(self):
        tintin = self._tintin_with_duplicates()
        session = tintin.create_session()
        session.delete("log", [("dup",)])
        assert session.rows("log") == [("dup",), ("dup",)]
        assert len(session.query("SELECT * FROM log")) == 2

    def test_overlay_and_splice_agree_on_duplicates(self):
        tintin = self._tintin_with_duplicates()
        session = tintin.create_session()
        session.delete("log", [("dup",)])
        overlay = session.query("SELECT * FROM log").rows
        spliced = session.query_spliced("SELECT * FROM log").rows
        assert sorted(overlay) == sorted(spliced)


class TestSpliceErrorNarrowing:
    """Satellite regression: ``_splice_in`` swallowed *all* insert
    exceptions; only duplicate-key conflicts (a concurrent commit beat
    the staged row) are legitimate to ignore."""

    def test_duplicate_key_is_tolerated(self):
        tintin = build_tintin()
        commit_order(tintin, 1)
        session = tintin.create_session()
        session.insert("orders", [(2,)])
        session.insert("items", [(2, 1)])
        # another session commits the same order key after staging
        commit_order(tintin, 2)
        result = session.query_spliced("SELECT * FROM orders")
        assert sorted(result.rows) == [(1,), (2,)]

    def test_real_errors_propagate(self, monkeypatch):
        tintin = build_tintin()
        session = tintin.create_session()
        session.insert("orders", [(1,)])
        session.insert("items", [(1, 1)])

        from repro.minidb.storage import Table

        def broken_insert(self, row):
            raise RuntimeError("index corruption")

        monkeypatch.setattr(Table, "insert", broken_insert)
        with pytest.raises(RuntimeError):
            session.query_spliced("SELECT * FROM orders")


class TestReaderConcurrency:
    """Readers with staged events must share the read lock: no reader
    ever takes the exclusive side, and N readers hold the shared side
    simultaneously."""

    def test_overlay_reads_never_take_the_write_lock(self):
        tintin = build_tintin()
        commit_order(tintin, 1)
        session = tintin.create_session()
        session.insert("orders", [(2,)])
        session.insert("items", [(2, 1)])
        lock = tintin.sessions.scheduler.rwlock
        writes = []
        original = lock.acquire_write

        def tracking_acquire():
            writes.append(threading.current_thread().name)
            original()

        lock.acquire_write = tracking_acquire
        try:
            session.query("SELECT * FROM orders")
            session.rows("orders")
        finally:
            del lock.acquire_write
        assert writes == []

    def test_staged_readers_hold_the_read_lock_together(self):
        """Deterministic overlap proof: every reader must be inside the
        shared section at the same time to pass the barrier — a
        serializing (write-locked) read path would deadlock the
        barrier and fail."""
        readers = 4
        tintin = build_tintin()
        commit_order(tintin, 1)
        sessions = []
        for key in range(10, 10 + readers):
            s = tintin.create_session()
            s.insert("orders", [(key,)])
            s.insert("items", [(key, 1)])
            sessions.append(s)

        lock = tintin.sessions.scheduler.rwlock
        barrier = threading.Barrier(readers)
        original = lock.acquire_read

        def rendezvous_acquire():
            original()
            barrier.wait(timeout=10)

        lock.acquire_read = rendezvous_acquire
        results = {}

        def read(index, session):
            results[index] = sorted(
                session.query("SELECT * FROM orders").rows
            )

        threads = [
            threading.Thread(target=read, args=(i, s))
            for i, s in enumerate(sessions)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            del lock.acquire_read
        assert not barrier.broken
        for index, session in enumerate(sessions):
            assert results[index] == [(1,), (10 + index,)]
