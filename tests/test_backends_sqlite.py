"""Tests for the SQLite mirror backend (portability, paper §3)."""

import pytest

from repro.backends import SQLiteMirror
from repro.core import Tintin
from repro.minidb import Database
from repro.tpch import AT_LEAST_ONE_LINEITEM, UpdateGenerator, load_tpch, tpch_database


@pytest.fixture
def mirrored_simple():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(10), c DOUBLE)")
    db.execute("INSERT INTO t VALUES (1, 'x', 1.5), (2, NULL, 2.5)")
    mirror = SQLiteMirror()
    mirror.mirror_schema(db)
    mirror.mirror_data(db)
    yield db, mirror
    mirror.close()


class TestMirroring:
    def test_schema_and_data_copied(self, mirrored_simple):
        _, mirror = mirrored_simple
        rows = mirror.query("SELECT * FROM t ORDER BY a")
        assert rows == [(1, "x", 1.5), (2, None, 2.5)]

    def test_type_mapping(self, mirrored_simple):
        _, mirror = mirrored_simple
        info = mirror.query("PRAGMA table_info(t)")
        types = {row[1]: row[2] for row in info}
        assert types == {"a": "INTEGER", "b": "TEXT", "c": "REAL"}

    def test_primary_key_copied(self, mirrored_simple):
        _, mirror = mirrored_simple
        import sqlite3

        with pytest.raises(sqlite3.IntegrityError):
            mirror.query("INSERT INTO t VALUES (1, 'dup', 0.0)")

    def test_views_copied_and_run(self, mirrored_simple):
        db, mirror = mirrored_simple
        db.execute("CREATE VIEW big AS SELECT a FROM t WHERE c > 2.0")
        mirror.mirror_views(db)
        assert mirror.query("SELECT * FROM big") == [(2,)]

    def test_refresh_event_tables(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER PRIMARY KEY)")
        tintin = Tintin(db)
        tintin.install()
        mirror = SQLiteMirror.from_database(db)
        db.execute("INSERT INTO t VALUES (1)")  # captured into ins_t
        mirror.refresh_event_tables(db)
        assert mirror.query("SELECT * FROM ins_t") == [(1,)]
        tintin.events.truncate_events()
        mirror.refresh_event_tables(db)
        assert mirror.query("SELECT * FROM ins_t") == []
        mirror.close()

    def test_context_manager(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        with SQLiteMirror.from_database(db) as mirror:
            assert mirror.query("SELECT * FROM t") == []


class TestDecisionAgreement:
    def make_workload(self, violating: bool):
        db = tpch_database()
        load_tpch(db, scale=0.001, seed=42)
        tintin = Tintin(db)
        tintin.install()
        tintin.add_assertion(AT_LEAST_ONE_LINEITEM.sql)
        generator = UpdateGenerator(db, seed=9)
        if violating:
            generator.violating_order_without_lineitem().stage(db)
        else:
            generator.mixed_refresh(4).stage(db)
        return db, tintin

    def view_names(self, tintin):
        return [
            name
            for assertion in tintin.assertions.values()
            for name in assertion.view_names
        ]

    def test_valid_update_agrees(self):
        db, tintin = self.make_workload(violating=False)
        with SQLiteMirror.from_database(db) as mirror:
            sqlite_violated = mirror.any_violation(self.view_names(tintin))
        minidb_violated = tintin.check_pending().rejected
        assert sqlite_violated == minidb_violated is False

    def test_violating_update_agrees(self):
        db, tintin = self.make_workload(violating=True)
        with SQLiteMirror.from_database(db) as mirror:
            names = self.view_names(tintin)
            sqlite_violated = mirror.any_violation(names)
            counts = mirror.check_views(names)
        minidb_violated = tintin.check_pending().rejected
        assert sqlite_violated == minidb_violated is True
        assert sum(counts.values()) >= 1

    def test_same_witness_rows(self):
        db, tintin = self.make_workload(violating=True)
        with SQLiteMirror.from_database(db) as mirror:
            names = self.view_names(tintin)
            for name in names:
                sqlite_rows = sorted(mirror.view_rows(name))
                minidb_rows = sorted(db.query(f"SELECT * FROM {name}").rows)
                assert sqlite_rows == minidb_rows
