"""The metrics layer: counters, gauges, histograms, stats blocks and
the Prometheus text rendering of the registry."""

import re
import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, StatsBlock
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    escape_label_value,
    format_value,
)

SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.e+-]+(Inf)?$'
)


def parse_prometheus(text: str) -> dict:
    """Parse text exposition into {metric_name: {label_text: value}};
    raises on any malformed line (the 'does Prometheus parse it' check)."""
    samples: dict = {}
    types: dict = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, mtype = line.split(" ", 3)
            assert mtype in ("counter", "gauge", "histogram"), line
            types[name] = mtype
        else:
            assert SAMPLE_LINE.match(line), f"malformed sample: {line!r}"
            body, value = line.rsplit(" ", 1)
            if "{" in body:
                name, labels = body.split("{", 1)
                labels = "{" + labels
            else:
                name, labels = body, ""
            samples.setdefault(name, {})[labels] = float(value)
    return samples


class TestCounter:
    def test_unlabelled_counter_counts(self):
        c = Counter("hits", "help here")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labelled_series_are_independent(self):
        c = Counter("reqs", label_names=("type",))
        c.inc(type="query")
        c.inc(2, type="commit")
        assert c.value(type="query") == 1
        assert c.value(type="commit") == 2

    def test_label_mismatch_is_an_error(self):
        c = Counter("reqs", label_names=("type",))
        with pytest.raises(ValueError):
            c.inc(verdict="x")
        with pytest.raises(ValueError):
            c.inc()

    def test_collect_renders_help_type_and_sorted_series(self):
        c = Counter("reqs", "requests", label_names=("type",))
        c.inc(type="b")
        c.inc(type="a")
        lines = list(c.collect())
        assert lines[0] == "# HELP reqs requests"
        assert lines[1] == "# TYPE reqs counter"
        assert lines[2] == 'reqs{type="a"} 1'
        assert lines[3] == 'reqs{type="b"} 1'

    def test_unlabelled_counter_renders_zero_before_first_inc(self):
        lines = list(Counter("idle").collect())
        assert lines[-1] == "idle 0"


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12

    def test_callback_gauge_reads_live_value(self):
        box = {"n": 3}
        g = Gauge("live", fn=lambda: box["n"])
        assert g.value() == 3
        box["n"] = 9
        assert list(g.collect())[-1] == "live 9"

    def test_callback_gauge_rejects_set(self):
        g = Gauge("live", fn=lambda: 1)
        with pytest.raises(ValueError):
            g.set(2)

    def test_failing_callback_drops_the_sample_not_the_page(self):
        g = Gauge("broken", fn=lambda: 1 / 0)
        assert list(g.collect()) == []


class TestHistogram:
    def test_observe_count_and_sum(self):
        h = Histogram("lat")
        h.observe(0.003)
        h.observe(0.004)
        assert h.count() == 2
        assert h.sum() == pytest.approx(0.007)

    def test_buckets_are_cumulative_and_end_at_inf(self):
        h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        lines = list(h.collect())
        assert 'lat_bucket{le="0.01"} 1' in lines
        assert 'lat_bucket{le="0.1"} 2' in lines
        assert 'lat_bucket{le="1"} 3' in lines
        assert 'lat_bucket{le="+Inf"} 4' in lines
        assert "lat_count 4" in lines

    def test_labelled_histogram_keeps_series_apart(self):
        h = Histogram("lat", label_names=("verdict",))
        h.observe(0.001, verdict="committed")
        h.observe(0.002, verdict="committed")
        h.observe(0.5, verdict="violation")
        assert h.count(verdict="committed") == 2
        assert h.count(verdict="violation") == 1
        text = "\n".join(h.collect())
        assert 'lat_bucket{verdict="committed",le="+Inf"} 2' in text

    def test_quantile_interpolates_within_a_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)
        q = h.quantile(0.5)
        assert 1.0 <= q <= 2.0

    def test_quantile_of_empty_series_is_none(self):
        assert Histogram("lat").quantile(0.99) is None

    def test_concurrent_observes_lose_nothing(self):
        h = Histogram("lat")

        def worker():
            for _ in range(1000):
                h.observe(0.01)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count() == 8000


class _DemoStats(StatsBlock):
    COUNTERS = ("commits", "aborts")
    ACCUMULATORS = ("busy_seconds",)
    HIGH_WATER = ("max_depth",)
    PREFIX = "demo"
    HELP = {"commits": "Commits completed"}


class TestStatsBlock:
    def test_attribute_reads_and_augmented_writes(self):
        s = _DemoStats()
        assert s.commits == 0
        s.commits += 2
        s.busy_seconds += 0.5
        assert s.commits == 2
        assert s.busy_seconds == pytest.approx(0.5)

    def test_bump_and_record_max(self):
        s = _DemoStats()
        s.bump(commits=1, aborts=2)
        s.record_max(max_depth=7)
        s.record_max(max_depth=3)  # lower: ignored
        snap = s.snapshot()
        assert snap == {
            "commits": 1,
            "aborts": 2,
            "busy_seconds": 0.0,
            "max_depth": 7,
        }

    def test_unknown_field_raises(self):
        s = _DemoStats()
        with pytest.raises(AttributeError):
            s.bump(nope=1)
        with pytest.raises(AttributeError):
            s.nope

    def test_collect_prefixes_and_types(self):
        s = _DemoStats()
        s.bump(commits=3)
        s.record_max(max_depth=5)
        lines = list(s.collect())
        assert "# HELP demo_commits Commits completed" in lines
        assert "# TYPE demo_commits counter" in lines
        assert "demo_commits 3" in lines
        assert "# TYPE demo_max_depth gauge" in lines
        assert "demo_max_depth 5" in lines


class TestRegistry:
    def test_render_joins_collectors_with_trailing_newline(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "A").inc()
        reg.gauge("b_now", fn=lambda: 2)
        page = reg.render()
        assert page.endswith("\n")
        assert "a_total 1" in page
        assert "b_now 2" in page

    def test_rendered_page_parses_as_prometheus_text(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", label_names=("type",))
        h.observe(0.01, type="commit")
        reg.register(_DemoStats())
        samples = parse_prometheus(reg.render())
        assert 'lat_seconds_bucket' in samples
        assert '{type="commit",le="+Inf"}' in samples["lat_seconds_bucket"]
        assert samples["demo_commits"][""] == 0

    def test_default_buckets_cover_sub_ms_to_ten_seconds(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestFormatting:
    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_format_value_drops_integral_float_suffix(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
