"""Tests for denial -> EDC generation, pinned to the paper's running
example (EDCs 4-6 and the aux rules of §2)."""

import pytest

from repro.core import Assertion, DenialCompiler, EDCGenerator
from repro.logic import Atom, Builtin, NegatedConjunction
from repro.logic.literals import BASE, DEL, DERIVED, INS
from repro.minidb import Database


@pytest.fixture
def db():
    database = Database("tpc")
    database.execute(
        "CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, o_custkey INTEGER)"
    )
    database.execute(
        "CREATE TABLE lineitem (l_orderkey INTEGER NOT NULL, "
        "l_linenumber INTEGER NOT NULL, l_quantity INTEGER, "
        "PRIMARY KEY (l_orderkey, l_linenumber), "
        "FOREIGN KEY (l_orderkey) REFERENCES orders (o_orderkey))"
    )
    return database


def generate(db, sql):
    assertion = Assertion.parse(sql)
    denials = DenialCompiler(db.catalog).compile(assertion)
    generator = EDCGenerator()
    all_edcs, all_aux = [], []
    for denial in denials:
        edcs, aux = generator.generate(denial)
        all_edcs.extend(edcs)
        all_aux.extend(aux)
    return all_edcs, all_aux


def kinds_of(edc):
    """Multiset of (predicate kind, name, negated) in the EDC body."""
    result = []
    for literal in edc.body:
        if isinstance(literal, Atom):
            result.append((literal.predicate.kind, literal.predicate.name, literal.negated))
        elif isinstance(literal, NegatedConjunction):
            atom = literal.atoms[0]
            result.append(("nc-" + atom.predicate.kind, atom.predicate.name, True))
    return sorted(result)


class TestRunningExampleEDCs:
    SQL = (
        "CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS ("
        "SELECT * FROM orders AS o WHERE NOT EXISTS ("
        "SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey)))"
    )

    def test_exactly_three_edcs_before_optimization(self, db):
        edcs, _ = generate(db, self.SQL)
        assert len(edcs) == 3

    def test_edc4_insert_order_no_lineitem(self, db):
        """Paper EDC 4: ιorder(o) ∧ ¬lineIt(l,o) ∧ ¬ιlineIt(l,o)."""
        edcs, _ = generate(db, self.SQL)
        shapes = [kinds_of(e) for e in edcs]
        expected = sorted(
            [
                ("ins", "orders", False),
                ("nc-base", "lineitem", True),
                ("nc-ins", "lineitem", True),
            ]
        )
        assert expected in shapes

    def test_edc5_insert_order_delete_lineitem(self, db):
        """Paper EDC 5: ιorder(o) ∧ δlineIt(l,o) ∧ ¬aux(o)."""
        edcs, _ = generate(db, self.SQL)
        shapes = [kinds_of(e) for e in edcs]
        expected = sorted(
            [
                ("ins", "orders", False),
                ("del", "lineitem", False),
                ("derived", "atLeastOneLineItem_aux1", True),
            ]
        )
        assert expected in shapes

    def test_edc6_old_order_delete_lineitem(self, db):
        """Paper EDC 6: order(o) ∧ ¬δorder(o) ∧ δlineIt(l,o) ∧ ¬aux(o)."""
        edcs, _ = generate(db, self.SQL)
        shapes = [kinds_of(e) for e in edcs]
        expected = sorted(
            [
                ("base", "orders", False),
                ("del", "orders", True),
                ("del", "lineitem", False),
                ("derived", "atLeastOneLineItem_aux1", True),
            ]
        )
        assert expected in shapes

    def test_aux_rules_match_paper(self, db):
        """aux(o) ← ιlineIt(l,o);  aux(o) ← lineIt(l,o) ∧ ¬δlineIt(l,o)."""
        _, aux = generate(db, self.SQL)
        assert len(aux) == 1
        predicate = aux[0]
        assert predicate.arity == 1
        assert len(predicate.rules) == 2
        r_ins, r_stay = predicate.rules
        assert [a.predicate.kind for a in r_ins.body] == [INS]
        kinds = [(a.predicate.kind, a.negated) for a in r_stay.body]
        assert kinds == [(BASE, False), (DEL, True)]
        # the head variable is the shared order key, first term of each body atom
        head_var = predicate.rules[0].head.terms[0]
        assert r_ins.body[0].terms[0] == head_var
        assert r_stay.body[0].terms[0] == head_var

    def test_aux_shared_across_edcs(self, db):
        edcs, aux = generate(db, self.SQL)
        aux_names = {
            l.predicate.name
            for e in edcs
            for l in e.body
            if isinstance(l, Atom) and l.predicate.kind == DERIVED
        }
        assert aux_names == {aux[0].predicate.name}

    def test_event_tables_metadata(self, db):
        edcs, _ = generate(db, self.SQL)
        tables = sorted(tuple(sorted(e.event_tables)) for e in edcs)
        assert tables == [
            ("del_lineitem",),
            ("del_lineitem", "ins_orders"),
            ("ins_orders",),
        ]


class TestSimpleCases:
    def test_single_positive_atom_gives_one_edc(self, db):
        edcs, aux = generate(
            db,
            "CREATE ASSERTION q CHECK (NOT EXISTS ("
            "SELECT * FROM lineitem AS l WHERE l.l_quantity > 100))",
        )
        # only the insertion mode survives (all-no-event dropped)
        assert len(edcs) == 1
        assert aux == []
        assert edcs[0].event_tables == ("ins_lineitem",)
        # builtins carried over
        assert any(isinstance(l, Builtin) for l in edcs[0].body)

    def test_join_of_two_atoms_gives_three_edcs(self, db):
        edcs, _ = generate(
            db,
            "CREATE ASSERTION j CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o, lineitem AS l "
            "WHERE o.o_orderkey = l.l_orderkey AND l.l_quantity > 50))",
        )
        assert len(edcs) == 3  # 2^2 - 1

    def test_negation_without_existentials_needs_no_aux(self, db):
        # FK-style inclusion: every lineitem has its order; the negated
        # atom's variables are all bound except o_custkey (existential)
        edcs, aux = generate(
            db,
            "CREATE ASSERTION fk CHECK (NOT EXISTS ("
            "SELECT * FROM lineitem AS l WHERE NOT EXISTS ("
            "SELECT * FROM orders AS o WHERE o.o_orderkey = l.l_orderkey)))",
        )
        # o_custkey is existential -> aux IS needed here
        assert len(aux) == 1

    def test_builtins_appear_in_every_edc(self, db):
        edcs, _ = generate(
            db,
            "CREATE ASSERTION b CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o, lineitem AS l "
            "WHERE o.o_orderkey = l.l_orderkey AND l.l_quantity > 50))",
        )
        for edc in edcs:
            assert any(isinstance(l, Builtin) for l in edc.body)

    def test_edc_names_follow_paper_convention(self, db):
        edcs, _ = generate(
            db,
            "CREATE ASSERTION named CHECK (NOT EXISTS ("
            "SELECT * FROM orders AS o, lineitem AS l "
            "WHERE o.o_orderkey = l.l_orderkey))",
        )
        assert [e.name for e in edcs] == ["named1", "named2", "named3"]


class TestComplexNegation:
    SQL = (
        "CREATE ASSERTION deep CHECK (NOT EXISTS ("
        "SELECT * FROM orders AS o WHERE NOT EXISTS ("
        "SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey "
        "AND NOT EXISTS (SELECT * FROM lineitem AS m "
        "WHERE m.l_orderkey = l.l_orderkey AND m.l_quantity > l.l_quantity))))"
    )

    def test_complex_negation_uses_guard(self, db):
        edcs, aux = generate(db, self.SQL)
        guarded = [e for e in edcs if e.guard is not None]
        assert guarded
        guard_tables = set(guarded[0].guard_tables)
        assert guard_tables == {"ins_lineitem", "del_lineitem"}

    def test_complex_negation_builds_nested_aux(self, db):
        _, aux = generate(db, self.SQL)
        # one aux for the outer conjunction, one for the nested negation
        assert len(aux) == 2

    def test_new_state_expansion_rule_count(self, db):
        _, aux = generate(db, self.SQL)
        outer = max(aux, key=lambda a: len(a.rules))
        # outer conjunction has one atom (2 branches) x nested negation (1)
        assert len(outer.rules) == 2
