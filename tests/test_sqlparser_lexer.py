"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlparser import Token, TokenType, tokenize


def types(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_whitespace_only_yields_only_eof(self):
        tokens = tokenize("   \n\t  \r\n ")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_keywords_are_upper_cased(self):
        assert values("select From WHERE") == ["SELECT", "FROM", "WHERE"]

    def test_identifier_case_preserved(self):
        assert values("LineItem") == ["LineItem"]

    def test_identifier_with_underscore_and_digits(self):
        assert values("l_orderkey2") == ["l_orderkey2"]

    def test_identifier_can_start_with_underscore(self):
        tokens = tokenize("_tmp")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "_tmp"

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[0].value == "42"

    def test_decimal_literal(self):
        assert values("3.14") == ["3.14"]

    def test_scientific_notation(self):
        assert values("1e6 2.5E-3 7E+2") == ["1e6", "2.5E-3", "7E+2"]

    def test_number_followed_by_dot_star_not_consumed(self):
        # "1." without following digit: dot is a separate operator
        vals = values("1.x")
        assert vals == ["1", ".", "x"]

    def test_string_literal(self):
        tokens = tokenize("'hello'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_empty_string_literal(self):
        tokens = tokenize("''")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == ""

    def test_quoted_identifier(self):
        tokens = tokenize('"Order Details"')
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "Order Details"

    def test_quoted_identifier_is_not_keyword(self):
        tokens = tokenize('"select"')
        assert tokens[0].type is TokenType.IDENT


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<", ">", "+", "-", "*", "/", "(", ")", ",", ".", ";"])
    def test_single_char_operators(self, op):
        tokens = tokenize(op)
        assert tokens[0].type is TokenType.OPERATOR
        assert tokens[0].value == op

    @pytest.mark.parametrize("op", ["<>", "<=", ">="])
    def test_two_char_operators(self, op):
        tokens = tokenize(op)
        assert tokens[0].value == op

    def test_bang_equals_normalized_to_standard(self):
        assert values("a != b") == ["a", "<>", "b"]

    def test_adjacent_operators(self):
        assert values("a<=b") == ["a", "<=", "b"]

    def test_less_then_greater_distinct_tokens(self):
        # "< >" with a space is two operators, not <>
        assert values("a < > b") == ["a", "<", ">", "b"]


class TestComments:
    def test_line_comment_skipped(self):
        assert values("a -- comment here\n b") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert values("a -- trailing") == ["a"]

    def test_block_comment_skipped(self):
        assert values("a /* stuff \n more */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("a /* never closed")


class TestErrors:
    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("a @ b")

    def test_error_carries_position(self):
        with pytest.raises(SQLSyntaxError) as exc:
            tokenize("ab\n  @")
        assert exc.value.line == 2
        assert exc.value.column == 3

    def test_empty_quoted_identifier_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize('""')


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("SELECT *\nFROM t")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[2].line, tokens[2].column) == (2, 1)
        assert tokens[3].value == "t"
        assert tokens[3].line == 2

    def test_token_helpers(self):
        token = Token(TokenType.KEYWORD, "SELECT", 1, 1)
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")
        op = Token(TokenType.OPERATOR, "=", 1, 1)
        assert op.is_operator("=", "<>")
        assert not op.is_operator("<")
