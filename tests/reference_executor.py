"""A deliberately naive reference evaluator for SELECT queries.

Used by differential tests: the optimizing planner (index joins, probe
closures, memoization) must produce exactly the same bags of rows as
this brute-force implementation, which evaluates the relational
semantics as directly as possible:

* FROM: cartesian product of the listed relations;
* WHERE: three-valued evaluation per row, subqueries re-evaluated from
  scratch for every candidate row;
* projection, DISTINCT, UNION [ALL]: literal definitions.

No indexes, no join ordering, no memoization — slow and obviously
correct.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import ExecutionError
from repro.minidb.database import Database
from repro.minidb.expressions import sql_and, sql_compare, sql_not, sql_or
from repro.minidb.plan import aggregate_value
from repro.sqlparser import nodes as n

#: environment: (binding_lower, column_lower) -> value
Env = dict


class ReferenceExecutor:
    """Brute-force query evaluation against a minidb catalog."""

    def __init__(self, db: Database):
        self.db = db

    # -- entry point --------------------------------------------------------

    def rows(self, query: n.Query, outer_env: Optional[Env] = None) -> list[tuple]:
        if isinstance(query, n.Union):
            parts = [self._select_rows(s, outer_env) for s in query.selects]
            merged = list(itertools.chain.from_iterable(parts))
            if query.all:
                return merged
            seen: set[tuple] = set()
            unique = []
            for row in merged:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            return unique
        return self._select_rows(query, outer_env)

    # -- internals -------------------------------------------------------------

    def _relation(self, name: str) -> tuple[list[str], list[tuple]]:
        table = self.db.catalog.get_table(name, default=None)
        if table is not None:
            return list(table.schema.column_names), table.rows_snapshot()
        view = self.db.catalog.get_view(name)
        if view is None:
            raise ExecutionError(f"unknown relation {name!r}")
        return list(view.columns), self.rows(view.query)

    def _select_rows(self, select: n.Select, outer_env: Optional[Env]) -> list[tuple]:
        bindings: list[tuple[str, list[str], list[tuple]]] = []
        for ref in select.from_items:
            columns, rows = self._relation(ref.name)
            bindings.append((ref.binding.lower(), columns, rows))

        envs: list[Env] = []
        for combination in itertools.product(*(rows for _, _, rows in bindings)):
            env: Env = dict(outer_env or {})
            for (binding, columns, _), row in zip(bindings, combination):
                for column, value in zip(columns, row):
                    env[(binding, column.lower())] = value
            if select.where is None or self._eval(select.where, env) is True:
                envs.append(env)

        if self._is_aggregate(select):
            return [self._aggregate_row(select, envs, outer_env)]

        out: list[tuple] = []
        local_bindings = [(b, cols) for b, cols, _ in bindings]
        for env in envs:
            out.append(self._project(select, env, local_bindings))
        if select.distinct:
            seen: set[tuple] = set()
            unique = []
            for row in out:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            return unique
        return out

    @staticmethod
    def _is_aggregate(select: n.Select) -> bool:
        return any(
            isinstance(item, n.SelectItem)
            and any(isinstance(x, n.AggregateCall) for x in n.walk_expr(item.expr))
            for item in select.items
        )

    def _aggregate_row(self, select, envs, outer_env) -> tuple:
        values = []
        for item in select.items:
            call = item.expr
            if call.argument is None:
                values.append(len(envs))
            else:
                collected = [self._eval(call.argument, env) for env in envs]
                values.append(aggregate_value(call.func, collected))
        return tuple(values)

    def _project(self, select, env: Env, local_bindings) -> tuple:
        values = []
        for item in select.items:
            if isinstance(item, n.Star):
                for binding, columns in local_bindings:
                    if item.table is not None and binding != item.table.lower():
                        continue
                    for column in columns:
                        values.append(env[(binding, column.lower())])
            else:
                values.append(self._eval(item.expr, env))
        return tuple(values)

    # -- expression evaluation ----------------------------------------------------

    def _eval(self, expr: n.Expr, env: Env):
        if isinstance(expr, n.Literal):
            return expr.value
        if isinstance(expr, n.ColumnRef):
            return self._lookup(expr, env)
        if isinstance(expr, n.Comparison):
            return sql_compare(
                expr.op, self._eval(expr.left, env), self._eval(expr.right, env)
            )
        if isinstance(expr, n.Arithmetic):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            if left is None or right is None:
                return None
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                result = left / right
                if isinstance(left, int) and isinstance(right, int):
                    return int(result) if result >= 0 else -int(-result)
                return result
        if isinstance(expr, n.And):
            return sql_and(self._eval(item, env) for item in expr.items)
        if isinstance(expr, n.Or):
            return sql_or(self._eval(item, env) for item in expr.items)
        if isinstance(expr, n.Not):
            return sql_not(self._eval(expr.item, env))
        if isinstance(expr, n.IsNull):
            value = self._eval(expr.item, env)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, n.InList):
            subject = self._eval(expr.item, env)
            result = sql_or(
                sql_compare("=", subject, self._eval(v, env)) for v in expr.values
            )
            return sql_not(result) if expr.negated else result
        if isinstance(expr, n.Exists):
            rows = self.rows(expr.query, env)
            return (not rows) if expr.negated else bool(rows)
        if isinstance(expr, n.InSubquery):
            subject = self._eval(expr.item, env)
            values = [row[0] for row in self.rows(expr.query, env)]
            if subject is None:
                result = None if values else False
            elif subject in [v for v in values if v is not None]:
                result = True
            elif any(v is None for v in values):
                result = None
            else:
                result = False
            return sql_not(result) if expr.negated else result
        if isinstance(expr, n.ScalarSubquery):
            return self.rows(expr.query, env)[0][0]
        raise ExecutionError(f"reference executor: cannot evaluate {expr!r}")

    @staticmethod
    def _lookup(ref: n.ColumnRef, env: Env):
        column = ref.column.lower()
        if ref.table is not None:
            key = (ref.table.lower(), column)
            if key in env:
                return env[key]
            raise ExecutionError(f"reference executor: unbound {ref}")
        matches = [v for (b, c), v in env.items() if c == column]
        # ambiguity is the planner's job to reject; tests use qualified
        # or unique names
        if not matches:
            raise ExecutionError(f"reference executor: unbound {ref}")
        return matches[0]
