"""Unit tests for the SQL parser."""

import pytest

from repro.errors import SQLSyntaxError, UnsupportedSQLError
from repro.sqlparser import nodes as n
from repro.sqlparser import parse_expression, parse_query, parse_script, parse_statement


class TestSelect:
    def test_select_star(self):
        q = parse_query("SELECT * FROM t")
        assert isinstance(q, n.Select)
        assert q.items == (n.Star(),)
        assert q.from_items == (n.TableRef("t"),)
        assert q.where is None

    def test_select_columns(self):
        q = parse_query("SELECT a, t.b FROM t")
        assert q.items == (
            n.SelectItem(n.ColumnRef("a")),
            n.SelectItem(n.ColumnRef("b", "t")),
        )

    def test_select_with_aliases(self):
        q = parse_query("SELECT a AS x, b y FROM t")
        assert q.items[0].alias == "x"
        assert q.items[1].alias == "y"

    def test_qualified_star(self):
        q = parse_query("SELECT o.* FROM orders AS o")
        assert q.items == (n.Star("o"),)

    def test_table_alias_with_and_without_as(self):
        q = parse_query("SELECT * FROM orders AS o, lineitem l")
        assert q.from_items[0].alias == "o"
        assert q.from_items[1].alias == "l"
        assert q.from_items[1].binding == "l"

    def test_distinct(self):
        q = parse_query("SELECT DISTINCT a FROM t")
        assert q.distinct

    def test_where_comparison(self):
        q = parse_query("SELECT * FROM t WHERE a = 1")
        assert q.where == n.Comparison("=", n.ColumnRef("a"), n.Literal(1))

    def test_join_on_folded_into_where(self):
        q = parse_query("SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y > 0")
        conjs = n.conjuncts(q.where)
        assert len(conjs) == 2
        assert q.from_items == (n.TableRef("a"), n.TableRef("b"))

    def test_inner_join_keyword(self):
        q = parse_query("SELECT * FROM a INNER JOIN b ON a.x = b.x")
        assert len(q.from_items) == 2

    def test_cross_join(self):
        q = parse_query("SELECT * FROM a CROSS JOIN b")
        assert len(q.from_items) == 2
        assert q.where is None

    def test_cross_join_with_on_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT * FROM a CROSS JOIN b ON a.x = b.x")

    def test_join_without_on_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT * FROM a JOIN b WHERE a.x = 1")

    def test_union(self):
        q = parse_query("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(q, n.Union)
        assert len(q.selects) == 2
        assert not q.all

    def test_union_all(self):
        q = parse_query("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert q.all

    def test_union_three_way(self):
        q = parse_query("SELECT a FROM t UNION SELECT b FROM u UNION SELECT c FROM v")
        assert len(q.selects) == 3

    def test_mixed_union_union_all_rejected(self):
        with pytest.raises(UnsupportedSQLError):
            parse_query(
                "SELECT a FROM t UNION SELECT b FROM u UNION ALL SELECT c FROM v"
            )


class TestPredicates:
    def test_exists(self):
        q = parse_query("SELECT * FROM t WHERE EXISTS (SELECT * FROM u)")
        assert isinstance(q.where, n.Exists)
        assert not q.where.negated

    def test_not_exists(self):
        q = parse_query("SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM u)")
        assert isinstance(q.where, n.Exists)
        assert q.where.negated

    def test_correlated_not_exists(self):
        q = parse_query(
            "SELECT * FROM orders AS o WHERE NOT EXISTS "
            "(SELECT * FROM lineitem AS l WHERE l.orderkey = o.orderkey)"
        )
        sub = q.where.query
        assert sub.where == n.Comparison(
            "=", n.ColumnRef("orderkey", "l"), n.ColumnRef("orderkey", "o")
        )

    def test_in_subquery(self):
        q = parse_query("SELECT * FROM t WHERE a IN (SELECT b FROM u)")
        assert isinstance(q.where, n.InSubquery)
        assert not q.where.negated

    def test_not_in_subquery(self):
        q = parse_query("SELECT * FROM t WHERE a NOT IN (SELECT b FROM u)")
        assert q.where.negated

    def test_in_value_list(self):
        q = parse_query("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(q.where, n.InList)
        assert q.where.values == (n.Literal(1), n.Literal(2), n.Literal(3))

    def test_not_in_value_list(self):
        q = parse_query("SELECT * FROM t WHERE a NOT IN ('x', 'y')")
        assert isinstance(q.where, n.InList)
        assert q.where.negated

    def test_is_null(self):
        q = parse_query("SELECT * FROM t WHERE a IS NULL")
        assert q.where == n.IsNull(n.ColumnRef("a"))

    def test_is_not_null(self):
        q = parse_query("SELECT * FROM t WHERE a IS NOT NULL")
        assert q.where == n.IsNull(n.ColumnRef("a"), negated=True)

    def test_between_desugars(self):
        q = parse_query("SELECT * FROM t WHERE a BETWEEN 1 AND 5")
        assert q.where == n.And(
            (
                n.Comparison(">=", n.ColumnRef("a"), n.Literal(1)),
                n.Comparison("<=", n.ColumnRef("a"), n.Literal(5)),
            )
        )

    def test_not_between_desugars(self):
        q = parse_query("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5")
        assert isinstance(q.where, n.Not)

    def test_like_rejected(self):
        with pytest.raises(UnsupportedSQLError):
            parse_query("SELECT * FROM t WHERE a LIKE 'x%'")


class TestExpressions:
    def test_precedence_or_and(self):
        e = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(e, n.Or)
        assert isinstance(e.items[1], n.And)

    def test_not_binds_tighter_than_and(self):
        e = parse_expression("NOT a = 1 AND b = 2")
        assert isinstance(e, n.And)
        assert isinstance(e.items[0], n.Not)

    def test_parenthesized_or_under_and(self):
        e = parse_expression("(a = 1 OR b = 2) AND c = 3")
        assert isinstance(e, n.And)
        assert isinstance(e.items[0], n.Or)

    def test_arithmetic_precedence(self):
        e = parse_expression("a + b * c")
        assert isinstance(e, n.Arithmetic)
        assert e.op == "+"
        assert isinstance(e.right, n.Arithmetic)
        assert e.right.op == "*"

    def test_unary_minus_constant_folds(self):
        e = parse_expression("-5")
        assert e == n.Literal(-5)

    def test_unary_minus_on_column(self):
        e = parse_expression("-a")
        assert e == n.Arithmetic("-", n.Literal(0), n.ColumnRef("a"))

    def test_boolean_literals(self):
        assert parse_expression("TRUE") == n.Literal(True)
        assert parse_expression("FALSE") == n.Literal(False)
        assert parse_expression("NULL") == n.Literal(None)

    def test_float_literal(self):
        assert parse_expression("2.5") == n.Literal(2.5)

    def test_comparison_chain_not_allowed(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("a = b = c")

    def test_non_aggregate_function_call_rejected(self):
        with pytest.raises(UnsupportedSQLError):
            parse_expression("upper(a)")

    def test_aggregate_calls_parse(self):
        assert parse_expression("COUNT(*)") == n.AggregateCall("COUNT", None)
        assert parse_expression("sum(a)") == n.AggregateCall(
            "SUM", n.ColumnRef("a")
        )

    def test_star_only_for_count(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("SUM(*)")

    def test_scalar_subquery_must_be_aggregate(self):
        with pytest.raises(UnsupportedSQLError):
            parse_query("SELECT * FROM t WHERE a = (SELECT b FROM u)")

    def test_scalar_aggregate_subquery_parses(self):
        q = parse_query(
            "SELECT * FROM t WHERE (SELECT COUNT(*) FROM u WHERE u.x = t.x) > 2"
        )
        assert isinstance(q.where.left, n.ScalarSubquery)

    def test_scalar_subquery_over_union_rejected(self):
        with pytest.raises(UnsupportedSQLError):
            parse_query(
                "SELECT * FROM t WHERE (SELECT COUNT(*) FROM u "
                "UNION SELECT COUNT(*) FROM v) > 2"
            )

    def test_nested_not(self):
        e = parse_expression("NOT NOT a = 1")
        assert isinstance(e, n.Not)
        assert isinstance(e.item, n.Not)


class TestUnsupported:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t GROUP BY a",
            "SELECT a FROM t ORDER BY a",
            "SELECT * FROM t LEFT JOIN u ON t.x = u.x",
        ],
    )
    def test_unsupported_constructs_raise(self, sql):
        with pytest.raises(SQLSyntaxError):
            parse_query(sql)


class TestDDL:
    def test_create_table_minimal(self):
        s = parse_statement("CREATE TABLE t (a INTEGER, b VARCHAR(10))")
        assert isinstance(s, n.CreateTable)
        assert s.columns[0] == n.ColumnDef("a", "INTEGER")
        assert s.columns[1].type_params == (10,)

    def test_create_table_column_constraints(self):
        s = parse_statement("CREATE TABLE t (a INTEGER NOT NULL PRIMARY KEY)")
        col = s.columns[0]
        assert col.not_null
        assert col.primary_key

    def test_create_table_table_level_pk(self):
        s = parse_statement("CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))")
        assert s.primary_key == ("a", "b")

    def test_duplicate_pk_clause_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement(
                "CREATE TABLE t (a INTEGER, PRIMARY KEY (a), PRIMARY KEY (a))"
            )

    def test_create_table_foreign_key(self):
        s = parse_statement(
            "CREATE TABLE li (ok INTEGER, FOREIGN KEY (ok) REFERENCES orders (o_ok))"
        )
        fk = s.foreign_keys[0]
        assert fk.columns == ("ok",)
        assert fk.ref_table == "orders"
        assert fk.ref_columns == ("o_ok",)

    def test_foreign_key_without_ref_columns(self):
        s = parse_statement(
            "CREATE TABLE li (ok INTEGER, FOREIGN KEY (ok) REFERENCES orders)"
        )
        assert s.foreign_keys[0].ref_columns == ()

    def test_create_table_unique(self):
        s = parse_statement("CREATE TABLE t (a INTEGER, b INTEGER, UNIQUE (a, b))")
        assert s.uniques == (("a", "b"),)

    def test_create_view(self):
        s = parse_statement("CREATE VIEW v AS SELECT * FROM t")
        assert isinstance(s, n.CreateView)
        assert s.name == "v"

    def test_create_assertion(self):
        s = parse_statement(
            "CREATE ASSERTION noEmpty CHECK (NOT EXISTS (SELECT * FROM t))"
        )
        assert isinstance(s, n.CreateAssertion)
        assert s.name == "noEmpty"
        assert isinstance(s.check, n.Exists)
        assert s.check.negated

    def test_drop_table(self):
        s = parse_statement("DROP TABLE t")
        assert s == n.DropTable("t", False)

    def test_drop_table_if_exists(self):
        s = parse_statement("DROP TABLE IF EXISTS t")
        assert s.if_exists

    def test_drop_view(self):
        assert parse_statement("DROP VIEW v") == n.DropView("v", False)


class TestDML:
    def test_insert_values(self):
        s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert s.table == "t"
        assert s.columns == ("a", "b")
        assert s.rows == ((n.Literal(1), n.Literal("x")),)

    def test_insert_multi_row(self):
        s = parse_statement("INSERT INTO t VALUES (1), (2), (3)")
        assert len(s.rows) == 3

    def test_insert_select(self):
        s = parse_statement("INSERT INTO t SELECT * FROM u")
        assert s.query is not None
        assert s.rows == ()

    def test_insert_requires_values_or_select(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("INSERT INTO t")

    def test_delete(self):
        s = parse_statement("DELETE FROM t WHERE a = 1")
        assert s.table == "t"
        assert s.where is not None

    def test_delete_without_where(self):
        s = parse_statement("DELETE FROM t")
        assert s.where is None

    def test_delete_with_alias(self):
        s = parse_statement("DELETE FROM t AS x WHERE x.a = 1")
        assert s.alias == "x"

    def test_update(self):
        s = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert s.assignments[0] == ("a", n.Literal(1))
        assert s.assignments[1][0] == "b"
        assert s.where is not None

    def test_truncate(self):
        s = parse_statement("TRUNCATE TABLE t")
        assert s == n.Truncate("t")

    def test_truncate_without_table_keyword(self):
        assert parse_statement("TRUNCATE t") == n.Truncate("t")

    def test_call_no_args(self):
        s = parse_statement("CALL safeCommit()")
        assert s == n.Call("safeCommit", ())

    def test_call_bare(self):
        assert parse_statement("CALL p") == n.Call("p", ())

    def test_call_with_args(self):
        s = parse_statement("CALL p(1, 'x')")
        assert s.args == (n.Literal(1), n.Literal("x"))

    def test_select_statement(self):
        s = parse_statement("SELECT * FROM t")
        assert isinstance(s, n.SelectStatement)


class TestScripts:
    def test_script_multiple_statements(self):
        stmts = parse_script(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); SELECT * FROM t;"
        )
        assert len(stmts) == 3

    def test_script_without_trailing_semicolon(self):
        stmts = parse_script("SELECT * FROM t; SELECT * FROM u")
        assert len(stmts) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT * FROM t banana garbage")

    def test_empty_script(self):
        assert parse_script("") == []


class TestHelpers:
    def test_conjuncts_flattens_nested_and(self):
        e = parse_expression("a = 1 AND (b = 2 AND c = 3)")
        assert len(n.conjuncts(e)) == 3

    def test_conjoin_roundtrip(self):
        parts = n.conjuncts(parse_expression("a = 1 AND b = 2"))
        combined = n.conjoin(parts)
        assert n.conjuncts(combined) == parts

    def test_conjoin_empty(self):
        assert n.conjoin([]) is None

    def test_conjoin_single(self):
        e = parse_expression("a = 1")
        assert n.conjoin([e]) is e

    def test_walk_expr_visits_all(self):
        e = parse_expression("a = 1 AND NOT (b = 2 OR c IN (1, 2))")
        kinds = {type(x).__name__ for x in n.walk_expr(e)}
        assert {"And", "Not", "Or", "Comparison", "InList", "ColumnRef", "Literal"} <= kinds

    def test_subqueries_of_nested(self):
        q = parse_query(
            "SELECT * FROM t WHERE EXISTS (SELECT * FROM u WHERE "
            "NOT EXISTS (SELECT * FROM v))"
        )
        subs = list(n.subqueries_of(q.where))
        assert len(subs) == 2
