"""End-to-end tests of the Tintin facade: install, add assertions,
capture updates, safeCommit vs the non-incremental baseline.

The final class is the key correctness property of the whole
reproduction: on randomized update batches, the incremental check must
reach exactly the same accept/reject decision as re-running the full
assertion queries on the would-be new state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Tintin
from repro.errors import CompilationError
from repro.minidb import Database
from repro.sqlparser import print_query

AT_LEAST_ONE = (
    "CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE NOT EXISTS ("
    "SELECT * FROM lineitem AS l WHERE l.l_orderkey = o.o_orderkey)))"
)


def make_db():
    db = Database("TPC")
    db.execute(
        "CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, o_custkey INTEGER)"
    )
    db.execute(
        "CREATE TABLE lineitem (l_orderkey INTEGER NOT NULL, "
        "l_linenumber INTEGER NOT NULL, l_quantity INTEGER, "
        "PRIMARY KEY (l_orderkey, l_linenumber), "
        "FOREIGN KEY (l_orderkey) REFERENCES orders (o_orderkey))"
    )
    return db


@pytest.fixture
def installed():
    db = make_db()
    tintin = Tintin(db)
    tintin.install()
    tintin.add_assertion(AT_LEAST_ONE)
    db.insert_rows("orders", [(1, 10), (2, 20)], bypass_triggers=True)
    db.insert_rows(
        "lineitem", [(1, 1, 5), (1, 2, 7), (2, 1, 9)], bypass_triggers=True
    )
    return db, tintin


class TestInstallation:
    def test_install_creates_event_tables(self):
        db = make_db()
        tintin = Tintin(db)
        captured = tintin.install()
        assert sorted(captured) == ["lineitem", "orders"]
        for name in ("ins_orders", "del_orders", "ins_lineitem", "del_lineitem"):
            assert db.catalog.has_table(name)
            assert db.table(name).namespace == "event"

    def test_install_creates_safecommit_procedure(self):
        db = make_db()
        Tintin(db).install()
        assert db.catalog.has_procedure("safeCommit")

    def test_add_assertion_requires_install(self):
        db = make_db()
        tintin = Tintin(db)
        with pytest.raises(CompilationError, match="install"):
            tintin.add_assertion(AT_LEAST_ONE)

    def test_duplicate_assertion_rejected(self, installed):
        _, tintin = installed
        with pytest.raises(CompilationError):
            tintin.add_assertion(AT_LEAST_ONE)

    def test_views_are_stored_in_catalog(self, installed):
        db, tintin = installed
        assertion = tintin.assertions["atLeastOneLineItem"]
        assert assertion.view_names
        for view in assertion.view_names:
            assert db.catalog.has_view(view)

    def test_paper_view_shape(self, installed):
        """The stored view for EDC 4 matches the paper's example."""
        db, tintin = installed
        assertion = tintin.assertions["atLeastOneLineItem"]
        texts = [
            print_query(db.catalog.get_view(v).query)
            for v in assertion.view_names
        ]
        ins_order_views = [t for t in texts if t.startswith("SELECT * FROM ins_orders")]
        assert len(ins_order_views) == 1
        text = ins_order_views[0]
        assert "NOT EXISTS (SELECT * FROM lineitem" in text
        assert "NOT EXISTS (SELECT * FROM ins_lineitem" in text

    def test_drop_assertion_removes_views(self, installed):
        db, tintin = installed
        views = list(tintin.assertions["atLeastOneLineItem"].view_names)
        tintin.drop_assertion("atLeastOneLineItem")
        for view in views:
            assert not db.catalog.has_view(view)
        assert tintin.safe_commit_proc.compiled == []

    def test_describe_mentions_edcs(self, installed):
        _, tintin = installed
        text = tintin.describe()
        assert "atLeastOneLineItem" in text
        assert "EDC" in text


class TestEventCapture:
    def test_insert_is_captured_not_applied(self, installed):
        db, _ = installed
        db.execute("INSERT INTO orders VALUES (5, 50)")
        assert db.query("SELECT * FROM orders WHERE o_orderkey = 5").is_empty
        assert len(db.table("ins_orders")) == 1

    def test_delete_is_captured_not_applied(self, installed):
        db, _ = installed
        db.execute("DELETE FROM lineitem WHERE l_orderkey = 2")
        assert len(db.query("SELECT * FROM lineitem")) == 3
        assert len(db.table("del_lineitem")) == 1

    def test_delete_does_not_see_pending_inserts(self, installed):
        # INSTEAD OF semantics: a DELETE statement evaluates its WHERE
        # against the base table, so a tuple pending in ins_T is invisible
        # to it (matches SQL Server trigger behaviour)
        db, _ = installed
        db.execute("INSERT INTO orders VALUES (5, 50)")
        db.execute("DELETE FROM orders WHERE o_orderkey = 5")
        assert len(db.table("ins_orders")) == 1
        assert len(db.table("del_orders")) == 0

    def test_programmatic_insert_then_delete_cancels(self, installed):
        # staging rows through the capture API does apply the net-effect
        # cancellation the EDC equations assume
        db, _ = installed
        db.insert_rows("orders", [(5, 50)])
        db.delete_rows("orders", [(5, 50)])
        assert len(db.table("ins_orders")) == 0
        assert len(db.table("del_orders")) == 0

    def test_delete_then_insert_cancels(self, installed):
        db, _ = installed
        db.execute("DELETE FROM orders WHERE o_orderkey = 1")
        db.execute("INSERT INTO orders VALUES (1, 10)")
        assert len(db.table("del_orders")) == 0
        assert len(db.table("ins_orders")) == 0

    def test_inserting_existing_tuple_is_noop(self, installed):
        db, _ = installed
        db.execute("INSERT INTO orders VALUES (1, 10)")
        assert len(db.table("ins_orders")) == 0

    def test_deleting_missing_tuple_is_noop(self, installed):
        db, _ = installed
        db.execute("DELETE FROM orders WHERE o_orderkey = 777")
        assert len(db.table("del_orders")) == 0

    def test_duplicate_capture_is_deduplicated(self, installed):
        db, _ = installed
        db.execute("INSERT INTO orders VALUES (5, 50)")
        db.execute("INSERT INTO orders VALUES (5, 50)")
        assert len(db.table("ins_orders")) == 1

    def test_update_captured_as_delete_plus_insert(self, installed):
        db, tintin = installed
        db.execute("UPDATE orders SET o_custkey = 99 WHERE o_orderkey = 1")
        assert len(db.table("del_orders")) == 1
        assert len(db.table("ins_orders")) == 1
        result = tintin.safe_commit()
        assert result.committed
        assert db.query(
            "SELECT o_custkey FROM orders WHERE o_orderkey = 1"
        ).rows == [(99,)]


class TestSafeCommit:
    def test_valid_insert_commits(self, installed):
        db, tintin = installed
        db.execute("INSERT INTO orders VALUES (5, 50)")
        db.execute("INSERT INTO lineitem VALUES (5, 1, 3)")
        result = tintin.safe_commit()
        assert result.committed
        assert result.applied_rows == 2
        assert not db.query("SELECT * FROM orders WHERE o_orderkey = 5").is_empty

    def test_orphan_order_rejected(self, installed):
        db, tintin = installed
        db.execute("INSERT INTO orders VALUES (5, 50)")
        result = tintin.safe_commit()
        assert result.rejected
        assert result.violations[0].assertion == "atLeastOneLineItem"
        assert db.query("SELECT * FROM orders WHERE o_orderkey = 5").is_empty
        # events are truncated so the next transaction starts clean
        assert len(db.table("ins_orders")) == 0

    def test_deleting_last_lineitem_rejected(self, installed):
        db, tintin = installed
        db.execute("DELETE FROM lineitem WHERE l_orderkey = 2")
        result = tintin.safe_commit()
        assert result.rejected
        # base data untouched
        assert len(db.query("SELECT * FROM lineitem")) == 3

    def test_deleting_one_of_two_lineitems_allowed(self, installed):
        db, tintin = installed
        db.execute(
            "DELETE FROM lineitem WHERE l_orderkey = 1 AND l_linenumber = 1"
        )
        assert tintin.safe_commit().committed

    def test_delete_order_with_its_lineitems_allowed(self, installed):
        db, tintin = installed
        db.execute("DELETE FROM lineitem WHERE l_orderkey = 2")
        db.execute("DELETE FROM orders WHERE o_orderkey = 2")
        result = tintin.safe_commit()
        assert result.committed
        assert db.query("SELECT * FROM orders WHERE o_orderkey = 2").is_empty

    def test_replacing_lineitem_in_same_transaction_allowed(self, installed):
        db, tintin = installed
        db.execute("DELETE FROM lineitem WHERE l_orderkey = 2")
        db.execute("INSERT INTO lineitem VALUES (2, 7, 1)")
        assert tintin.safe_commit().committed

    def test_empty_transaction_commits_trivially(self, installed):
        _, tintin = installed
        result = tintin.safe_commit()
        assert result.committed
        assert result.applied_rows == 0
        assert result.checked_views == 0  # every view skipped

    def test_skip_counts_reported(self, installed):
        db, tintin = installed
        db.execute("INSERT INTO orders VALUES (5, 50)")
        db.execute("INSERT INTO lineitem VALUES (5, 1, 1)")
        result = tintin.safe_commit()
        assert result.checked_views + result.skipped_views == 2

    def test_constraint_violation_reported_not_raised(self, installed):
        db, tintin = installed
        # lineitem referencing a non-existent order passes the assertion
        # machinery (assertion is about orders without lineitems) but
        # violates the FK at apply time
        db.execute("INSERT INTO lineitem VALUES (777, 1, 1)")
        result = tintin.safe_commit()
        assert result.rejected
        assert result.constraint_error
        assert db.query("SELECT * FROM lineitem WHERE l_orderkey = 777").is_empty

    def test_safecommit_via_sql_call(self, installed):
        db, _ = installed
        db.execute("INSERT INTO orders VALUES (5, 50)")
        result = db.execute("CALL safeCommit()")
        assert result.rejected

    def test_check_pending_leaves_events_in_place(self, installed):
        db, tintin = installed
        db.execute("INSERT INTO orders VALUES (5, 50)")
        result = tintin.check_pending()
        assert result.rejected
        assert len(db.table("ins_orders")) == 1  # still pending


class TestBaselineAgreement:
    def test_baseline_accepts_valid_update(self, installed):
        db, tintin = installed
        db.execute("INSERT INTO orders VALUES (5, 50)")
        db.execute("INSERT INTO lineitem VALUES (5, 1, 3)")
        result = tintin.full_check_commit()
        assert result.committed
        assert not db.query("SELECT * FROM orders WHERE o_orderkey = 5").is_empty

    def test_baseline_rejects_and_rolls_back(self, installed):
        db, tintin = installed
        db.execute("INSERT INTO orders VALUES (5, 50)")
        result = tintin.full_check_commit()
        assert result.rejected
        assert db.query("SELECT * FROM orders WHERE o_orderkey = 5").is_empty

    def test_baseline_detects_preexisting_violations(self, installed):
        db, tintin = installed
        # sneak in a violating row with triggers bypassed
        db.insert_rows("orders", [(9, 90)], bypass_triggers=True)
        violations = tintin.baseline.check_current_state(db)
        assert violations


class TestMultipleAssertions:
    def test_two_assertions_checked_independently(self, installed):
        db, tintin = installed
        tintin.add_assertion(
            "CREATE ASSERTION smallQty CHECK (NOT EXISTS ("
            "SELECT * FROM lineitem AS l WHERE l.l_quantity > 100))"
        )
        db.execute("INSERT INTO orders VALUES (5, 50)")
        db.execute("INSERT INTO lineitem VALUES (5, 1, 500)")
        result = tintin.safe_commit()
        assert result.rejected
        names = {v.assertion for v in result.violations}
        assert names == {"smallQty"}

    def test_violations_report_witness_rows(self, installed):
        db, tintin = installed
        db.execute("INSERT INTO orders VALUES (5, 50)")
        result = tintin.safe_commit()
        violation = result.violations[0]
        assert violation.rows == [(5, 50)]
        assert "o_orderkey" in violation.columns


# ---------------------------------------------------------------------------
# Differential property: incremental == full recheck


@settings(max_examples=50, deadline=None)
@given(
    base_orders=st.lists(st.integers(1, 8), max_size=6, unique=True),
    base_items=st.lists(
        st.tuples(st.integers(1, 8), st.integers(1, 3)), max_size=10, unique=True
    ),
    new_orders=st.lists(st.integers(9, 14), max_size=4, unique=True),
    new_items=st.lists(
        st.tuples(st.integers(1, 14), st.integers(4, 6)), max_size=8, unique=True
    ),
    del_order_keys=st.lists(st.integers(1, 8), max_size=4, unique=True),
    del_item_keys=st.lists(
        st.tuples(st.integers(1, 8), st.integers(1, 3)), max_size=6, unique=True
    ),
)
def test_incremental_matches_full_recheck(
    base_orders, base_items, new_orders, new_items, del_order_keys, del_item_keys
):
    """For random consistent initial states and random update batches,
    TINTIN's incremental decision equals the non-incremental one."""
    # build a CONSISTENT initial state: only orders that have items
    base_items = [(o, n) for (o, n) in base_items if o in base_orders]
    covered = {o for (o, _) in base_items}
    base_orders = [o for o in base_orders if o in covered]

    db = make_db()
    tintin = Tintin(db)
    tintin.install()
    tintin.add_assertion(AT_LEAST_ONE)
    db.insert_rows(
        "orders", [(o, o * 10) for o in base_orders], bypass_triggers=True
    )
    db.insert_rows(
        "lineitem", [(o, ln, 1) for (o, ln) in base_items], bypass_triggers=True
    )

    # captured update: deletes of existing rows, inserts of new ones
    for o, ln in del_item_keys:
        db.execute(f"DELETE FROM lineitem WHERE l_orderkey = {o} AND l_linenumber = {ln}")
    for o in del_order_keys:
        # only attempt deletes that respect the FK in the net state:
        # delete the order's remaining items too
        db.execute(f"DELETE FROM lineitem WHERE l_orderkey = {o}")
        db.execute(f"DELETE FROM orders WHERE o_orderkey = {o}")
    for o in new_orders:
        db.execute(f"INSERT INTO orders VALUES ({o}, {o * 10})")
    for o, ln in new_items:
        if o in new_orders or (o in base_orders and o not in del_order_keys):
            db.execute(f"INSERT INTO lineitem VALUES ({o}, {ln}, 2)")

    incremental = tintin.check_pending()

    # ground truth: apply on a scratch copy and run the full query
    scratch = make_db()
    scratch_t = Tintin(scratch)
    scratch_t.install()
    scratch_t.add_assertion(AT_LEAST_ONE)
    scratch.insert_rows(
        "orders", db.table("orders").rows_snapshot(), bypass_triggers=True
    )
    scratch.insert_rows(
        "lineitem", db.table("lineitem").rows_snapshot(), bypass_triggers=True
    )
    inserts = {
        "orders": db.table("ins_orders").rows_snapshot(),
        "lineitem": db.table("ins_lineitem").rows_snapshot(),
    }
    deletes = {
        "orders": db.table("del_orders").rows_snapshot(),
        "lineitem": db.table("del_lineitem").rows_snapshot(),
    }
    from repro.errors import ConstraintViolation

    try:
        scratch.apply_batch(inserts, deletes)
    except ConstraintViolation:
        return  # FK-invalid batch: rejected before assertion checking
    ground_truth_violated = bool(scratch_t.baseline.check_current_state(scratch))

    assert incremental.rejected == ground_truth_violated
