"""Shard routing, two-phase commit, and the Tintin-shaped facade.

One module-scoped two-shard engine serves most tests (spawning worker
processes is the expensive part); tests that mutate data use disjoint
key ranges so they stay independent.
"""

from __future__ import annotations

import time

import pytest

from repro import Database, Tintin
from repro.errors import ExecutionError, SessionExpired, ShardError
from repro.net.client import TintinClient
from repro.net.server import TintinServer
from repro.shard import ShardedTintin

ORDERS_DDL = "CREATE TABLE orders (id INTEGER PRIMARY KEY, total DOUBLE)"
ITEMS_DDL = (
    "CREATE TABLE items (order_id INTEGER, n INTEGER, "
    "PRIMARY KEY (order_id, n), "
    "FOREIGN KEY (order_id) REFERENCES orders (id))"
)
ASSERTION = (
    "CREATE ASSERTION atLeastOneItem CHECK (NOT EXISTS ("
    "SELECT * FROM orders AS o WHERE NOT EXISTS ("
    "SELECT * FROM items AS i WHERE i.order_id = o.id)))"
)
KEYS = {"orders": "id", "items": "order_id"}


def setup_schema(engine) -> None:
    engine.execute(ORDERS_DDL)
    engine.execute(ITEMS_DDL)
    engine.install()
    engine.add_assertion(ASSERTION)


@pytest.fixture(scope="module")
def sharded(tmp_path_factory):
    engine = ShardedTintin(
        str(tmp_path_factory.mktemp("sharded")),
        shards=2,
        shard_keys=KEYS,
    )
    setup_schema(engine)
    yield engine
    engine.close()


def order_ids(engine) -> list[int]:
    return sorted(
        row[0] for row in engine.query("SELECT * FROM orders AS o").rows
    )


def stage_order(session, key: int, total: float = 1.0) -> None:
    session.insert("orders", [(key, total)])
    session.insert("items", [(key, 1)])


# -- routing ----------------------------------------------------------------


class TestRouting:
    def test_single_shard_commit_skips_two_phase(self, sharded):
        session = sharded.create_session()
        stage_order(session, 100)  # shard 0
        before = sharded.stats.snapshot()
        result = session.commit()
        assert result.committed
        after = sharded.stats.snapshot()
        assert after["single_shard"] == before["single_shard"] + 1
        assert after["prepares"] == before["prepares"]
        assert 100 in order_ids(sharded)

    def test_cross_shard_commit_runs_two_phase(self, sharded):
        session = sharded.create_session()
        stage_order(session, 102)  # shard 0
        stage_order(session, 103)  # shard 1
        before = sharded.stats.snapshot()
        result = session.commit()
        assert result.committed
        assert result.group_size == 2
        after = sharded.stats.snapshot()
        assert after["cross_shard"] == before["cross_shard"] + 1
        assert after["prepares"] == before["prepares"] + 2
        assert {102, 103} <= set(order_ids(sharded))

    def test_cross_shard_violation_aborts_every_participant(self, sharded):
        """Order 105 (shard 1) ships without an item: shard 1 votes
        no, and shard 0's tentatively applied slice must roll back."""
        session = sharded.create_session()
        session.insert("orders", [(104, 1.0), (105, 1.0)])
        session.insert("items", [(104, 1)])  # nothing for 105
        result = session.commit()
        assert not result.committed
        assert result.violations or result.constraint_error
        ids = order_ids(sharded)
        assert 104 not in ids and 105 not in ids

    def test_expired_deadline_is_a_retriable_verdict(self, sharded):
        session = sharded.create_session()
        stage_order(session, 106)
        result = session.commit(deadline=time.monotonic() - 1.0)
        assert not result.committed
        assert result.deadline_expired
        assert 106 not in order_ids(sharded)

    def test_scatter_query_unions_all_shards(self, sharded):
        session = sharded.create_session()
        stage_order(session, 108)
        stage_order(session, 109)
        assert session.commit().committed
        ids = order_ids(sharded)
        assert {108, 109} <= set(ids)
        # both shards contributed (108 is even -> shard 0, 109 -> 1)

    def test_dml_through_router_execute_is_refused(self, sharded):
        with pytest.raises(ExecutionError, match="session"):
            sharded.execute("INSERT INTO orders VALUES (1, 1.0)")

    def test_select_through_execute_scatters(self, sharded):
        result = sharded.execute("SELECT * FROM orders AS o")
        assert hasattr(result, "rows")


# -- the session facade -----------------------------------------------------


class TestShardSessions:
    def test_staged_rows_validate_against_the_mirror(self, sharded):
        session = sharded.create_session()
        with pytest.raises(Exception):
            session.insert("orders", [("not-an-int", 1.0, "extra")])

    def test_discard_drops_staging(self, sharded):
        session = sharded.create_session()
        stage_order(session, 110)
        assert session.discard() == 2
        assert session.commit().committed  # empty commit
        assert 110 not in order_ids(sharded)

    def test_expired_session_refuses_everything(self, sharded):
        session = sharded.create_session()
        session.expire()
        with pytest.raises(SessionExpired):
            session.insert("orders", [(1, 1.0)])
        with pytest.raises(SessionExpired):
            session.commit()

    def test_manager_tracks_active_sessions(self, sharded):
        before = sharded.sessions.active_count
        session = sharded.create_session()
        assert sharded.sessions.active_count == before + 1
        session.expire()
        assert sharded.sessions.active_count == before

    def test_session_execute_allows_select_only(self, sharded):
        session = sharded.create_session()
        assert hasattr(
            session.execute("SELECT * FROM orders AS o"), "rows"
        )
        with pytest.raises(ExecutionError):
            session.execute("DELETE FROM orders")


# -- observability ----------------------------------------------------------


class TestShardObservability:
    def test_per_shard_metrics_are_labelled(self, sharded):
        lines = sharded.metrics_collectors[0].collect()
        assert any('shard="0"' in line for line in lines)
        assert any('shard="1"' in line for line in lines)
        assert all(line.startswith("tintin_shard_") for line in lines)

    def test_single_shard_commit_emits_a_shard_span(self, sharded):
        from repro.obs.trace import RecordingTracer

        tracer = RecordingTracer()
        sharded.set_tracer(tracer)
        try:
            session = sharded.create_session()
            stage_order(session, 114)  # shard 0
            obs = sharded._make_obs()
            assert session.commit(obs=obs).committed
            obs.finish("committed")
        finally:
            sharded.set_tracer(None)
        spans = [s for s in tracer.spans() if s.name == "shard.commit"]
        assert len(spans) == 1
        assert spans[0].attrs["shard"] == "0"

    def test_metrics_collector_skips_a_busy_shard(self, sharded):
        """A scrape never blocks on a shard mid-commit: a held routing
        lock means that shard is simply absent from this scrape."""
        import threading

        handle = sharded.handles[0]
        held = threading.Event()
        release = threading.Event()

        def hold() -> None:  # the routing lock is re-entrant, so a
            with handle.lock:  # *different* thread must hold it
                held.set()
                release.wait(5.0)

        holder = threading.Thread(target=hold)
        holder.start()
        try:
            assert held.wait(5.0)
            lines = sharded.metrics_collectors[0].collect()
        finally:
            release.set()
            holder.join()
        assert not any('shard="0"' in line for line in lines)
        assert any('shard="1"' in line for line in lines)

    def test_two_phase_emits_prepare_and_decide_spans(self, sharded):
        from repro.obs.trace import RecordingTracer

        tracer = RecordingTracer()
        sharded.set_tracer(tracer)
        try:
            session = sharded.create_session()
            stage_order(session, 112)
            stage_order(session, 113)
            obs = sharded._make_obs()
            assert session.commit(obs=obs).committed
            obs.finish("committed")
        finally:
            sharded.set_tracer(None)
        names = [span.name for span in tracer.spans()]
        assert names.count("prepare") == 2
        assert names.count("decide") == 2
        shards = {
            span.attrs.get("shard")
            for span in tracer.spans()
            if span.name == "prepare"
        }
        assert shards == {"0", "1"}


# -- admin operations -------------------------------------------------------


class TestAdmin:
    def test_checkpoint_broadcasts_to_every_shard(self, sharded):
        session = sharded.create_session()
        stage_order(session, 116)
        stage_order(session, 117)
        assert session.commit().committed
        sharded.checkpoint()  # nothing in doubt: every shard accepts
        assert {116, 117} <= set(order_ids(sharded))

    def test_healthy_restart_preserves_committed_state(self, sharded):
        session = sharded.create_session()
        stage_order(session, 118)  # shard 0
        assert session.commit().committed
        before = sharded.stats.snapshot()["restarts"]
        hello = sharded.restart_shard(0)
        assert hello["in_doubt"] == []
        assert sharded.stats.snapshot()["restarts"] == before + 1
        assert 118 in order_ids(sharded)

    def test_sweeper_hooks_are_noops(self, sharded):
        sharded.sessions.start_sweeper(0.01)
        assert not sharded.sessions.sweeper_running
        sharded.sessions.stop_sweeper()

    def test_session_delete_stages_validated_rows(self, sharded):
        session = sharded.create_session()
        stage_order(session, 120)
        assert session.commit().committed
        session = sharded.create_session()
        session.delete("items", [(120, 1)])
        session.delete("orders", [(120, 1.0)])
        assert session.commit().committed
        assert 120 not in order_ids(sharded)


# -- serving a sharded engine over the network front end --------------------


def test_tintin_server_serves_a_sharded_engine(tmp_path):
    engine = ShardedTintin(
        str(tmp_path / "served"), shards=2, shard_keys=KEYS
    )
    try:
        setup_schema(engine)
        server = TintinServer(engine, port=0).start()
        try:
            client = TintinClient(*server.address)
            client.insert("orders", [(20, 5.0), (21, 6.0)])
            client.insert("items", [(20, 1), (21, 1)])
            reply = client.commit()
            assert reply["committed"]
            client.close()
            page = server.render_metrics()
            assert "tintin_router_commits" in page
            assert 'tintin_shard_commits{shard="0"}' in page
        finally:
            server.shutdown()
    finally:
        engine.close()


# -- sequential vs sharded differential -------------------------------------


def test_sharded_execution_matches_sequential_reference(tmp_path):
    """The same commit schedule — single-shard, cross-shard and
    violating batches interleaved — must leave a sharded engine with
    exactly the rows a plain sequential engine keeps."""
    db = Database("reference")
    db.execute(ORDERS_DDL)
    db.execute(ITEMS_DDL)
    reference = Tintin(db)
    reference.install()
    reference.add_assertion(ASSERTION)

    sharded = ShardedTintin(
        str(tmp_path / "diff"), shards=4, shard_keys=KEYS
    )
    try:
        setup_schema(sharded)
        schedule = [
            {"orders": [(n, float(n))], "items": [(n, 1)]}
            for n in range(1, 9)  # single-shard commits
        ]
        schedule.append(  # cross-shard, all four shards, valid
            {
                "orders": [(10, 1.0), (11, 1.0), (12, 1.0), (13, 1.0)],
                "items": [(10, 1), (11, 1), (12, 1), (13, 1)],
            }
        )
        schedule.append(  # cross-shard, violating (15 has no item)
            {"orders": [(14, 1.0), (15, 1.0)], "items": [(14, 1)]}
        )
        schedule.append(  # duplicate key 3 -> engine constraint error
            {"orders": [(3, 99.0)], "items": [(3, 9)]}
        )
        verdicts = []
        for inserts in schedule:
            ref_session = reference.create_session()
            shard_session = sharded.create_session()
            for table, rows in inserts.items():
                ref_session.insert(table, rows)
                shard_session.insert(table, rows)
            ref_result = ref_session.commit()
            shard_result = shard_session.commit()
            assert ref_result.committed == shard_result.committed, inserts
            verdicts.append(shard_result.committed)
        assert verdicts.count(False) == 2  # both rejections exercised
        expected = sorted(
            row[0]
            for row in db.execute("SELECT * FROM orders AS o").rows
        )
        assert order_ids(sharded) == expected
    finally:
        sharded.close()
