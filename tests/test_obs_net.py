"""Observability over the wire: trace ids surviving the round trip,
the Prometheus /metrics page, and the JSON metrics surfaces."""

import json
import re
import socket

import pytest

from repro.core import Tintin
from repro.minidb import Database
from repro.net import TintinClient
from repro.obs import RecordingTracer

SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.e+-]+(Inf)?$'
)


def parse_prometheus(text: str) -> dict:
    """{name: {label_text: value}}; asserts every line is well-formed."""
    samples: dict = {}
    for line in text.splitlines():
        if not line or line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            assert parts[3] in ("counter", "gauge", "histogram"), line
            continue
        assert SAMPLE_LINE.match(line), f"malformed sample: {line!r}"
        body, value = line.rsplit(" ", 1)
        if "{" in body:
            name, labels = body.split("{", 1)
            labels = "{" + labels
        else:
            name, labels = body, ""
        samples.setdefault(name, {})[labels] = float(value)
    return samples


def http_get(address, path):
    """One raw HTTP/1.0 GET; returns (status_line, headers, body)."""
    with socket.create_connection(address, timeout=5) as sock:
        sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    head, _, body = b"".join(chunks).partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    headers = {}
    for line in lines[1:]:
        key, _, val = line.partition(": ")
        headers[key.lower()] = val
    return lines[0], headers, body


def make_engine():
    db = Database("obsnet")
    db.execute("CREATE TABLE items (id INT NOT NULL, qty INT)")
    tintin = Tintin(db)
    tintin.install()
    tintin.add_assertion(
        "CREATE ASSERTION positiveQty CHECK (NOT EXISTS ("
        "SELECT * FROM items AS i WHERE i.qty < 0))"
    )
    return tintin


@pytest.fixture
def traced_server():
    tintin = make_engine()
    tracer = RecordingTracer()
    server = tintin.listen(tracer=tracer)
    yield server, tracer
    if not server._stopped.is_set():
        server.shutdown(drain_timeout=5)


@pytest.fixture
def plain_server():
    server = make_engine().listen()
    yield server
    if not server._stopped.is_set():
        server.shutdown(drain_timeout=5)


class TestTraceRoundTrip:
    def test_client_chosen_trace_id_survives_the_wire(self, traced_server):
        server, tracer = traced_server
        trace_id = "feedc0de12345678"
        with TintinClient(*server.address) as client:
            client.insert("items", [(1, 5)])
            verdict = client.commit(trace=trace_id)
        assert verdict["committed"]
        assert verdict["trace_id"] == trace_id
        assert client.last_trace_id == trace_id
        spans = tracer.spans(trace_id)
        assert spans, "server recorded no spans under the client's id"
        names = {s.name for s in spans}
        assert {"commit", "admission.wait", "queue.wait", "validate",
                "apply"} <= names

    def test_server_allocates_an_id_for_trace_true(self, traced_server):
        server, tracer = traced_server
        with TintinClient(*server.address) as client:
            client.insert("items", [(2, 5)])
            verdict = client.commit(trace=True)
        trace_id = verdict["trace_id"]
        assert re.fullmatch(r"[0-9a-f]{16}", trace_id)
        assert tracer.spans(trace_id)

    def test_remote_trace_reconstructs_the_full_stage_breakdown(
        self, traced_server
    ):
        server, tracer = traced_server
        with TintinClient(*server.address) as client:
            client.insert("items", [(3, 5)])
            verdict = client.commit(trace=True)
        spans = tracer.spans(verdict["trace_id"])
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1
        root = roots[0]
        assert root.attrs["verdict"] == "committed"
        ids = {s.span_id for s in spans}
        for s in spans:
            if s.parent_id is not None:
                assert s.parent_id in ids
        # direct stages sum to ~the end-to-end commit latency
        children = [s for s in spans if s.parent_id == root.span_id]
        covered = sum(s.duration for s in children)
        assert covered <= root.duration + 0.05
        assert root.duration - covered < 0.25

    def test_untraced_commit_on_untraced_server_has_no_trace_id(
        self, plain_server
    ):
        with TintinClient(*plain_server.address) as client:
            client.insert("items", [(4, 5)])
            verdict = client.commit()
        assert "trace_id" not in verdict


class TestPrometheusMetrics:
    def test_metrics_page_parses_and_has_commit_histogram(
        self, plain_server
    ):
        with TintinClient(*plain_server.address) as client:
            client.insert("items", [(1, 5)])
            assert client.commit()["committed"]
        status, headers, body = http_get(plain_server.address, "/metrics")
        assert "200" in status
        assert headers["content-type"].startswith("text/plain")
        samples = parse_prometheus(body.decode())
        buckets = samples["tintin_commit_seconds_bucket"]
        committed = {
            k: v for k, v in buckets.items() if 'verdict="committed"' in k
        }
        assert committed, "no commit-latency series for the committed verdict"
        inf = [v for k, v in committed.items() if 'le="+Inf"' in k]
        assert inf == [1.0]
        assert samples["tintin_commit_seconds_count"][
            '{verdict="committed"}'
        ] == 1.0

    def test_metrics_page_covers_every_subsystem(self, plain_server):
        with TintinClient(*plain_server.address) as client:
            client.insert("items", [(1, 5)])
            client.commit()
            client.query("SELECT * FROM items")
            # scrape while the session is still open so the live
            # gauges have something to show
            _, _, body = http_get(plain_server.address, "/metrics")
        samples = parse_prometheus(body.decode())
        assert samples["tintin_scheduler_commits"][""] >= 1
        assert samples["tintin_admission_completed"][""] >= 1
        assert samples["tintin_server_requests_total"][""] >= 1
        assert samples["tintin_sessions_active"][""] >= 1
        request_counts = samples["tintin_request_seconds_count"]
        assert request_counts['{type="commit"}'] == 1.0
        assert request_counts['{type="query"}'] >= 1.0

    def test_rejected_commit_lands_in_the_violation_series(
        self, plain_server
    ):
        with TintinClient(*plain_server.address) as client:
            client.insert("items", [(1, -5)])
            verdict = client.commit()
        assert not verdict["committed"]
        _, _, body = http_get(plain_server.address, "/metrics")
        samples = parse_prometheus(body.decode())
        assert samples["tintin_commit_seconds_count"][
            '{verdict="violation"}'
        ] == 1.0

    def test_json_metrics_moved_to_metrics_json(self, plain_server):
        status, headers, body = http_get(
            plain_server.address, "/metrics.json"
        )
        assert "200" in status
        assert headers["content-type"].startswith("application/json")
        payload = json.loads(body)
        assert {"server", "admission", "scheduler", "sessions"} <= set(
            payload
        )

    def test_binary_metrics_frame_still_answers_json(self, plain_server):
        with TintinClient(*plain_server.address) as client:
            payload = client.metrics()
        assert payload["server"]["connections_open"] >= 1
        assert "scheduler" in payload


class TestSlowCommitConfig:
    def test_listen_forwards_slow_commit_threshold(self):
        tintin = make_engine()
        server = tintin.listen(slow_commit_seconds=2.5)
        try:
            assert tintin.slow_commit_seconds == 2.5
        finally:
            server.shutdown(drain_timeout=5)
