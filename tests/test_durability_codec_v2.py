"""WAL format v2: the binary row codec, differentially against v1 JSON.

The satellite contract (ISSUE 5): arbitrary rows — unicode, None,
booleans, arbitrary-precision integers, floats including ±infinity —
encode through the v2 binary codec and decode to values *byte-for-byte
equal* to what the v1 JSON codec's round trip produces (same value,
same Python type, same float bit pattern), NaN is rejected by both,
and a corpus of hand-picked adversarial payloads (empty rows, 1-byte
strings, width boundaries, >64-bit integers) pins the edges.  Frame-
level behavior is covered too: the two formats mix freely in one log,
a v1-header log continues in v2 after upgrade, and damaged binary
frames are detected, never mis-parsed.
"""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.durability import (
    BATCH_V2_TAG,
    WAL_MAGIC,
    WAL_MAGIC_V1,
    WriteAheadLog,
    batch_counts,
    batch_payload,
    decode_batch,
    decode_batch_v2,
    decode_records,
    encode_batch_v2,
    encode_record,
    read_wal,
    rows_from_payload,
)
from repro.errors import DurabilityError

# -- ordinal fixture --------------------------------------------------------

TABLES = ["orders", "lineitem", "ünïcode_tbl", "t3", "t4", "t5", "t6", "t7"]
_ORDINALS = {name.lower(): i for i, name in enumerate(TABLES)}


def ordinal_of(name: str):
    return _ORDINALS.get(name.lower())


# -- strategies -------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**80), max_value=2**80),  # beyond i64 too
    st.floats(allow_nan=False),  # ±inf included: legal DOUBLE values
    st.text(max_size=40),
)

#: uniform-arity tables (the engine's rows), arity 1..4
def _rows(values, max_rows=8):
    return st.integers(min_value=1, max_value=4).flatmap(
        lambda arity: st.lists(
            st.tuples(*([values] * arity)), min_size=0, max_size=max_rows
        )
    )


event_dicts = st.dictionaries(st.sampled_from(TABLES), _rows(scalars), max_size=3)

#: numeric-only rows: these must take the fixed-stride fast path
numeric_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),
)
numeric_event_dicts = st.dictionaries(
    st.sampled_from(TABLES), _rows(numeric_scalars), max_size=3
)

counts_dicts = st.one_of(
    st.none(),
    st.dictionaries(
        st.sampled_from(TABLES),
        # u32 is the v2 counts range; a count beyond it pushes the
        # whole record to the v1 fallback (pinned in its own test)
        st.integers(min_value=0, max_value=2**32 - 1),
        max_size=3,
    ),
)


# -- byte-for-byte equality -------------------------------------------------


def assert_identical(v2_value, v1_value):
    """Equality that a plain ``==`` is too forgiving for: the types
    must match (True != 1 here) and floats must match bit-for-bit
    (0.0 != -0.0 here)."""
    assert type(v2_value) is type(v1_value), (v2_value, v1_value)
    if isinstance(v2_value, float):
        assert struct.pack(">d", v2_value) == struct.pack(">d", v1_value)
    else:
        assert v2_value == v1_value


def assert_events_identical(v2_events: dict, v1_events: dict):
    assert set(v2_events) == set(v1_events)
    for table, v2_rows in v2_events.items():
        v1_rows = v1_events[table]
        assert len(v2_rows) == len(v1_rows)
        for v2_row, v1_row in zip(v2_rows, v1_rows):
            assert isinstance(v2_row, tuple)
            assert len(v2_row) == len(v1_row)
            for a, b in zip(v2_row, v1_row):
                assert_identical(a, b)


def v1_round_trip(seq, inserts, deletes, counts=None):
    """Encode + decode through the v1 JSON codec — the reference."""
    record = {
        "type": "batch",
        "seq": seq,
        **batch_payload(inserts, deletes, counts),
    }
    decoded, length, tail = decode_records(encode_record(record))
    assert tail is None and len(decoded) == 1
    return decode_batch(decoded[0]), decoded[0].get("counts")


def v2_round_trip(seq, inserts, deletes, counts=None):
    """Encode + decode through the v2 binary codec (and check that the
    frame scanner reads the same seq back)."""
    payload = encode_batch_v2(seq, inserts, deletes, counts, ordinal_of)
    assert payload is not None, "batch unexpectedly outside v2's range"
    records, _, tail = decode_records(_framed(payload))
    assert tail is None
    assert records[0]["seq"] == seq
    assert records[0]["binary"]
    # canonical table names resolve through the ordinal list
    got_ins, got_del, got_counts = decode_batch_v2(payload, TABLES)
    return (got_ins, got_del), got_counts


# -- the differential property ----------------------------------------------


@settings(max_examples=250, deadline=None)
@given(event_dicts, event_dicts, counts_dicts)
def test_codec_differential(inserts, deletes, counts):
    (v2_ins, v2_del), v2_counts = v2_round_trip(7, inserts, deletes, counts)
    (v1_ins, v1_del), v1_counts = v1_round_trip(7, inserts, deletes, counts)
    assert_events_identical(v2_ins, v1_ins)
    assert_events_identical(v2_del, v1_del)
    assert v2_counts == v1_counts


@settings(max_examples=150, deadline=None)
@given(numeric_event_dicts, numeric_event_dicts)
def test_codec_differential_numeric_fast_path(inserts, deletes):
    """All-numeric batches (the OLTP shape the fixed-stride mode
    exists for) must still decode identically to v1."""
    (v2_ins, v2_del), _ = v2_round_trip(1, inserts, deletes)
    (v1_ins, v1_del), _ = v1_round_trip(1, inserts, deletes)
    assert_events_identical(v2_ins, v1_ins)
    assert_events_identical(v2_del, v1_del)


@settings(max_examples=150, deadline=None)
@given(event_dicts, event_dicts)
def test_codec_framed_round_trip_through_scanner(inserts, deletes):
    """A framed v2 record survives the generic frame scanner exactly
    like a JSON record does."""
    payload = encode_batch_v2(3, inserts, deletes, None, ordinal_of)
    frame = struct.pack(">II", len(payload), __import__("zlib").crc32(payload)) + payload
    records, valid_length, tail = decode_records(frame)
    assert tail is None
    assert valid_length == len(frame)
    got_ins, got_del = decode_batch(records[0], TABLES)
    (ref_ins, ref_del), _ = v1_round_trip(3, inserts, deletes)
    assert_events_identical(got_ins, ref_ins)
    assert_events_identical(got_del, ref_del)


# -- adversarial corpus -----------------------------------------------------

ADVERSARIAL_ROWS = [
    [],  # no rows at all
    [()],  # one zero-arity row (tagged mode: struct cannot stride it)
    [("",)],  # empty string
    [("x",)],  # 1-byte string
    [("\x00",)],  # NUL byte in a string
    [("ü" * 1000,)],  # multi-byte UTF-8, multi-byte varint length
    [("𐍈𝄞",)],  # astral-plane code points
    [("a" * 70000,)],  # length needs a 3-byte varint
    [(None,)],
    [(True,), (False,)],
    [(0,), (-1,)],
    [(127,), (-128,)],  # i8 boundaries
    [(128,), (-129,)],  # force i16
    [(32767,), (-32768,)],  # i16 boundaries
    [(32768,), (-32769,)],  # force i32
    [(2**31 - 1,), (-(2**31),)],  # i32 boundaries
    [(2**31,), (-(2**31) - 1,)],  # force i64
    [(2**63 - 1,), (-(2**63),)],  # i64 boundaries (fixed mode's edge)
    [(2**63,), (-(2**63) - 1,)],  # beyond i64: tagged varint
    [(2**200, -(2**200))],  # arbitrary precision
    [(float("inf"), float("-inf"))],
    [(0.0,), (-0.0,)],  # signed zero must keep its sign bit
    [(5e-324,), (1.7976931348623157e308,)],  # subnormal + max double
    [(1, 2.5, "mixed", None, True)],  # every tag in one row
    [(1,), (2.5,)],  # mixed column type: must fall to tagged mode
    [tuple(range(255))],  # max encodable arity
]


@pytest.mark.parametrize("rows", ADVERSARIAL_ROWS, ids=repr)
def test_adversarial_payloads(rows):
    inserts = {"orders": rows}
    (v2_ins, v2_del), _ = v2_round_trip(9, inserts, {})
    (v1_ins, v1_del), _ = v1_round_trip(9, inserts, {})
    assert_events_identical(v2_ins, v1_ins)
    assert_events_identical(v2_del, v1_del)


def test_nan_rejected_by_both_codecs():
    bad = {"orders": [(float("nan"),)]}
    with pytest.raises(DurabilityError):
        encode_batch_v2(1, bad, {}, None, ordinal_of)
    with pytest.raises(DurabilityError):
        batch_payload(bad, {})
    # NaN smuggled into a numeric column (fixed-mode candidate) too
    bad_fixed = {"orders": [(1.5,), (float("nan"),)]}
    with pytest.raises(DurabilityError):
        encode_batch_v2(1, bad_fixed, {}, None, ordinal_of)


def test_oversized_arity_falls_back_to_v1():
    wide = {"orders": [tuple(range(256))]}  # arity > u8
    assert encode_batch_v2(1, wide, {}, None, ordinal_of) is None


def test_unknown_table_falls_back_to_v1():
    assert (
        encode_batch_v2(1, {"no_such_table": [(1,)]}, {}, None, ordinal_of)
        is None
    )


def test_count_beyond_u32_falls_back_to_v1():
    # the fixed-width counts pair caps at 2^32-1 rows per table; a
    # bigger table is logged as a v1 JSON record instead
    ok = encode_batch_v2(
        1, {"orders": [(1,)]}, {}, {"orders": 2**32 - 1}, ordinal_of
    )
    assert ok is not None
    assert (
        encode_batch_v2(1, {"orders": [(1,)]}, {}, {"orders": 2**32}, ordinal_of)
        is None
    )


def test_unresolvable_ordinal_is_loud():
    payload = encode_batch_v2(1, {"t7": [(1,)]}, {}, None, ordinal_of)
    with pytest.raises(DurabilityError):
        decode_batch_v2(payload, TABLES[:3])  # catalog too small: ord 7
    # without a table list the ordinals come back raw (the scan-level
    # view); replay always passes the catalog's list
    ins, _, _ = decode_batch_v2(payload)
    assert ins == {7: [(1,)]}


# -- mixed logs and headers -------------------------------------------------


def test_v1_and_v2_frames_mix_in_one_log(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append("open", database="db")
    wal.append_batch({"orders": [(1, 2)]}, {}, ordinal_of=ordinal_of)
    wal.append("batch", **batch_payload({"orders": [(3, 4)]}, {}))  # forced v1
    wal.append_batch({"lineitem": [(5, None)]}, {}, ordinal_of=ordinal_of)
    wal.append_batch({"orders": [(6,)]}, {}, ordinal_of=None)  # no ordinals → v1
    wal.sync()
    wal.close()
    scan = read_wal(path)
    assert [r["type"] for r in scan.records] == ["open"] + ["batch"] * 4
    assert [bool(r.get("binary")) for r in scan.records] == [
        False,
        True,
        False,
        True,
        False,
    ]
    assert [r["seq"] for r in scan.records] == [1, 2, 3, 4, 5]
    assert decode_batch(scan.records[1], TABLES)[0] == {"orders": [(1, 2)]}
    assert decode_batch(scan.records[2])[0] == {"orders": [(3, 4)]}
    assert decode_batch(scan.records[3], TABLES)[0] == {"lineitem": [(5, None)]}


def test_v1_header_log_continues_in_v2(tmp_path):
    """The upgrade story: a log created by the v1 release keeps its
    header; the v2 release appends binary frames to it, and the whole
    thing reads back."""
    path = str(tmp_path / "wal.log")
    with open(path, "wb") as handle:
        handle.write(WAL_MAGIC_V1)
        handle.write(encode_record({"type": "open", "seq": 1, "database": "db"}))
        handle.write(
            encode_record(
                {"type": "batch", "seq": 2, **batch_payload({"orders": [(1,)]}, {})}
            )
        )
    wal = WriteAheadLog(path)  # reopen-for-append keeps the v1 header
    assert wal.last_seq == 2
    wal.append_batch({"orders": [(2,)]}, {}, ordinal_of=ordinal_of)
    wal.sync()
    wal.close()
    with open(path, "rb") as handle:
        assert handle.read(8) == WAL_MAGIC_V1  # header untouched
    scan = read_wal(path)
    assert [r["seq"] for r in scan.records] == [1, 2, 3]
    assert scan.records[2]["binary"]
    assert decode_batch(scan.records[2], TABLES)[0] == {"orders": [(2,)]}


def test_fresh_logs_carry_the_v2_header(tmp_path):
    path = str(tmp_path / "wal.log")
    WriteAheadLog(path).close()
    with open(path, "rb") as handle:
        assert handle.read(8) == WAL_MAGIC
    assert WAL_MAGIC != WAL_MAGIC_V1


# -- damage detection on binary frames --------------------------------------


def _framed(payload: bytes) -> bytes:
    import zlib

    return struct.pack(">II", len(payload), zlib.crc32(payload)) + payload


def test_corrupted_binary_frame_stops_the_scan(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append_batch({"orders": [(1, 2, 3)]}, {}, ordinal_of=ordinal_of)
    wal.append_batch({"orders": [(4, 5, 6)]}, {}, ordinal_of=ordinal_of)
    wal.sync()
    wal.close()
    raw = open(path, "rb").read()
    corrupted = bytearray(raw)
    corrupted[-2] ^= 0xFF  # flip a byte inside the second frame's payload
    with open(path, "wb") as handle:
        handle.write(bytes(corrupted))
    scan = read_wal(path)
    assert len(scan.records) == 1  # scanning stopped at the damage
    assert scan.tail_error == "checksum mismatch"


def test_wellformed_crc_with_malformed_binary_payload_is_detected():
    # a payload whose CRC is fine but whose body lies about its shape
    # (mode byte 9 does not exist): the scan's header parse accepts it
    # — a passing CRC means this is an encoder bug, not a torn write —
    # and the full decode refuses it loudly at replay time
    bogus = bytes([BATCH_V2_TAG, 1, 0, 1, 0, 9])
    records, valid_length, tail = decode_records(_framed(bogus))
    assert tail is None and len(records) == 1
    with pytest.raises(DurabilityError):
        decode_batch_v2(records[0]["payload"], TABLES)


def test_truncated_v2_header_stops_the_scan():
    # a frame torn inside the seq varint fails even the header parse
    bogus = bytes([BATCH_V2_TAG, 0xFF])
    records, valid_length, tail = decode_records(_framed(bogus))
    assert records == []
    assert tail == "undecodable payload"


def test_truncated_fixed_stride_block_is_detected():
    # a fixed-stride block claiming more rows than the payload holds
    good = encode_batch_v2(1, {"orders": [(1, 2)]}, {}, None, ordinal_of)
    bogus = good[:-1]  # drop the last row byte
    with pytest.raises(DurabilityError):
        decode_batch_v2(bogus, TABLES)
    # ...and trailing garbage past a complete decode is refused too
    with pytest.raises(DurabilityError):
        decode_batch_v2(good + b"\x00", TABLES)


def test_unknown_payload_format_byte_stops_the_scan():
    records, valid_length, tail = decode_records(_framed(b"\x99whatever"))
    assert records == []
    assert tail == "unknown payload format"


# -- the shape-cached fast path ---------------------------------------------
#
# The hot OLTP record shape — one fixed-stride insert block, no
# deletes, exactly one counts entry — decodes through a memoized
# header shape.  The fast and generic decoders must agree exactly.


def _fast_shape_payload(rows, count=42):
    payload = encode_batch_v2(
        9, {"lineitem": rows}, {}, {"lineitem": count}, ordinal_of
    )
    assert payload is not None
    return payload


@pytest.mark.parametrize("n_rows", [1, 2, 7, 127])
def test_fast_path_agrees_with_generic_decoder(n_rows):
    from repro.durability.wal import _decode_batch_body, _decode_batch_fast

    rows = [(1000 + k, 2, k, 1.5 * k, k % 2 == 0) for k in range(n_rows)]
    payload = _fast_shape_payload(rows)
    for names in (TABLES, None):
        fast = _decode_batch_fast(payload, 1, len(payload), names)
        assert fast is not None, "the OLTP shape must take the fast path"
        generic = _decode_batch_body(payload, 1, len(payload), names)
        assert fast == generic
    ins, dele, counts = decode_batch_v2(payload, TABLES)
    assert ins == {"lineitem": rows}
    assert dele == {}
    assert counts == {"lineitem": 42}


def test_fast_path_declines_other_shapes():
    from repro.durability.wal import _decode_batch_fast

    declined = [
        # no counts section
        encode_batch_v2(1, {"orders": [(1, 2)]}, {}, None, ordinal_of),
        # a delete block
        encode_batch_v2(
            1, {"orders": [(1,)]}, {"orders": [(2,)]}, {"orders": 5}, ordinal_of
        ),
        # two counts entries
        encode_batch_v2(
            1,
            {"orders": [(1,)], "lineitem": [(2,)]},
            {},
            {"orders": 1, "lineitem": 1},
            ordinal_of,
        ),
        # tagged mode (strings)
        encode_batch_v2(1, {"orders": [("x",)]}, {}, {"orders": 1}, ordinal_of),
    ]
    for payload in declined:
        assert payload is not None
        fast = _decode_batch_fast(payload, 1, len(payload), TABLES)
        assert fast is None  # generic path decodes these
        decode_batch_v2(payload, TABLES)  # ...and does so successfully


def test_multi_entry_counts_resolution_and_bounds():
    payload = encode_batch_v2(
        1,
        {"orders": [(1,)], "lineitem": [(2,)]},
        {},
        {"orders": 10, "lineitem": 20},
        ordinal_of,
    )
    _, _, counts = decode_batch_v2(payload, TABLES)
    assert counts == {TABLES[0]: 10, TABLES[1]: 20}
    _, _, raw = decode_batch_v2(payload)
    assert raw == {0: 10, 1: 20}
    # counts referencing an ordinal beyond the catalog are loud
    tall = encode_batch_v2(1, {"t7": [(1,)]}, {}, {"t7": 3}, ordinal_of)
    with pytest.raises(DurabilityError):
        decode_batch_v2(tall, TABLES[:3])
    # ...including when only the COUNTS ordinal is unresolvable (a
    # hand-corrupted pair: the last 5 payload bytes are ord + u32)
    bad = bytearray(_fast_shape_payload([(1, 2, 3, 4.0, True)]))
    bad[-5] = 100
    with pytest.raises(DurabilityError):
        decode_batch_v2(bytes(bad), TABLES)
