#!/usr/bin/env python3
"""Quickstart: assertions on a tiny project-management schema.

Demonstrates the core workflow in under a minute:

1. create a database and tables;
2. install TINTIN (event tables + triggers + safeCommit);
3. add an assertion ("every project has at least one assignee");
4. run transactions — valid ones commit, violating ones are rejected
   with the offending tuples.

Run:  python examples/quickstart.py
"""

from repro import Database, Tintin


def main() -> None:
    db = Database("quickstart")
    db.execute(
        "CREATE TABLE project ("
        "  p_id INTEGER PRIMARY KEY,"
        "  p_name VARCHAR(40) NOT NULL)"
    )
    db.execute(
        "CREATE TABLE assignment ("
        "  a_project INTEGER NOT NULL,"
        "  a_person VARCHAR(40) NOT NULL,"
        "  PRIMARY KEY (a_project, a_person),"
        "  FOREIGN KEY (a_project) REFERENCES project (p_id))"
    )

    tintin = Tintin(db)
    tintin.install()
    tintin.add_assertion(
        "CREATE ASSERTION everyProjectStaffed CHECK (NOT EXISTS ("
        "SELECT * FROM project AS p WHERE NOT EXISTS ("
        "SELECT * FROM assignment AS a WHERE a.a_project = p.p_id)))"
    )
    print(tintin.describe())
    print()

    # --- transaction 1: a staffed project -------------------------------
    db.execute("INSERT INTO project VALUES (1, 'Rosetta')")
    db.execute("INSERT INTO assignment VALUES (1, 'Ada')")
    result = tintin.safe_commit()
    print(f"transaction 1 (staffed project):   {result}")

    # --- transaction 2: a project with nobody on it ---------------------
    db.execute("INSERT INTO project VALUES (2, 'Ghost ship')")
    result = tintin.safe_commit()
    print(f"transaction 2 (unstaffed project): {result}")
    for violation in result.violations:
        print(f"  witnesses: {violation.rows}")

    # --- transaction 3: removing the last assignee ----------------------
    db.execute("DELETE FROM assignment WHERE a_person = 'Ada'")
    result = tintin.safe_commit()
    print(f"transaction 3 (remove last assignee): {result}")

    # --- transaction 4: replace the assignee atomically -----------------
    db.execute("DELETE FROM assignment WHERE a_person = 'Ada'")
    db.execute("INSERT INTO assignment VALUES (1, 'Grace')")
    result = tintin.safe_commit()
    print(f"transaction 4 (swap assignee):     {result}")

    print()
    print("final state:")
    for row in db.query(
        "SELECT p.p_name, a.a_person FROM project AS p, assignment AS a "
        "WHERE a.a_project = p.p_id"
    ):
        print(f"  {row[0]}: {row[1]}")


if __name__ == "__main__":
    main()
