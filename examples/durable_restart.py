"""Durable restart demo: commit concurrently, crash, reopen, verify.

Walks the full durability story:

1. open a durable engine (``Tintin.open``) and define a schema — the
   DDL goes straight into the write-ahead log;
2. install the capture machinery and an assertion (logged too: the
   recovery path re-runs the whole compilation pipeline from the
   original ``CREATE ASSERTION`` text);
3. commit through several concurrent sessions — the group-commit
   scheduler appends one combined WAL record per commit group and
   shares one fsync across the group;
4. "crash" by dropping the engine object without ``close()`` — the
   only durable state is what the WAL and checkpoint hold;
5. reopen from disk and show every committed row and every installed
   assertion intact (and a staged-but-uncommitted update gone, as the
   transaction boundary demands).

Run:  python examples/durable_restart.py
"""

from __future__ import annotations

import shutil
import tempfile
import threading

from repro import Tintin

WORKERS = 4
ORDERS_PER_WORKER = 5


def main() -> None:
    directory = tempfile.mkdtemp(prefix="tintin-durable-")
    print(f"durability directory: {directory}\n")

    # -- 1+2: a durable engine with schema + assertion ------------------
    tintin = Tintin.open(directory, durability="batch")
    db = tintin.db
    db.execute("CREATE TABLE orders (id INTEGER PRIMARY KEY, total DOUBLE)")
    db.execute(
        "CREATE TABLE items (order_id INTEGER, n INTEGER, "
        "PRIMARY KEY (order_id, n), "
        "FOREIGN KEY (order_id) REFERENCES orders (id))"
    )
    tintin.install()
    tintin.add_assertion(
        "CREATE ASSERTION atLeastOneItem CHECK (NOT EXISTS ("
        "SELECT * FROM orders AS o WHERE NOT EXISTS ("
        "SELECT * FROM items AS i WHERE i.order_id = o.id)))"
    )

    # -- 3: concurrent sessions commit through the scheduler ------------
    def client(worker: int) -> None:
        session = tintin.create_session()
        for round_no in range(ORDERS_PER_WORKER):
            key = worker * 1000 + round_no
            session.insert("orders", [(key, 10.0 + worker)])
            session.insert("items", [(key, 1)])
            result = session.commit()
            assert result.committed, result

    threads = [
        threading.Thread(target=client, args=(w,)) for w in range(WORKERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    committed = len(db.table("orders"))
    stats = tintin.sessions.scheduler.stats
    print(
        f"committed {committed} orders across {WORKERS} concurrent "
        f"sessions\n"
        f"WAL records appended: {stats.wal_appends}, fsyncs issued: "
        f"{stats.wal_fsyncs} "
        f"(group commit: {stats.commits / max(stats.wal_fsyncs, 1):.1f} "
        f"commits per fsync)"
    )

    # a staged-but-never-committed update: volatile by design
    straggler = tintin.create_session()
    straggler.insert("orders", [(9999, 99.0)])
    print("one session stages order 9999 but never commits it")

    expected = sorted(db.table("orders").rows_snapshot())

    # -- 4: crash --------------------------------------------------------
    print("\n*** simulated crash: engine object dropped, no close() ***\n")
    del tintin, db, straggler

    # -- 5: reopen from disk --------------------------------------------
    reopened = Tintin.open(directory)
    print(f"recovery: {reopened.recovery_report}")
    recovered = sorted(reopened.db.table("orders").rows_snapshot())
    assert recovered == expected, "recovered rows differ!"
    assert list(reopened.assertions) == ["atLeastOneItem"]
    assert not reopened.db.table("orders").contains_row((9999, 99.0))
    check = reopened.full_check_commit()
    assert check.committed, check
    print(
        f"all {len(recovered)} committed orders restored, assertion "
        f"{list(reopened.assertions)[0]!r} reinstalled and holding, "
        "staged-but-uncommitted order 9999 correctly absent"
    )

    # the recovered engine is fully live: keep committing
    session = reopened.create_session()
    session.insert("orders", [(5000, 1.0)])
    session.insert("items", [(5000, 1)])
    assert session.commit().committed
    print("post-recovery commit accepted — the engine is live")

    reopened.close()  # final checkpoint: next open restores instantly
    shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
