"""Remote sessions over the network front end.

Starts a TINTIN server on a loopback port, runs remote sessions
through the binary protocol, then forces an overload to show
load shedding with ``retry_after`` handling, and finishes with a
graceful drain.

Run:  PYTHONPATH=src python examples/net_client.py
"""

import threading
import time

from repro.core import Tintin
from repro.errors import OverloadError
from repro.minidb import Database
from repro.net import FaultInjector, TintinClient


def build_engine() -> Tintin:
    db = Database("shop")
    db.execute("CREATE TABLE stock (sku INT NOT NULL, qty INT)")
    tintin = Tintin(db)
    tintin.install()
    tintin.add_assertion(
        "CREATE ASSERTION nonNegativeStock CHECK (NOT EXISTS ("
        "SELECT * FROM stock AS s WHERE s.qty < 0))"
    )
    return tintin


def main() -> None:
    tintin = build_engine()
    faults = FaultInjector()  # used below to force a tiny overload
    server = tintin.listen(max_depth=1, commit_workers=1, faults=faults)
    host, port = server.address
    print(f"server listening on {host}:{port}")

    # -- a normal remote session ------------------------------------------
    client = TintinClient(host, port, priority=1)
    print(f"connected: session {client.session_id}")
    client.insert("stock", [(1, 10), (2, 4)])
    verdict = client.commit(timeout=5.0)
    print(f"commit #1: committed={verdict['committed']} "
          f"applied={verdict['applied_rows']}")

    # read-your-writes plus the committed state, over the wire
    client.execute("UPDATE stock SET qty = qty - 1 WHERE sku = 1")
    rows = client.query("SELECT sku, qty FROM stock")
    print(f"staged view: {rows.rows}")
    verdict = client.commit()
    print(f"commit #2: committed={verdict['committed']}")

    # a rejected update: the assertion stops negative stock
    client.execute("UPDATE stock SET qty = qty - 100 WHERE sku = 2")
    verdict = client.commit()
    print(f"commit #3: committed={verdict['committed']} "
          f"violations={verdict['violations']}")

    # -- forced overload ---------------------------------------------------
    # stall the scheduler for a moment so commits pile into the
    # (deliberately tiny) admission queue; the surplus is shed with a
    # retry-after hint instead of queueing without bound
    faults.delay("scheduler.window", 0.4, times=1)
    holder = TintinClient(host, port)
    holder.insert("stock", [(3, 7)])
    background = threading.Thread(target=holder.commit)
    background.start()
    time.sleep(0.1)  # the holder now owns the only admission slot

    client.insert("stock", [(4, 1)])
    try:
        client.commit(retry=False)  # see the raw overload verdict
    except OverloadError as exc:
        print(f"shed: {exc} (retry_after={exc.retry_after:.3f}s)")
        time.sleep(exc.retry_after)
        # the retry-aware path does this loop for you:
        verdict = client.commit(timeout=5.0)
        print(f"retried commit: committed={verdict['committed']}")
    background.join()

    print(f"health: {client.health()}")
    shed = client.metrics()["admission"]["shed_total"]
    print(f"admission shed_total: {shed}")

    # -- graceful shutdown -------------------------------------------------
    client.close()
    holder.close()
    drained = server.shutdown()  # stop accepting, drain, close engine
    print(f"graceful shutdown drained cleanly: {drained}")
    final = tintin.db.query("SELECT sku, qty FROM stock").rows
    print(f"final state: {sorted(final)}")


if __name__ == "__main__":
    main()
