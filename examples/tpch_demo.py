#!/usr/bin/env python3
"""The paper's demo walkthrough (§3) on the TPC-H schema (Fig. 1).

Follows the demonstration script of the paper step by step:

1. build the TPC-H database and ask TINTIN for the auxiliary event
   tables and capture triggers (the paper's ``event_TPC`` database);
2. introduce SQL assertions of different complexity — TINTIN compiles
   them to denials, EDCs and stored violation views, and creates the
   ``safeCommit`` procedure;
3. apply updates mixing violating and non-violating ones, calling
   safeCommit after each to watch it commit or reject;
4. print the incremental-vs-full timing comparison of §4.

Run:  python examples/tpch_demo.py
"""

import time

from repro.core import Tintin
from repro.sqlparser import print_query
from repro.tpch import (
    AGGREGATE_ASSERTIONS,
    AT_LEAST_ONE_LINEITEM,
    COMPLEXITY_SUITE,
    UpdateGenerator,
    load_tpch,
    tpch_database,
)


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    banner("1. Build TPC and install the event capture (event_TPC)")
    db = tpch_database("TPC")
    data = load_tpch(db, scale=0.002, seed=42)
    print(f"loaded {data.total_rows} rows:")
    for table, count in sorted(data.counts().items()):
        print(f"  {table:10} {count:>7}")

    tintin = Tintin(db)
    captured = tintin.install()
    print(f"\ninstrumented tables: {', '.join(captured)}")
    event_tables = [
        t.schema.name for t in db.catalog.tables(namespace="event")
    ]
    print(f"event tables created: {', '.join(event_tables)}")

    banner("2. Introduce SQL assertions (compiled to EDC views)")
    for spec in COMPLEXITY_SUITE:
        assertion = tintin.add_assertion(spec.sql)
        print(
            f"  {spec.name:24} -> {len(assertion.denials)} denial(s), "
            f"{len(assertion.edcs)} EDC view(s)"
        )
    example = tintin.assertions[AT_LEAST_ONE_LINEITEM.name]
    print("\nthe running example's first stored view (paper §2):")
    print(" ", print_query(db.catalog.get_view(example.view_names[0]).query))

    banner("3. Apply updates and call safeCommit after each (paper §3)")
    generator = UpdateGenerator(db, seed=7)

    print("\n(a) a valid refresh: new orders with line items + old orders removed")
    generator.mixed_refresh(10).stage(db)
    result = db.call("safeCommit")
    print(f"    safeCommit -> {result}")

    print("\n(b) an order inserted WITHOUT any line item")
    generator.violating_order_without_lineitem().stage(db)
    result = db.call("safeCommit")
    print(f"    safeCommit -> {result}")
    for violation in result.violations:
        print(f"    violating tuples: {violation.rows}")

    print("\n(c) deleting every line item of an existing order")
    generator.violating_empty_an_order().stage(db)
    result = db.call("safeCommit")
    print(f"    safeCommit -> {result}")

    print("\n(d) a line item with quantity 0")
    generator.violating_negative_quantity().stage(db)
    result = db.call("safeCommit")
    print(f"    safeCommit -> {result}")

    banner("3b. Aggregate assertions (the paper's §5 future work)")
    for spec in AGGREGATE_ASSERTIONS:
        tintin.add_assertion(spec.sql)
        print(f"  installed {spec.name}: {spec.description}")

    print("\n(e) an order stuffed with more than 7 line items")
    generator.violating_too_many_items().stage(db)
    result = db.call("safeCommit")
    print(f"    safeCommit -> {result}")

    print("\n(f) an order whose quantities sum above 350")
    generator.violating_bulk_quantities().stage(db)
    result = db.call("safeCommit")
    print(f"    safeCommit -> {result}")

    banner("4. Efficiency: incremental vs non-incremental (paper §4)")
    generator.mixed_refresh(10).stage(db)
    start = time.perf_counter()
    check = tintin.check_pending()
    incremental = time.perf_counter() - start
    tintin.events.apply_pending()
    start = time.perf_counter()
    tintin.baseline.check_current_state(db)
    full = time.perf_counter() - start
    print(f"incremental check of {len(COMPLEXITY_SUITE)} assertions: {incremental * 1e3:8.2f} ms")
    print(f"full (non-incremental) check:                {full * 1e3:8.2f} ms")
    print(f"speedup: x{full / incremental:.0f}")
    print(
        f"(views executed: {check.checked_views}, skipped as trivially "
        f"empty: {check.skipped_views})"
    )


if __name__ == "__main__":
    main()
