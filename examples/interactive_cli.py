#!/usr/bin/env python3
"""Interactive front end — the reproduction's analog of the paper's GUI
(Fig. 3): connect to a database, install the capture, type assertions
and SQL, and call safeCommit.

Commands (everything else is executed as SQL, including
``EXPLAIN <query>`` to inspect physical plans and plan-cache status):

  \\tables           list tables (base and event namespaces)
  \\assertions       list installed assertions and their EDCs
  \\views            list the stored violation views (with SQL)
  \\pending          show the captured, not-yet-committed update
  \\commit           run safeCommit
  \\fullcommit       run the non-incremental comparator instead
  \\demo             load a small TPC-H instance to play with
  \\help             this text
  \\quit             exit

Run:  python examples/interactive_cli.py
"""

from __future__ import annotations

import sys

from repro import Database, Tintin
from repro.errors import ReproError
from repro.sqlparser import nodes, print_query
from repro.sqlparser.parser import parse_statement


class Session:
    def __init__(self):
        self.db = Database("cli")
        self.tintin = Tintin(self.db)
        self.installed = False

    # -- commands -----------------------------------------------------------

    def cmd_tables(self) -> None:
        for namespace in ("main", "event"):
            tables = self.db.catalog.tables(namespace=namespace)
            if not tables:
                continue
            print(f"{namespace}:")
            for table in tables:
                columns = ", ".join(str(c) for c in table.schema.columns)
                print(f"  {table.schema.name} ({columns})  [{len(table)} rows]")

    def cmd_assertions(self) -> None:
        if not self.tintin.assertions:
            print("no assertions installed")
            return
        print(self.tintin.describe())

    def cmd_views(self) -> None:
        for view in self.db.catalog.views():
            print(f"{view.name}:")
            print(f"  {print_query(view.query)}")

    def cmd_pending(self) -> None:
        if not self.installed:
            print("capture not installed yet (add an assertion first)")
            return
        counts = self.tintin.events.pending_counts()
        total = sum(i + d for i, d in counts.values())
        if not total:
            print("no pending events")
            return
        for table, (ins, dels) in sorted(counts.items()):
            if ins or dels:
                print(f"  {table}: +{ins} / -{dels}")

    def cmd_commit(self) -> None:
        if not self.installed:
            print("nothing to commit: capture not installed")
            return
        print(self.tintin.safe_commit())

    def cmd_fullcommit(self) -> None:
        if not self.installed:
            print("nothing to commit: capture not installed")
            return
        print(self.tintin.full_check_commit())

    def cmd_demo(self) -> None:
        from repro.tpch import create_tpch_schema, load_tpch

        if self.db.catalog.tables():
            print("demo requires a fresh session")
            return
        create_tpch_schema(self.db)
        data = load_tpch(self.db, scale=0.001)
        print(f"loaded TPC-H: {data.total_rows} rows across 8 tables")
        print("try:  CREATE ASSERTION atLeastOneLineItem CHECK (NOT EXISTS "
              "(SELECT * FROM orders AS o WHERE NOT EXISTS (SELECT * FROM "
              "lineitem AS l WHERE l.l_orderkey = o.o_orderkey)))")

    # -- SQL ---------------------------------------------------------------------

    def run_sql(self, sql: str) -> None:
        stmt = parse_statement(sql)
        if isinstance(stmt, nodes.Explain):
            # the text entry point adds the plan-cache status header
            print(self.db.execute(sql))
            return
        if isinstance(stmt, nodes.CreateAssertion):
            if not self.installed:
                self.tintin.install()
                self.installed = True
                print("(installed event capture + safeCommit)")
            assertion = self.tintin.add_assertion(sql)
            print(
                f"assertion {assertion.name}: {len(assertion.denials)} "
                f"denial(s), {len(assertion.edcs)} EDC view(s)"
            )
            return
        result = self.db.execute_statement(stmt)
        if result is None:
            print("ok")
        elif hasattr(result, "columns"):
            print(" | ".join(result.columns))
            for row in result.rows[:50]:
                print(" | ".join(str(v) for v in row))
            if len(result.rows) > 50:
                print(f"... {len(result.rows) - 50} more rows")
        else:
            print(result)

    # -- loop -----------------------------------------------------------------------

    COMMANDS = {
        "\\tables": cmd_tables,
        "\\assertions": cmd_assertions,
        "\\views": cmd_views,
        "\\pending": cmd_pending,
        "\\commit": cmd_commit,
        "\\fullcommit": cmd_fullcommit,
        "\\demo": cmd_demo,
    }

    def run(self) -> None:
        print("TINTIN interactive session — \\help for commands")
        while True:
            try:
                line = input("tintin> ").strip()
            except (EOFError, KeyboardInterrupt):
                print()
                return
            if not line:
                continue
            if line in ("\\quit", "\\q", "exit"):
                return
            if line == "\\help":
                print(__doc__)
                continue
            handler = self.COMMANDS.get(line)
            try:
                if handler is not None:
                    handler(self)
                else:
                    self.run_sql(line)
            except ReproError as exc:
                print(f"error: {exc}")


if __name__ == "__main__":
    if not sys.stdin.isatty():
        # piped input: still usable for scripted demos
        pass
    Session().run()
