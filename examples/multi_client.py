"""Threaded multi-client demo: sessions, snapshot reads, group commit.

Four clients hammer one TINTIN instance concurrently.  Each owns a
:class:`repro.server.Session` — a private staging area mirroring the
paper's event tables — so nobody observes anyone else's uncommitted
update.  Commits funnel through the serialized group-commit scheduler:
compatible updates are validated in one violation-view pass and applied
in one trigger-disable window; one client repeatedly proposes an
invalid update and gets each one rejected with the offending assertion,
while everyone else keeps committing.

Run:  PYTHONPATH=src python examples/multi_client.py
"""

import threading

from repro import Database, Tintin

CLIENTS = 4
ROUNDS = 10


def build_shop() -> Tintin:
    db = Database("shop")
    db.execute("CREATE TABLE orders (id INTEGER PRIMARY KEY)")
    db.execute(
        "CREATE TABLE items (order_id INTEGER, n INTEGER, qty INTEGER, "
        "PRIMARY KEY (order_id, n), "
        "FOREIGN KEY (order_id) REFERENCES orders (id))"
    )
    tintin = Tintin(db)
    tintin.install()
    tintin.add_assertion(
        "CREATE ASSERTION atLeastOneItem CHECK (NOT EXISTS ("
        "SELECT * FROM orders AS o WHERE NOT EXISTS ("
        "SELECT * FROM items AS i WHERE i.order_id = o.id)))"
    )
    tintin.add_assertion(
        "CREATE ASSERTION positiveQty CHECK (NOT EXISTS ("
        "SELECT * FROM items AS i WHERE i.qty < 1))"
    )
    # a small gather window fattens commit groups under concurrency
    tintin.serve(gather_seconds=0.001)
    return tintin


def well_behaved_client(tintin: Tintin, client: int, log: list) -> None:
    session = tintin.create_session()
    for round_no in range(ROUNDS):
        key = client * 1000 + round_no
        session.execute(f"INSERT INTO orders VALUES ({key})")
        session.execute(f"INSERT INTO items VALUES ({key}, 1, 5)")
        # read-your-writes: the staged order is already visible *here*
        mine = session.query(
            f"SELECT * FROM orders WHERE id = {key}"
        )
        assert len(mine) == 1
        result = session.commit()
        log.append(
            f"client {client} round {round_no}: {result} "
            f"(group of {result.group_size})"
        )


def rule_breaking_client(tintin: Tintin, client: int, log: list) -> None:
    session = tintin.create_session()
    for round_no in range(ROUNDS):
        key = client * 1000 + round_no
        # an order with no items: atLeastOneItem must reject it
        session.execute(f"INSERT INTO orders VALUES ({key})")
        result = session.commit()
        verdict = result.violations[0] if result.violations else result
        log.append(f"client {client} round {round_no}: REJECTED — {verdict}")


def main() -> None:
    tintin = build_shop()
    logs: dict[int, list] = {c: [] for c in range(CLIENTS)}
    workers = []
    for client in range(CLIENTS):
        target = (
            rule_breaking_client if client == CLIENTS - 1 else well_behaved_client
        )
        workers.append(
            threading.Thread(target=target, args=(tintin, client, logs[client]))
        )
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    for client in range(CLIENTS):
        print(f"--- client {client} ---")
        for line in logs[client][:3]:
            print(" ", line)
        if len(logs[client]) > 3:
            print(f"  ... {len(logs[client]) - 3} more")

    db = tintin.db
    stats = tintin.sessions.scheduler.stats
    print("\n--- server ---")
    print(
        f"{len(db.table('orders'))} orders committed; "
        f"{(CLIENTS - 1) * ROUNDS} expected from well-behaved clients"
    )
    print(
        f"scheduler: {stats.commits} commits in {stats.batches} batches, "
        f"{stats.group_fast_path} via the group fast path "
        f"(largest group {stats.max_group_size}), "
        f"{stats.fallbacks} fallbacks to serial validation"
    )
    assert len(db.table("orders")) == (CLIENTS - 1) * ROUNDS


if __name__ == "__main__":
    main()
