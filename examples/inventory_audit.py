#!/usr/bin/env python3
"""Domain scenario: warehouse inventory with cross-table business rules.

The paper's introduction motivates assertions as *global* constraints
"not tied to a particular table, but ranging over several ones".  This
example models a small warehouse where three such rules hold:

* ``reservedWithinStock`` — the units reserved for shipments never
  exceed the stock on hand (join + comparison across two tables);
* ``noShipmentFromEmptyBin`` — shipments only draw from bins that
  actually stock the product (inclusion dependency as an assertion);
* ``everyHazmatAudited``   — every hazardous product has at least one
  audit record (the paper's "at least one" pattern).

None of these is expressible with plain column CHECKs or FKs alone —
exactly the gap CREATE ASSERTION fills.

Run:  python examples/inventory_audit.py
"""

from repro import Database, Tintin


def build_schema(db: Database) -> None:
    db.execute(
        "CREATE TABLE product ("
        "  sku INTEGER PRIMARY KEY,"
        "  name VARCHAR(40) NOT NULL,"
        "  hazmat BOOLEAN NOT NULL)"
    )
    db.execute(
        "CREATE TABLE bin ("
        "  bin_id INTEGER PRIMARY KEY,"
        "  sku INTEGER NOT NULL,"
        "  on_hand INTEGER NOT NULL,"
        "  FOREIGN KEY (sku) REFERENCES product (sku))"
    )
    db.execute(
        "CREATE TABLE shipment ("
        "  ship_id INTEGER PRIMARY KEY,"
        "  bin_id INTEGER NOT NULL,"
        "  units INTEGER NOT NULL,"
        "  FOREIGN KEY (bin_id) REFERENCES bin (bin_id))"
    )
    db.execute(
        "CREATE TABLE audit ("
        "  audit_id INTEGER PRIMARY KEY,"
        "  sku INTEGER NOT NULL,"
        "  FOREIGN KEY (sku) REFERENCES product (sku))"
    )


ASSERTIONS = (
    # reserved units per shipment never exceed the bin's stock
    "CREATE ASSERTION reservedWithinStock CHECK (NOT EXISTS ("
    "SELECT * FROM shipment AS s, bin AS b "
    "WHERE s.bin_id = b.bin_id AND s.units > b.on_hand))",
    # a shipment's bin must hold a positive stock
    "CREATE ASSERTION noShipmentFromEmptyBin CHECK (NOT EXISTS ("
    "SELECT * FROM shipment AS s WHERE NOT EXISTS ("
    "SELECT * FROM bin AS b WHERE b.bin_id = s.bin_id AND b.on_hand > 0)))",
    # every hazardous product has at least one audit record
    "CREATE ASSERTION everyHazmatAudited CHECK (NOT EXISTS ("
    "SELECT * FROM product AS p WHERE p.hazmat = TRUE AND NOT EXISTS ("
    "SELECT * FROM audit AS a WHERE a.sku = p.sku)))",
)


def main() -> None:
    db = Database("warehouse")
    build_schema(db)

    # seed a consistent initial state (before installing the capture)
    db.execute("INSERT INTO product VALUES (100, 'solvent', TRUE)")
    db.execute("INSERT INTO product VALUES (200, 'rope', FALSE)")
    db.execute("INSERT INTO audit VALUES (1, 100)")
    db.execute("INSERT INTO bin VALUES (1, 100, 40), (2, 200, 15)")

    tintin = Tintin(db)
    tintin.install()
    for sql in ASSERTIONS:
        assertion = tintin.add_assertion(sql)
        print(f"installed {assertion.name}: {len(assertion.edcs)} EDC view(s)")
    print()

    scenarios = [
        (
            "ship 10 units of solvent from bin 1",
            ["INSERT INTO shipment VALUES (1, 1, 10)"],
        ),
        (
            "over-reserve: ship 99 units from bin 2 (only 15 on hand)",
            ["INSERT INTO shipment VALUES (2, 2, 99)"],
        ),
        (
            "drain bin 1 to zero while a shipment still draws from it",
            ["UPDATE bin SET on_hand = 0 WHERE bin_id = 1"],
        ),
        (
            "add a new hazardous product without an audit",
            ["INSERT INTO product VALUES (300, 'acid', TRUE)"],
        ),
        (
            "add the same product together with its audit record",
            [
                "INSERT INTO product VALUES (300, 'acid', TRUE)",
                "INSERT INTO audit VALUES (2, 300)",
            ],
        ),
        (
            "restock bin 2 and take the big shipment in one transaction",
            [
                "UPDATE bin SET on_hand = 120 WHERE bin_id = 2",
                "INSERT INTO shipment VALUES (3, 2, 99)",
            ],
        ),
    ]

    for description, statements in scenarios:
        for sql in statements:
            db.execute(sql)
        result = tintin.safe_commit()
        status = "COMMITTED" if result.committed else "REJECTED "
        print(f"[{status}] {description}")
        for violation in result.violations:
            print(f"            -> {violation}")

    print()
    print("final shipments:")
    for row in db.query(
        "SELECT s.ship_id, p.name, s.units FROM shipment AS s, bin AS b, "
        "product AS p WHERE s.bin_id = b.bin_id AND b.sku = p.sku"
    ):
        print(f"  #{row[0]}: {row[2]} x {row[1]}")


if __name__ == "__main__":
    main()
