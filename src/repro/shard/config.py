"""Shard-key declarations and commit-footprint classification.

The router's one routing decision per commit is made here: every
staged row is mapped to a shard by hashing its declared shard-key
column, and a commit whose rows land on a single shard bypasses
two-phase commit entirely.  The placement function must therefore be
*deterministic across processes* — Python's builtin ``hash`` is
per-process salted for strings, so string keys go through CRC-32
instead.
"""

from __future__ import annotations

import zlib
from typing import Optional

from ..errors import SchemaError


class ShardConfig:
    """Declared partitioning: shard count plus ``{table: column}`` keys.

    Tables without a declared key are *pinned to shard 0* — small
    reference tables (the paper's lookup relations) live there whole,
    and any commit touching them routes through shard 0.  Declare a
    key for every high-traffic table.
    """

    def __init__(self, shards: int, keys: Optional[dict[str, str]] = None):
        if shards < 1:
            raise SchemaError("shard count must be at least 1")
        self.shards = shards
        #: table name (lowercased) -> shard-key column name
        self.keys = {
            table.lower(): column.lower()
            for table, column in (keys or {}).items()
        }
        # key-column positions resolve lazily against the router's
        # catalog mirror (the table may not exist yet at config time)
        self._positions: dict[str, Optional[int]] = {}

    def shard_of(self, value) -> int:
        """Deterministic placement for one shard-key value.

        Integers partition by modulus (contiguous ids spread evenly);
        everything else hashes its ``repr`` through CRC-32 — stable
        across processes and interpreter restarts, unlike the salted
        builtin ``hash``.
        """
        if isinstance(value, bool) or not isinstance(value, int):
            return zlib.crc32(repr(value).encode("utf-8")) % self.shards
        return value % self.shards

    def _key_position(self, db, table: str) -> Optional[int]:
        """Column position of ``table``'s shard key, None when pinned."""
        lowered = table.lower()
        if lowered not in self._positions:
            column = self.keys.get(lowered)
            if column is None:
                self._positions[lowered] = None
            else:
                schema = db.table(table).schema
                self._positions[lowered] = schema.key_positions((column,))[0]
        return self._positions[lowered]

    def split(
        self,
        db,
        inserts: dict[str, list[tuple]],
        deletes: dict[str, list[tuple]],
    ) -> dict[int, tuple[dict, dict]]:
        """Partition one commit's event batch by shard.

        Returns ``{shard_id: (inserts, deletes)}`` covering only the
        shards the batch actually touches — a single-entry result is
        the router's fast path, anything larger is a distributed
        transaction.  ``db`` is the catalog mirror used to resolve
        key-column positions.
        """
        out: dict[int, tuple[dict, dict]] = {}
        for side, events in enumerate((inserts, deletes)):
            for table, rows in (events or {}).items():
                position = self._key_position(db, table)
                for row in rows:
                    shard = (
                        0
                        if position is None
                        else self.shard_of(row[position])
                    )
                    bucket = out.setdefault(shard, ({}, {}))
                    bucket[side].setdefault(table, []).append(row)
        return out
