"""Shard-per-process scale-out for the TINTIN engine.

One Python process can validate and apply only one commit window at a
time — the GIL serializes the relational work even when clients pile
up.  This package scales *out* instead of up: tables are partitioned
by a declared shard key across worker processes, each running its own
full engine (catalog, scheduler, WAL, checkpoint set), fronted by a
:class:`~repro.shard.router.ShardedTintin` router that classifies
every commit's key footprint:

* **single-shard** commits go straight to their shard's scheduler —
  the common case, and the one the partitioning should be chosen for;
* **cross-shard** commits run two-phase commit: prepare (validate +
  tentatively apply + durably WAL a prepare record on each
  participant), then commit/abort driven by the coordinator's
  decision log.  Recovery replays in-doubt transactions from prepare
  records and resolves them against that log (presumed abort).

Assertions remain *per-shard*: each worker checks its own slice, so a
well-chosen shard key must co-locate the rows every assertion joins —
exactly the paper's locality argument, applied to placement.
"""

from .config import ShardConfig
from .router import ShardedTintin, ShardSession
from .worker import shard_worker_main

__all__ = ["ShardConfig", "ShardedTintin", "ShardSession", "shard_worker_main"]
