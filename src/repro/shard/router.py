"""The shard router: footprint classification and two-phase commit.

:class:`ShardedTintin` fronts N worker processes (one engine each, see
:mod:`repro.shard.worker`) behind the same surface the network server
binds to — ``sessions``, ``db.name``, ``set_tracer``, ``close`` — so
``TintinServer(ShardedTintin(...))`` serves a sharded engine with no
front-end changes.

Commit routing:

* a batch whose shard-key footprint lands on **one** shard is
  forwarded as an ordinary commit — no coordination, no extra fsync;
* a **cross-shard** batch runs presumed-abort two-phase commit.  The
  coordinator prepares every participant in ascending shard order
  (each prepare validates, tentatively applies, and fsyncs a WAL
  prepare record — the durable yes vote), then fsyncs a commit record
  to its own decision log *before* sending any decide.  Only abort
  outcomes are never logged: an in-doubt participant whose gid is
  absent from the decision log aborts, which is exactly right both
  for a coordinator that crashed before deciding and for one that
  deliberately aborted.

Crash handling: a participant that dies after voting yes re-adopts
the transaction from its prepare record at restart and reports it
in-doubt in its hello; :meth:`ShardedTintin.restart_shard` resolves
those gids against the decision log.  A participant that dies before
voting simply never voted — presumed abort needs no cleanup.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing
import os
import threading
import time
import uuid
from typing import Optional

from ..core.safe_commit import CommitResult
from ..durability.wal import WriteAheadLog, read_wal
from ..errors import ExecutionError, SessionExpired, ShardError
from ..minidb.database import Database, ResultSet
from ..obs.metrics import StatsBlock
from ..obs.trace import CommitObs, NullTracer
from .config import ShardConfig
from .worker import shard_worker_main

#: Router-side failures that do not fail the commit (a decide lost to
#: a dead participant after the decision became durable) land here —
#: they are recovery work, not errors the submitting client can act on.
log = logging.getLogger("repro.shard")


class RouterStats(StatsBlock):
    """Counters for the shard router (thread-safe snapshot)."""

    COUNTERS = (
        "commits",
        "single_shard",
        "cross_shard",
        "prepares",
        "aborts",
        "in_doubt_resolved",
        "queries",
        "restarts",
    )
    PREFIX = "tintin_router"
    HELP = {
        "commits": "Committed batches routed (either path)",
        "single_shard": "Commits whose footprint stayed on one shard",
        "cross_shard": "Cross-shard batches attempted via 2PC",
        "prepares": "Participant prepare calls issued",
        "aborts": "Cross-shard batches aborted (vote no or failure)",
        "in_doubt_resolved": "Recovered in-doubt transactions resolved",
        "restarts": "Shard worker respawns",
    }


class ShardHandle:
    """One worker process plus the pipe and lock that guard it.

    The lock is re-entrant and does double duty: it serializes pipe
    I/O (one request in flight per shard) *and* is the routing lock a
    cross-shard commit holds across its whole prepare/decide
    conversation, so no single-shard commit can interleave with a
    shard's prepared-but-undecided window.
    """

    def __init__(self, shard_id: int, directory: str):
        self.shard_id = shard_id
        self.directory = directory
        self.lock = threading.RLock()
        self.process = None
        self.conn = None
        self.alive = False
        #: gids the worker reported in-doubt at its last hello
        self.in_doubt: list[str] = []

    def spawn(
        self,
        ctx,
        durability: str,
        gather_seconds: float,
        timeout: float = 60.0,
    ) -> dict:
        """Start (or restart) the worker; returns its hello payload."""
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=shard_worker_main,
            args=(
                child_conn,
                self.directory,
                self.shard_id,
                durability,
                gather_seconds,
            ),
            name=f"tintin-shard-{self.shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(timeout):
            process.terminate()
            raise ShardError(
                f"shard {self.shard_id} did not report in within "
                f"{timeout:.0f}s"
            )
        kind, hello = parent_conn.recv()
        if kind != "hello":
            process.terminate()
            raise ShardError(
                f"shard {self.shard_id} sent {kind!r} instead of hello"
            )
        self.process = process
        self.conn = parent_conn
        self.alive = True
        self.in_doubt = list(hello.get("in_doubt", ()))
        return hello

    def call(self, *message):
        """One request/reply round trip; raises :class:`ShardError` on
        a reported failure or a dead pipe (which marks the handle down
        — the router must :meth:`ShardedTintin.restart_shard` it)."""
        with self.lock:
            if not self.alive:
                raise ShardError(f"shard {self.shard_id} is down")
            try:
                self.conn.send(message)
                reply = self.conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                self.alive = False
                raise ShardError(
                    f"shard {self.shard_id} died during "
                    f"{message[0]!r}: {exc!r}"
                ) from exc
        if reply[0] == "error":
            _, type_name, text = reply
            raise ShardError(
                f"shard {self.shard_id} {message[0]} failed: "
                f"{type_name}: {text}"
            )
        return reply[1]

    def reap(self) -> None:
        """Release the dead worker's pipe and process slot."""
        with self.lock:
            self.alive = False
            if self.conn is not None:
                try:
                    self.conn.close()
                except OSError:
                    pass
                self.conn = None
            if self.process is not None:
                self.process.join(timeout=10)
                if self.process.is_alive():
                    self.process.terminate()
                    self.process.join(timeout=5)
                self.process = None

    def shutdown(self) -> None:
        """Clean stop: ask the worker to close its engine, then reap."""
        with self.lock:
            if self.alive:
                try:
                    self.call("close")
                except ShardError:
                    log.warning(
                        "shard %d failed its close command; reaping",
                        self.shard_id,
                        exc_info=True,
                    )
            self.reap()


def _result_from_payload(payload: dict) -> CommitResult:
    """Rebuild a CommitResult from its pipe/wire dict (violations
    arrive as display strings — the Violation objects live in the
    worker's process)."""
    return CommitResult(
        committed=payload["committed"],
        violations=list(payload.get("violations", ())),
        constraint_error=payload.get("constraint_error"),
        applied_rows=payload.get("applied_rows", 0),
        checked_views=payload.get("checked_views", 0),
        skipped_views=payload.get("skipped_views", 0),
        deadline_expired=payload.get("deadline_expired", False),
        group_size=payload.get("group_size", 1),
    )


class ShardedTintin:
    """N shard engines behind one Tintin-shaped facade.

    ``directory`` holds one subdirectory per shard plus ``coord/``
    with the coordinator's decision log.  ``shard_keys`` maps table
    names to their partitioning column (see :class:`ShardConfig`);
    undeclared tables pin to shard 0.  DDL (``execute``, ``install``,
    ``add_assertion``) broadcasts to every shard and is mirrored into
    a local catalog-only :class:`Database` used for row validation and
    footprint classification — the mirror never holds data.
    """

    def __init__(
        self,
        directory: str,
        shards: int = 2,
        shard_keys: Optional[dict[str, str]] = None,
        durability: str = "batch",
        gather_seconds: float = 0.0,
        name: str = "sharded",
    ):
        self.directory = directory
        self.config = ShardConfig(shards, shard_keys)
        #: catalog mirror — schema only, consulted for shard-key
        #: positions and staged-row validation
        self.db = Database(name)
        #: Tintin-surface compatibility: the router has no WAL of its
        #: own commits (each shard does), so the front end's
        #: durability-specific metrics sections simply stay absent
        self.durability = None
        self.tracer = NullTracer()
        self.slow_commit_seconds: Optional[float] = None
        self.serving = True
        self.stats = RouterStats()
        self._durability_mode = durability
        self._gather_seconds = gather_seconds
        self._sessions: Optional[ShardSessionManager] = None
        self._closed = False
        coord_dir = os.path.join(directory, "coord")
        os.makedirs(coord_dir, exist_ok=True)
        #: the coordinator's decision log: commit verdicts only
        #: (presumed abort — an absent gid IS the abort decision)
        self._decision_log = WriteAheadLog(
            os.path.join(coord_dir, "decisions.wal")
        )
        self._decided: set[str] = set()
        for record in read_wal(self._decision_log.path).records:
            if (
                isinstance(record, dict)
                and record.get("type") == "decide"
                and record.get("verdict") == "commit"
            ):
                self._decided.add(record["gid"])
        #: the host process runs threads (net server, admission pool),
        #: so fork is unsafe — spawn is mandatory, not a preference
        self._ctx = multiprocessing.get_context("spawn")
        self.handles: list[ShardHandle] = []
        for shard_id in range(shards):
            handle = ShardHandle(
                shard_id, os.path.join(directory, f"shard{shard_id}")
            )
            os.makedirs(handle.directory, exist_ok=True)
            handle.spawn(self._ctx, durability, gather_seconds)
            self.handles.append(handle)
        self._resolve_in_doubt(self.handles)
        #: extra Prometheus collector blocks the net server picks up
        self.metrics_collectors = [_ShardStatsCollector(self)]

    # -- lifecycle ---------------------------------------------------------

    def _resolve_in_doubt(self, handles: list[ShardHandle]) -> None:
        """Drive every reported in-doubt gid to its final verdict: a
        commit record in the decision log means the coordinator
        decided commit before the crash; absence means abort
        (presumed) — either it decided abort or never decided."""
        for handle in handles:
            for gid in handle.in_doubt:
                verdict = gid in self._decided
                handle.call("decide", gid, verdict)
                self.stats.bump(in_doubt_resolved=1)
                log.info(
                    "resolved in-doubt transaction %s on shard %d: %s",
                    gid,
                    handle.shard_id,
                    "commit" if verdict else "abort",
                )
            handle.in_doubt = []

    def restart_shard(self, shard_id: int) -> dict:
        """Respawn one worker (after a crash) and resolve whatever it
        reports in-doubt.  Safe for a live worker too — it is closed
        cleanly first."""
        handle = self.handles[shard_id]
        with handle.lock:
            if handle.alive:
                handle.shutdown()
            else:
                handle.reap()
            hello = handle.spawn(
                self._ctx, self._durability_mode, self._gather_seconds
            )
            self._resolve_in_doubt([handle])
        self.stats.bump(restarts=1)
        return hello

    def checkpoint(self) -> None:
        """Checkpoint every shard (each refuses while in-doubt)."""
        for handle in self.handles:
            handle.call("checkpoint")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.serving = False
        for handle in self.handles:
            handle.shutdown()
        self._decision_log.close()

    # -- DDL / schema broadcast --------------------------------------------

    def execute(self, sql: str):
        """Run DDL on every shard (SELECT scatters, DML is refused).

        The catalog mirror executes first: malformed statements fail
        locally before any shard sees them."""
        head = sql.split(None, 1)[0].upper() if sql.split() else ""
        if head == "SELECT":
            return self.query(sql)
        if head in ("INSERT", "DELETE", "UPDATE"):
            raise ExecutionError(
                "DML on a sharded engine must go through a session "
                "(insert()/delete() then commit()) so it can be "
                "shard-routed and assertion-checked"
            )
        mirrored = self.db.execute(sql)
        for handle in self.handles:
            handle.call("execute", sql)
        return mirrored

    def declare(self, sql: str):
        """Run DDL on the catalog mirror only.

        For reopening existing shard state: the workers rebuilt their
        catalogs from their own WALs/checkpoints, but the router's
        mirror starts empty every time — re-declare the schema here so
        shard-key positions and row validation resolve again."""
        return self.db.execute(sql)

    def install(self, tables: Optional[list[str]] = None) -> list[str]:
        """Install event capture on every shard."""
        captured: list[str] = []
        for handle in self.handles:
            captured = handle.call("install")
        return captured

    def add_assertion(self, sql: str) -> str:
        """Compile the assertion on every shard; returns its name.

        Each shard checks its own slice — the shard key must co-locate
        the rows an assertion joins (cross-shard joins inside one
        assertion are out of scope, as in every hash-partitioned
        constraint checker)."""
        name = ""
        for handle in self.handles:
            name = handle.call("assertion", sql)
        return name

    # -- reads -------------------------------------------------------------

    def query(self, sql: str) -> ResultSet:
        """Scatter-gather read: union of every shard's rows.

        No global ordering is imposed — an ORDER BY is applied within
        each shard only; callers needing total order sort the result.
        """
        self.stats.bump(queries=1)
        columns: Optional[list] = None
        rows: list[tuple] = []
        for handle in self.handles:
            shard_columns, shard_rows = handle.call("query", sql)
            if columns is None:
                columns = shard_columns
            rows.extend(tuple(row) for row in shard_rows)
        return ResultSet(columns or [], rows)

    # -- commits -----------------------------------------------------------

    def commit_events(
        self,
        inserts: dict[str, list[tuple]],
        deletes: dict[str, list[tuple]],
        deadline: Optional[float] = None,
        obs: Optional[CommitObs] = None,
    ) -> CommitResult:
        """Route one event batch by its shard-key footprint."""
        split = self.config.split(self.db, inserts or {}, deletes or {})
        if not split:
            self.stats.bump(commits=1)
            return CommitResult(committed=True)
        remaining = (
            None if deadline is None else deadline - time.monotonic()
        )
        if len(split) == 1:
            ((shard_id, (ins, dels)),) = split.items()
            handle = self.handles[shard_id]
            started = time.monotonic()
            payload = handle.call("commit", ins, dels, remaining)
            if obs is not None:
                obs.record(
                    "shard.commit",
                    started,
                    time.monotonic(),
                    shard=str(shard_id),
                )
            result = _result_from_payload(payload)
            if result.committed:
                self.stats.bump(commits=1, single_shard=1)
            return result
        return self._two_phase_commit(split, remaining, obs)

    def _two_phase_commit(
        self,
        split: dict[int, tuple[dict, dict]],
        remaining: Optional[float],
        obs: Optional[CommitObs],
    ) -> CommitResult:
        gid = uuid.uuid4().hex
        participants = sorted(split)
        # participant locks are taken in ascending shard order for the
        # whole conversation — two concurrent cross-shard commits can
        # never deadlock, and no single-shard commit slips between a
        # shard's prepare and its decide
        held: list[ShardHandle] = []
        try:
            for shard_id in participants:
                handle = self.handles[shard_id]
                handle.lock.acquire()
                held.append(handle)
            votes: dict[int, CommitResult] = {}
            failure: Optional[CommitResult] = None
            for shard_id in participants:
                ins, dels = split[shard_id]
                started = time.monotonic()
                try:
                    payload = self.handles[shard_id].call(
                        "prepare", gid, ins, dels, remaining
                    )
                except ShardError as exc:
                    failure = CommitResult(
                        committed=False,
                        constraint_error=(
                            f"shard {shard_id} failed during prepare: "
                            f"{exc}"
                        ),
                    )
                    break
                self.stats.bump(prepares=1)
                if obs is not None:
                    obs.record(
                        "prepare",
                        started,
                        time.monotonic(),
                        shard=str(shard_id),
                        gid=gid,
                    )
                vote = _result_from_payload(payload)
                if not vote.committed:
                    failure = vote
                    break
                votes[shard_id] = vote
            if failure is not None:
                # presumed abort: nothing is logged; yes voters are
                # told directly, and any that cannot be reached will
                # find no commit record at recovery and abort anyway
                for shard_id in votes:
                    try:
                        self.handles[shard_id].call("decide", gid, False)
                    except ShardError:
                        log.warning(
                            "shard %d unreachable for abort of %s; it "
                            "will presume abort at recovery",
                            shard_id,
                            gid,
                            exc_info=True,
                        )
                self.stats.bump(cross_shard=1, aborts=1)
                return failure
            # every participant holds a durable yes vote: make the
            # commit decision durable *before* any participant acts on
            # it — from this fsync on, the transaction commits even if
            # everything crashes right now
            self._decision_log.append_decide(gid, True)
            self._decision_log.sync()
            self._decided.add(gid)
            applied = checked = skipped = 0
            for shard_id in participants:
                vote = votes[shard_id]
                applied += vote.applied_rows
                checked += vote.checked_views
                skipped += vote.skipped_views
                started = time.monotonic()
                try:
                    self.handles[shard_id].call("decide", gid, True)
                except ShardError:
                    # the decision is durable; restart_shard replays it
                    log.warning(
                        "shard %d unreachable for commit of %s; the "
                        "decision log will resolve it at restart",
                        shard_id,
                        gid,
                        exc_info=True,
                    )
                    continue
                if obs is not None:
                    obs.record(
                        "decide",
                        started,
                        time.monotonic(),
                        shard=str(shard_id),
                        gid=gid,
                        verdict="commit",
                    )
            self.stats.bump(commits=1, cross_shard=1)
            return CommitResult(
                committed=True,
                applied_rows=applied,
                checked_views=checked,
                skipped_views=skipped,
                group_size=len(participants),
            )
        finally:
            for handle in reversed(held):
                handle.lock.release()

    # -- Tintin-surface compatibility --------------------------------------

    @property
    def sessions(self) -> "ShardSessionManager":
        if self._sessions is None:
            self._sessions = ShardSessionManager(self)
        return self._sessions

    def create_session(
        self, ttl: Optional[float] = None, priority: int = 0
    ) -> "ShardSession":
        return self.sessions.create(ttl=ttl, priority=priority)

    def set_tracer(self, tracer) -> None:
        self.tracer = tracer if tracer is not None else NullTracer()

    def _make_obs(
        self, trace_id: Optional[str] = None
    ) -> Optional[CommitObs]:
        tracer = self.tracer
        if not tracer.enabled and self.slow_commit_seconds is None:
            return None
        return CommitObs(
            tracer,
            trace_id=trace_id,
            slow_threshold=self.slow_commit_seconds,
        )


class _RouterSchedulerFacade:
    """The slice of CommitScheduler the front end touches on a router:
    a stats block for the metrics registry and a settable fault hook
    (fault injection on the sharded path targets the router, not a
    scheduler it does not have)."""

    def __init__(self, stats: RouterStats):
        self.stats = stats
        self.fault_hook = None


class ShardSessionManager:
    """Duck-types SessionManager over the router.

    Sessions here are thin staging buffers — validation happens
    against the catalog mirror, the real work happens in the shard
    workers at commit — so there is no sweeper thread; TTLs are
    accepted and ignored."""

    def __init__(self, router: ShardedTintin):
        self.router = router
        self.scheduler = _RouterSchedulerFacade(router.stats)
        self.swept_sessions = 0
        self.sweeper_running = False
        self._lock = threading.Lock()
        self._sessions: dict[str, ShardSession] = {}
        self._ids = itertools.count(1)

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def create(
        self, ttl: Optional[float] = None, priority: int = 0
    ) -> "ShardSession":
        with self._lock:
            session_id = f"shard-s{next(self._ids)}"
            session = ShardSession(self.router, self, session_id, priority)
            self._sessions[session_id] = session
        return session

    def _remove(self, session: "ShardSession") -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)

    def start_sweeper(self, interval: float) -> None:
        pass

    def stop_sweeper(self) -> None:
        pass


class ShardSession:
    """One client's staging buffer against the sharded engine.

    Rows are validated (typed, coerced) against the catalog mirror at
    staging time and routed at commit.  Reads see *committed* state
    only — cross-shard read-your-writes would need the overlay merge
    inside every worker and is out of scope."""

    def __init__(
        self,
        router: ShardedTintin,
        manager: ShardSessionManager,
        session_id: str,
        priority: int = 0,
    ):
        self.router = router
        self.manager = manager
        self.session_id = session_id
        self.priority = priority
        self._inserts: dict[str, list[tuple]] = {}
        self._deletes: dict[str, list[tuple]] = {}
        self._expired = False

    def _check_alive(self) -> None:
        if self._expired:
            raise SessionExpired(
                f"session {self.session_id} is expired; open a new one"
            )

    def _staged_rows(self) -> int:
        return sum(
            len(rows)
            for events in (self._inserts, self._deletes)
            for rows in events.values()
        )

    def insert(self, table: str, rows: list[tuple]) -> int:
        self._check_alive()
        mirror = self.router.db.table(table)
        staged = self._inserts.setdefault(table, [])
        for row in rows:
            staged.append(mirror.validate_row(tuple(row)))
        return self._staged_rows()

    def delete(self, table: str, rows: list[tuple]) -> int:
        self._check_alive()
        mirror = self.router.db.table(table)
        staged = self._deletes.setdefault(table, [])
        for row in rows:
            staged.append(mirror.validate_row(tuple(row)))
        return self._staged_rows()

    def execute(self, sql: str):
        self._check_alive()
        head = sql.split(None, 1)[0].upper() if sql.split() else ""
        if head == "SELECT":
            return self.query(sql)
        raise ExecutionError(
            "sessions on a sharded engine stage through insert()/"
            "delete(); DDL goes through the router's execute()"
        )

    def query(self, sql: str) -> ResultSet:
        self._check_alive()
        return self.router.query(sql)

    def commit(
        self,
        deadline: Optional[float] = None,
        obs: Optional[CommitObs] = None,
    ) -> CommitResult:
        self._check_alive()
        result = self.router.commit_events(
            self._inserts, self._deletes, deadline=deadline, obs=obs
        )
        if result.committed:
            self._inserts = {}
            self._deletes = {}
        return result

    def discard(self) -> int:
        self._check_alive()
        dropped = self._staged_rows()
        self._inserts = {}
        self._deletes = {}
        return dropped

    def expire(self) -> None:
        if not self._expired:
            self._expired = True
            self.manager._remove(self)


class _ShardStatsCollector:
    """Per-shard scheduler counters for the Prometheus page, labelled
    by shard id.  A scrape must never stall a commit: a shard whose
    routing lock is held (mid-2PC) or whose worker is down is simply
    absent from that scrape."""

    __slots__ = ("_router",)

    def __init__(self, router: ShardedTintin):
        self._router = router

    def collect(self):
        lines: list[str] = []
        for handle in self._router.handles:
            if not handle.lock.acquire(blocking=False):
                continue
            try:
                if not handle.alive:
                    continue
                try:
                    snapshot = handle.call("stats")
                except ShardError:
                    continue
            finally:
                handle.lock.release()
            for key in sorted(snapshot):
                lines.append(
                    'tintin_shard_%s{shard="%d"} %s'
                    % (key, handle.shard_id, snapshot[key])
                )
        return lines
