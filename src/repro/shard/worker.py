"""The shard worker: one full TINTIN engine behind a pipe.

Each worker is a separate OS process (spawned, never forked — the
router's host process is threaded) owning one shard's catalog,
scheduler, write-ahead log and checkpoint set rooted at its own
directory.  The router speaks a tuple protocol over a
``multiprocessing`` pipe; every request gets exactly one reply:
``("ok", payload)`` or ``("error", type_name, message)``.

Deadlines cross the pipe as *relative* remaining seconds, never as
absolute instants: each process has its own ``time.monotonic()``
origin, so an absolute monotonic deadline from the router would be
meaningless here (and a wall-clock deadline would reintroduce the NTP
bug this PR removes).

Two-phase commit discipline enforced here:

* at bootstrap, every in-doubt transaction recovery reports (a WAL
  prepare record with no decide) is re-adopted as prepared, and its
  gid is surfaced in the hello payload so the router can resolve it
  against the coordinator's decision log;
* ``checkpoint`` is refused while a prepared transaction is pending —
  a checkpoint truncates the WAL, and the prepare record *is* this
  shard's yes vote;
* ``close`` skips its final checkpoint under the same condition, so
  the vote survives a clean shutdown into the next recovery.
"""

from __future__ import annotations

import os
import time


def shard_worker_main(
    conn,
    directory: str,
    shard_id: int,
    durability: str = "batch",
    gather_seconds: float = 0.0,
) -> None:
    """Process entry point: open the shard's engine, serve the pipe."""
    # imports happen post-spawn so the child builds its own module state
    from ..core.tintin import Tintin
    from ..net.server import commit_result_payload

    tintin = Tintin.open(directory, durability=durability)
    scheduler = tintin.sessions.scheduler
    scheduler.gather_seconds = gather_seconds
    report = tintin.recovery_report
    in_doubt: list[str] = []
    if report is not None:
        for gid in sorted(getattr(report, "in_doubt", {})):
            inserts, deletes = report.in_doubt[gid]
            scheduler.adopt_prepared(gid, inserts, deletes)
            in_doubt.append(gid)
    conn.send(
        (
            "hello",
            {
                "shard": shard_id,
                "in_doubt": in_doubt,
                "recovered": report is not None,
            },
        )
    )

    running = True
    while running:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            # router went away; fall through to a clean engine close
            break
        command = message[0]
        try:
            if command == "crash":
                # simulate a power cut: no close, no checkpoint, no
                # flush — recovery must rebuild from WAL alone
                os._exit(1)
            elif command == "execute":
                result = tintin.db.execute(message[1])
                if hasattr(result, "columns"):
                    reply = (list(result.columns), list(result.rows))
                else:
                    reply = result
                conn.send(("ok", reply))
            elif command == "install":
                conn.send(("ok", tintin.install()))
            elif command == "assertion":
                conn.send(("ok", tintin.add_assertion(message[1]).name))
            elif command == "commit":
                _, inserts, deletes, remaining = message
                deadline = (
                    None
                    if remaining is None
                    else time.monotonic() + remaining
                )
                result = scheduler.commit_events(
                    inserts, deletes, deadline=deadline
                )
                conn.send(("ok", commit_result_payload(result)))
            elif command == "prepare":
                _, gid, inserts, deletes, remaining = message
                deadline = (
                    None
                    if remaining is None
                    else time.monotonic() + remaining
                )
                result = scheduler.prepare_events(
                    gid, inserts, deletes, deadline=deadline
                )
                conn.send(("ok", commit_result_payload(result)))
            elif command == "decide":
                _, gid, verdict = message
                result = scheduler.decide_prepared(gid, verdict)
                conn.send(
                    (
                        "ok",
                        None
                        if result is None
                        else commit_result_payload(result),
                    )
                )
            elif command == "query":
                with scheduler.rwlock.read_locked():
                    result = tintin.db.execute(message[1])
                conn.send(
                    ("ok", (list(result.columns), list(result.rows)))
                )
            elif command == "checkpoint":
                if scheduler.has_prepared:
                    conn.send(
                        (
                            "error",
                            "ShardError",
                            "checkpoint refused: a prepared transaction "
                            "is in doubt and its WAL prepare record is "
                            "the only evidence of this shard's yes vote",
                        )
                    )
                else:
                    tintin.checkpoint()
                    conn.send(("ok", None))
            elif command == "stats":
                conn.send(("ok", scheduler.stats.snapshot()))
            elif command == "close":
                tintin.close(checkpoint=not scheduler.has_prepared)
                conn.send(("ok", None))
                running = False
            else:
                conn.send(
                    ("error", "ShardError", f"unknown command {command!r}")
                )
        except BaseException as exc:
            try:
                conn.send(("error", type(exc).__name__, str(exc)))
            except (BrokenPipeError, OSError):
                break
    else:
        conn.close()
        return
    # EOF path: the router vanished without a close command
    if tintin.durability is not None:
        tintin.close(checkpoint=not scheduler.has_prepared)
    conn.close()
