"""A writer-preferring read/write lock for snapshot-consistent reads.

Session queries take the shared (read) side; the commit scheduler takes
the exclusive (write) side while validating-and-applying a batch, so a
reader can never observe a half-applied commit.  Writers are preferred:
once a commit is waiting, new readers queue behind it, bounding commit
latency under a read-heavy load.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """Classic condition-variable RW lock (not reentrant on either side)."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- shared side -------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- exclusive side ----------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
