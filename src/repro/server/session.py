"""Per-session staged updates: the multi-client generalization of the
paper's event tables.

The paper stages one proposed update in the global ``ins_T``/``del_T``
tables and validates it at ``safeCommit``.  Event tables are naturally
*per-client* state, so a :class:`Session` owns a private staging
overlay — shape-identical ins/del tables that live outside the shared
catalog.  Another session can never observe them: base tables hold only
committed data, and the global event tables are populated exclusively
inside the commit scheduler's serialized window.

Reads are snapshot-consistent.  Every query — with or without staged
events — takes the scheduler's shared read lock, so it sees base state
entirely before or entirely after any other session's commit — never
halfway through one.  When the session has staged events of its own,
the read additionally sees them ("read your own writes") through the
**overlay-merge** execution path: the staged events ride along as a
:class:`~repro.minidb.storage.TableOverlay` map inside the execution
context, and scan/probe operators merge them on the fly (staged
deletes masked with multiset semantics, staged inserts appended).
Base tables are never touched, ``Table.data_version`` and row counts
stay stable (so pure reads cannot invalidate cached plans), and any
number of readers — with or without staged events — run concurrently.

The historical splice path (physically splice the overlay into the
base tables under the exclusive lock, query, undo) survives as
:meth:`Session.query_spliced`, a differential oracle for the
overlay-merge executor.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Optional

from ..errors import ConstraintViolation, ExecutionError, SessionExpired
from ..minidb.schema import normalize
from ..minidb.storage import Table, TableOverlay
from ..minidb.transactions import TransactionManager
from ..sqlparser import nodes as n
from ..core.event_tables import (
    del_table_name,
    event_schema,
    ins_table_name,
    stage_delete,
    stage_insert,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.safe_commit import CommitResult
    from ..core.tintin import Tintin
    from .scheduler import CommitScheduler


class SessionEvents:
    """A session's private staging area: one ins/del table pair per
    instrumented base table, outside the shared catalog."""

    def __init__(self, tintin: "Tintin"):
        self._db = tintin.db
        self._tables: dict[str, tuple[Table, Table]] = {}
        #: (staging version, overlay map) memo — rebuilt only after the
        #: staging tables actually changed, so repeated reads between
        #: stagings share one immutable overlay (and its probe indexes)
        self._overlay_cache: Optional[tuple[int, Optional[dict]]] = None
        for name in tintin.events.captured_tables:
            base = self._db.table(name)
            key = normalize(name)
            self._tables[key] = (
                Table(event_schema(base.schema, ins_table_name(name)), "session"),
                Table(event_schema(base.schema, del_table_name(name)), "session"),
            )

    def _staging_version(self) -> int:
        """Monotonic stamp over the staging tables: any staging
        mutation bumps some table's ``data_version``, so equal sums
        prove the staged events are unchanged."""
        return sum(
            table.data_version
            for pair in self._tables.values()
            for table in pair
        )

    def pair(self, table: str) -> tuple[Table, Table]:
        key = normalize(table)
        pair = self._tables.get(key)
        if pair is None:
            raise ExecutionError(
                f"table {table!r} is not instrumented for capture — "
                "sessions can only stage updates on captured tables"
            )
        return pair

    def captured(self, table: str) -> bool:
        return normalize(table) in self._tables

    def snapshot(self) -> tuple[dict[str, list[tuple]], dict[str, list[tuple]]]:
        """Copy the staged events as ``(inserts, deletes)`` row dicts."""
        inserts: dict[str, list[tuple]] = {}
        deletes: dict[str, list[tuple]] = {}
        for key, (ins, dels) in self._tables.items():
            if len(ins):
                inserts[key] = ins.rows_snapshot()
            if len(dels):
                deletes[key] = dels.rows_snapshot()
        return inserts, deletes

    def overlays(self) -> Optional[dict[str, TableOverlay]]:
        """The staged events as a read-time overlay map (normalized
        base-table name -> :class:`TableOverlay`); ``None`` when
        nothing is staged.  The overlay snapshots the staging tables,
        so it stays stable even if staging continues afterwards; the
        snapshot is memoized until the staging tables change, so
        repeated reads pay nothing to rebuild it."""
        version = self._staging_version()
        cached = self._overlay_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        overlays: dict[str, TableOverlay] = {}
        for key, (ins, dels) in self._tables.items():
            if len(ins) or len(dels):
                overlays[key] = TableOverlay(
                    ins.rows_snapshot(),
                    dels.rows_snapshot(),
                    table=self._db.table(key),
                )
        self._overlay_cache = (version, overlays or None)
        return overlays or None

    def counts(self) -> dict[str, tuple[int, int]]:
        return {
            key: (len(ins), len(dels))
            for key, (ins, dels) in self._tables.items()
        }

    def has_events(self) -> bool:
        return any(
            len(ins) or len(dels) for ins, dels in self._tables.values()
        )

    def truncate(self) -> int:
        removed = 0
        for ins, dels in self._tables.values():
            removed += ins.truncate()
            removed += dels.truncate()
        return removed


class Session:
    """One client's view of the database: private staging + snapshot reads.

    Created via :meth:`repro.core.Tintin.create_session` (or the
    :class:`SessionManager` directly).  All staging respects the same
    net-event invariants the capture triggers maintain, evaluated
    against the session's own overlay — never another session's.
    """

    def __init__(
        self,
        session_id: str,
        tintin: "Tintin",
        scheduler: "CommitScheduler",
        manager: Optional["SessionManager"] = None,
        ttl: Optional[float] = None,
        priority: int = 0,
    ):
        self.session_id = session_id
        self.tintin = tintin
        self.db = tintin.db
        self.scheduler = scheduler
        self._manager = manager
        self.ttl = ttl
        #: admission priority (higher = more trusted, shed last); used
        #: by the network front end's load shedder — per-source trust,
        #: cf. the trust-mappings idea in PAPERS.md
        self.priority = priority
        self.created_at = time.monotonic()
        self.last_used = self.created_at
        self.events = SessionEvents(tintin)
        #: per-session undo log: bound to the committing thread while
        #: this session's batch (or spliced read) touches base tables
        self.transactions = TransactionManager()
        self._expired = False
        #: commit-in-flight pin count: while positive, idle/TTL expiry
        #: must not reap the session (its staged events are owned by a
        #: queued commit request); guarded by ``_pin_lock``
        self._pins = 0
        self._pin_lock = threading.Lock()
        self.commits = 0
        self.rejections = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def expired(self) -> bool:
        if self._expired:
            return True
        if (
            self.ttl is not None
            and not self.pinned
            and time.monotonic() - self.last_used > self.ttl
        ):
            self.expire()  # lapsed TTL: discard staged events too
        return self._expired

    @property
    def pinned(self) -> bool:
        """Whether a commit currently owns this session's staged events."""
        with self._pin_lock:
            return self._pins > 0

    @contextmanager
    def _commit_pin(self):
        """Pin the session for the duration of a commit: expiry sweeps
        skip pinned sessions, and a direct ``expire()`` leaves the
        staged events alone (the queued commit request owns them)."""
        with self._pin_lock:
            self._pins += 1
        try:
            yield
        finally:
            with self._pin_lock:
                self._pins -= 1

    def expire(self) -> int:
        """Kill the session, discarding any staged events.

        Returns the number of staged event rows dropped — they were
        never validated or applied, exactly as if the client had
        disconnected before calling safeCommit.  If a commit is in
        flight (the session is pinned), the staged events are *not*
        discarded: they already belong to the queued commit request,
        whose validate-and-apply decision stands; the session merely
        becomes unusable afterwards.
        """
        self._expired = True
        dropped = 0 if self.pinned else self.events.truncate()
        if self._manager is not None:
            self._manager._forget(self.session_id)
        return dropped

    close = expire

    def _check_alive(self) -> None:
        if self.expired:
            raise SessionExpired(
                f"session {self.session_id!r} has expired; its staged "
                "events were discarded"
            )
        self.last_used = time.monotonic()

    # -- staging -----------------------------------------------------------

    def _stage_insert_locked(self, table: str, rows: Iterable[tuple]) -> int:
        """Stage insertions; caller must hold the scheduler read lock."""
        base = self.db.table(table)
        validated = [base.validate_row(tuple(row)) for row in rows]
        if validated:
            ins, dels = self.events.pair(table)
            stage_insert(base, ins, dels, validated)
        return len(validated)

    def _stage_delete_locked(self, table: str, rows: Iterable[tuple]) -> int:
        """Stage deletions; caller must hold the scheduler read lock."""
        base = self.db.table(table)
        validated = [base.validate_row(tuple(row)) for row in rows]
        if validated:
            ins, dels = self.events.pair(table)
            stage_delete(base, ins, dels, validated)
        return len(validated)

    def insert(self, table: str, rows: Iterable[tuple]) -> int:
        """Stage row insertions (the session-private counterpart of the
        INSTEAD OF capture trigger)."""
        self._check_alive()
        self.events.pair(table)  # fail fast on uncaptured tables
        with self.scheduler.rwlock.read_locked():
            return self._stage_insert_locked(table, rows)

    def delete(self, table: str, rows: Iterable[tuple]) -> int:
        """Stage row deletions against the current base state."""
        self._check_alive()
        self.events.pair(table)
        with self.scheduler.rwlock.read_locked():
            return self._stage_delete_locked(table, rows)

    def execute(self, sql: str):
        """Execute one SQL statement in this session.

        INSERT/DELETE/UPDATE are parsed through the shared DML AST
        cache and staged privately (an UPDATE stages delete-old +
        insert-new, the paper's event model).  SELECTs run as snapshot
        reads.  DDL is rejected — schema changes go through the
        database facade, not a session.
        """
        self._check_alive()
        if self.db.plan_cache_enabled and sql in self.db.plan_cache:
            # a known SELECT: skip the parse entirely (query() executes
            # through the prepared-plan cache keyed on this text)
            return self.query(sql)
        stmt = self.db.parse_dml_cached(sql)
        if isinstance(stmt, n.SelectStatement):
            if self.db.plan_cache_enabled:
                # seed the plan cache from the AST we just parsed so
                # query() does not parse the same text a second time
                self.db.prepare_cached(sql, stmt.query)
            return self.query(sql)
        # resolution (WHERE/SELECT evaluation against base) and staging
        # happen under ONE read-lock acquisition: a commit window
        # sliding between them could make the resolved rows stale
        # (e.g. an UPDATE re-inserting a row another session deleted)
        if isinstance(stmt, n.Insert):
            with self.scheduler.rwlock.read_locked():
                table, rows = self.db.resolve_insert_rows(stmt)
                return self._stage_insert_locked(table.name, rows)
        if isinstance(stmt, n.Delete):
            # WHERE is evaluated against the base table only — faithful
            # INSTEAD OF trigger behaviour (see event_tables docstring)
            with self.scheduler.rwlock.read_locked():
                table, victims = self.db.resolve_delete_rows(stmt)
                return self._stage_delete_locked(table.name, victims)
        if isinstance(stmt, n.Update):
            with self.scheduler.rwlock.read_locked():
                table, old_rows, new_rows = self.db.resolve_update_rows(stmt)
                self._stage_delete_locked(table.name, old_rows)
                self._stage_insert_locked(table.name, new_rows)
            return len(old_rows)
        raise ExecutionError(
            f"sessions cannot execute {type(stmt).__name__} — only DML "
            "and SELECT run inside a session"
        )

    def discard(self) -> int:
        """Drop the staged update without validating it."""
        self._check_alive()
        return self.events.truncate()

    # -- introspection -----------------------------------------------------

    def pending_counts(self) -> dict[str, tuple[int, int]]:
        return self.events.counts()

    def has_pending_events(self) -> bool:
        return self.events.has_events()

    # -- snapshot reads ----------------------------------------------------

    def query(self, sql: str):
        """Run a SELECT against a consistent snapshot: committed base
        state plus (only) this session's staged events.

        Staged events are merged at read time as table overlays inside
        the execution context — base tables are never touched, so the
        read runs under the **shared** lock concurrently with every
        other reader, perturbs no ``data_version`` stamp or row count,
        and can never spuriously invalidate a cached plan.
        """
        self._check_alive()
        with self.scheduler.rwlock.read_locked():
            return self.db.query(sql, overlays=self.events.overlays())

    def query_spliced(self, sql: str):
        """The historical splice read path, kept as a differential
        oracle (and baseline) for the overlay-merge executor: splice
        the staged events into the base tables under the exclusive
        lock, query, and undo the splice — no other session can run a
        read or commit in between, and base state is bit-identical
        afterwards (undo replay).  Unlike :meth:`query` it serializes
        every reader and bumps ``data_version`` stamps; production
        reads should use :meth:`query`.
        """
        self._check_alive()
        if not self.events.has_events():
            with self.scheduler.rwlock.read_locked():
                return self.db.query(sql)
        with self.scheduler.rwlock.write_locked():
            undo: list[tuple[str, Table, tuple]] = []
            try:
                self._splice_in(undo)
                return self.db.query(sql)
            finally:
                self._splice_out(undo)

    def rows(self, table: str) -> list[tuple]:
        """The session's effective rows of one table: base − staged
        deletions + staged insertions (multiset semantics: one staged
        delete of a duplicated row hides exactly one copy)."""
        self._check_alive()
        base = self.db.table(table)
        with self.scheduler.rwlock.read_locked():
            overlays = (
                self.events.overlays() if self.events.captured(table) else None
            )
            overlay = (overlays or {}).get(normalize(table))
            if overlay is None:
                return base.rows_snapshot()
            return list(overlay.scan(base))

    def _splice_in(self, undo: list[tuple[str, Table, tuple]]) -> None:
        inserts, deletes = self.events.snapshot()
        for name, rows in deletes.items():
            base = self.db.table(name)
            for row in rows:
                if base.delete_row(row):
                    undo.append(("deleted", base, row))
                # a concurrent commit may have removed the row since it
                # was staged; the snapshot then simply lacks it
        for name, rows in inserts.items():
            base = self.db.table(name)
            for row in rows:
                try:
                    base.insert(row)
                except ConstraintViolation:
                    # another session committed the same key since
                    # staging; the snapshot shows the committed row.
                    # Anything else (type error, index corruption) is a
                    # real failure and must propagate, not silently
                    # drop the row from the snapshot.
                    continue
                undo.append(("inserted", base, row))

    @staticmethod
    def _splice_out(undo: list[tuple[str, Table, tuple]]) -> None:
        for action, base, row in reversed(undo):
            if action == "inserted":
                base.delete_row(row)
            else:
                base.insert(row)

    # -- committing --------------------------------------------------------

    def commit(
        self,
        deadline: Optional[float] = None,
        obs: Optional[object] = None,
    ) -> "CommitResult":
        """Validate-and-apply this session's staged update through the
        serialized commit scheduler (group commit may batch it with
        other sessions' compatible updates).

        The session is *pinned* for the duration: an idle-expiry sweep
        (or TTL lapse) racing the queued request cannot discard the
        staged events mid-validation.  ``deadline`` (an absolute
        ``time.monotonic()`` instant) cancels the request before its
        violation-view pass once lapsed — the pin is released either
        way when this call returns.  ``obs``
        (:class:`repro.obs.trace.CommitObs`) carries an in-progress
        trace into the scheduler; the caller keeps ownership.
        """
        self._check_alive()  # unpinned: a lapsed TTL raises here
        with self._commit_pin():
            # re-check: an expiry sweep may have reaped the session
            # between the TTL check and the pin (its events were then
            # discarded — there is nothing left to commit)
            self._check_alive()
            result = self.scheduler.commit(self, deadline=deadline, obs=obs)
        if result.committed:
            self.commits += 1
        else:
            self.rejections += 1
        return result

    safe_commit = commit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "expired" if self.expired else "active"
        return f"Session({self.session_id!r}, {state})"


class SessionManager:
    """Creates, tracks and expires sessions for one :class:`Tintin`."""

    _ids = itertools.count(1)

    def __init__(
        self,
        tintin: "Tintin",
        default_ttl: Optional[float] = None,
        policy: str = "group",
        gather_seconds: float = 0.0,
    ):
        from .scheduler import CommitScheduler  # local: avoid import cycle

        self.tintin = tintin
        self.default_ttl = default_ttl
        self.scheduler = CommitScheduler(
            tintin, policy=policy, gather_seconds=gather_seconds
        )
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()
        #: the background expiry sweeper (see :meth:`start_sweeper`)
        self._sweeper: Optional[threading.Thread] = None
        self._sweeper_stop = threading.Event()
        self._sweeper_max_idle: Optional[float] = None
        self.swept_sessions = 0

    def create(
        self, ttl: Optional[float] = None, priority: int = 0
    ) -> Session:
        session_id = f"s{next(self._ids):04d}"
        session = Session(
            session_id,
            self.tintin,
            self.scheduler,
            manager=self,
            ttl=ttl if ttl is not None else self.default_ttl,
            priority=priority,
        )
        with self._lock:
            self._sessions[session_id] = session
        return session

    def get(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None or session.expired:
            raise SessionExpired(
                f"session {session_id!r} is unknown or expired"
            )
        return session

    def _forget(self, session_id: str) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)

    def expire_idle(self, max_idle_seconds: float) -> list[str]:
        """Expire every session idle longer than ``max_idle_seconds``;
        their staged events are discarded.  Returns the expired ids.

        Sessions with a commit in flight are skipped: the queued
        request owns their staged events, and reaping them
        mid-validation would discard (or worse, half-discard) an
        update the scheduler is about to decide on.  A session that
        pins itself between the scan and the ``expire()`` call is
        still safe — ``expire()`` leaves a pinned session's events
        alone.
        """
        now = time.monotonic()
        with self._lock:
            idle = [
                s
                for s in self._sessions.values()
                if now - s.last_used > max_idle_seconds and not s.pinned
            ]
        for session in idle:
            if session.pinned:  # pinned since the scan: leave it alone
                continue
            session.expire()
        return [s.session_id for s in idle if s.expired]

    # -- the background sweeper --------------------------------------------

    def sweep(self) -> list[str]:
        """One expiry pass: reap every session whose TTL has lapsed
        (and, when the sweeper was configured with ``max_idle``, every
        session idle longer than that).  Pinned sessions are skipped —
        the same rules as :meth:`expire_idle`.  Returns reaped ids."""
        reaped: list[str] = []
        with self._lock:
            candidates = list(self._sessions.values())
        for session in candidates:
            # touching .expired performs the TTL self-expiry (and
            # respects the commit pin); before the sweeper existed this
            # only ever happened when some other call wandered by
            if session.expired:
                reaped.append(session.session_id)
        if self._sweeper_max_idle is not None:
            reaped.extend(self.expire_idle(self._sweeper_max_idle))
        self.swept_sessions += len(reaped)
        return reaped

    def start_sweeper(
        self, interval: float = 1.0, max_idle: Optional[float] = None
    ) -> None:
        """Run :meth:`sweep` every ``interval`` seconds in a daemon
        thread, so TTL/idle expiry no longer depends on another call
        happening to touch the manager.  Idempotent; stopped by
        :meth:`stop_sweeper` (which ``Tintin.close`` calls)."""
        if self._sweeper is not None and self._sweeper.is_alive():
            self._sweeper_max_idle = max_idle
            return
        self._sweeper_max_idle = max_idle
        self._sweeper_stop.clear()

        def run() -> None:
            while not self._sweeper_stop.wait(timeout=interval):
                self.sweep()

        self._sweeper = threading.Thread(
            target=run, name="tintin-session-sweeper", daemon=True
        )
        self._sweeper.start()

    def stop_sweeper(self) -> None:
        """Stop the background sweeper and wait for it to exit."""
        thread = self._sweeper
        if thread is None:
            return
        self._sweeper_stop.set()
        thread.join(timeout=5)
        self._sweeper = None

    @property
    def sweeper_running(self) -> bool:
        thread = self._sweeper
        return thread is not None and thread.is_alive()

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def active_sessions(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())
