"""Per-session staged updates: the multi-client generalization of the
paper's event tables.

The paper stages one proposed update in the global ``ins_T``/``del_T``
tables and validates it at ``safeCommit``.  Event tables are naturally
*per-client* state, so a :class:`Session` owns a private staging
overlay — shape-identical ins/del tables that live outside the shared
catalog.  Another session can never observe them: base tables hold only
committed data, and the global event tables are populated exclusively
inside the commit scheduler's serialized window.

Reads are snapshot-consistent.  A plain query takes the scheduler's
shared read lock, so it sees base state entirely before or entirely
after any other session's commit — never halfway through one.  When the
session has staged events of its own, the read additionally sees them
("read your own writes"): the overlay is spliced into the base tables
under the exclusive lock, the query runs, and the splice is undone —
a begin/query/rollback against the hypothetical post-commit state.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import TYPE_CHECKING, Iterable, Optional

from ..errors import ExecutionError, SessionExpired
from ..minidb.schema import normalize
from ..minidb.storage import Table
from ..minidb.transactions import TransactionManager
from ..sqlparser import nodes as n
from ..core.event_tables import (
    del_table_name,
    event_schema,
    ins_table_name,
    stage_delete,
    stage_insert,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.safe_commit import CommitResult
    from ..core.tintin import Tintin
    from .scheduler import CommitScheduler


class SessionEvents:
    """A session's private staging area: one ins/del table pair per
    instrumented base table, outside the shared catalog."""

    def __init__(self, tintin: "Tintin"):
        self._db = tintin.db
        self._tables: dict[str, tuple[Table, Table]] = {}
        for name in tintin.events.captured_tables:
            base = self._db.table(name)
            key = normalize(name)
            self._tables[key] = (
                Table(event_schema(base.schema, ins_table_name(name)), "session"),
                Table(event_schema(base.schema, del_table_name(name)), "session"),
            )

    def pair(self, table: str) -> tuple[Table, Table]:
        key = normalize(table)
        pair = self._tables.get(key)
        if pair is None:
            raise ExecutionError(
                f"table {table!r} is not instrumented for capture — "
                "sessions can only stage updates on captured tables"
            )
        return pair

    def captured(self, table: str) -> bool:
        return normalize(table) in self._tables

    def snapshot(self) -> tuple[dict[str, list[tuple]], dict[str, list[tuple]]]:
        """Copy the staged events as ``(inserts, deletes)`` row dicts."""
        inserts: dict[str, list[tuple]] = {}
        deletes: dict[str, list[tuple]] = {}
        for key, (ins, dels) in self._tables.items():
            if len(ins):
                inserts[key] = ins.rows_snapshot()
            if len(dels):
                deletes[key] = dels.rows_snapshot()
        return inserts, deletes

    def counts(self) -> dict[str, tuple[int, int]]:
        return {
            key: (len(ins), len(dels))
            for key, (ins, dels) in self._tables.items()
        }

    def has_events(self) -> bool:
        return any(
            len(ins) or len(dels) for ins, dels in self._tables.values()
        )

    def truncate(self) -> int:
        removed = 0
        for ins, dels in self._tables.values():
            removed += ins.truncate()
            removed += dels.truncate()
        return removed


class Session:
    """One client's view of the database: private staging + snapshot reads.

    Created via :meth:`repro.core.Tintin.create_session` (or the
    :class:`SessionManager` directly).  All staging respects the same
    net-event invariants the capture triggers maintain, evaluated
    against the session's own overlay — never another session's.
    """

    def __init__(
        self,
        session_id: str,
        tintin: "Tintin",
        scheduler: "CommitScheduler",
        manager: Optional["SessionManager"] = None,
        ttl: Optional[float] = None,
    ):
        self.session_id = session_id
        self.tintin = tintin
        self.db = tintin.db
        self.scheduler = scheduler
        self._manager = manager
        self.ttl = ttl
        self.created_at = time.monotonic()
        self.last_used = self.created_at
        self.events = SessionEvents(tintin)
        #: per-session undo log: bound to the committing thread while
        #: this session's batch (or spliced read) touches base tables
        self.transactions = TransactionManager()
        self._expired = False
        self.commits = 0
        self.rejections = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def expired(self) -> bool:
        if self._expired:
            return True
        if self.ttl is not None and (
            time.monotonic() - self.last_used > self.ttl
        ):
            self.expire()  # lapsed TTL: discard staged events too
        return self._expired

    def expire(self) -> int:
        """Kill the session, discarding any staged events.

        Returns the number of staged event rows dropped — they were
        never validated or applied, exactly as if the client had
        disconnected before calling safeCommit.
        """
        self._expired = True
        dropped = self.events.truncate()
        if self._manager is not None:
            self._manager._forget(self.session_id)
        return dropped

    close = expire

    def _check_alive(self) -> None:
        if self.expired:
            raise SessionExpired(
                f"session {self.session_id!r} has expired; its staged "
                "events were discarded"
            )
        self.last_used = time.monotonic()

    # -- staging -----------------------------------------------------------

    def _stage_insert_locked(self, table: str, rows: Iterable[tuple]) -> int:
        """Stage insertions; caller must hold the scheduler read lock."""
        base = self.db.table(table)
        validated = [base.validate_row(tuple(row)) for row in rows]
        if validated:
            ins, dels = self.events.pair(table)
            stage_insert(base, ins, dels, validated)
        return len(validated)

    def _stage_delete_locked(self, table: str, rows: Iterable[tuple]) -> int:
        """Stage deletions; caller must hold the scheduler read lock."""
        base = self.db.table(table)
        validated = [base.validate_row(tuple(row)) for row in rows]
        if validated:
            ins, dels = self.events.pair(table)
            stage_delete(base, ins, dels, validated)
        return len(validated)

    def insert(self, table: str, rows: Iterable[tuple]) -> int:
        """Stage row insertions (the session-private counterpart of the
        INSTEAD OF capture trigger)."""
        self._check_alive()
        self.events.pair(table)  # fail fast on uncaptured tables
        with self.scheduler.rwlock.read_locked():
            return self._stage_insert_locked(table, rows)

    def delete(self, table: str, rows: Iterable[tuple]) -> int:
        """Stage row deletions against the current base state."""
        self._check_alive()
        self.events.pair(table)
        with self.scheduler.rwlock.read_locked():
            return self._stage_delete_locked(table, rows)

    def execute(self, sql: str):
        """Execute one SQL statement in this session.

        INSERT/DELETE/UPDATE are parsed through the shared DML AST
        cache and staged privately (an UPDATE stages delete-old +
        insert-new, the paper's event model).  SELECTs run as snapshot
        reads.  DDL is rejected — schema changes go through the
        database facade, not a session.
        """
        self._check_alive()
        if self.db.plan_cache_enabled and sql in self.db.plan_cache:
            # a known SELECT: skip the parse entirely (query() executes
            # through the prepared-plan cache keyed on this text)
            return self.query(sql)
        stmt = self.db.parse_dml_cached(sql)
        if isinstance(stmt, n.SelectStatement):
            if self.db.plan_cache_enabled:
                # seed the plan cache from the AST we just parsed so
                # query() does not parse the same text a second time
                self.db.prepare_cached(sql, stmt.query)
            return self.query(sql)
        # resolution (WHERE/SELECT evaluation against base) and staging
        # happen under ONE read-lock acquisition: a commit window
        # sliding between them could make the resolved rows stale
        # (e.g. an UPDATE re-inserting a row another session deleted)
        if isinstance(stmt, n.Insert):
            with self.scheduler.rwlock.read_locked():
                table, rows = self.db.resolve_insert_rows(stmt)
                return self._stage_insert_locked(table.name, rows)
        if isinstance(stmt, n.Delete):
            # WHERE is evaluated against the base table only — faithful
            # INSTEAD OF trigger behaviour (see event_tables docstring)
            with self.scheduler.rwlock.read_locked():
                table, victims = self.db.resolve_delete_rows(stmt)
                return self._stage_delete_locked(table.name, victims)
        if isinstance(stmt, n.Update):
            with self.scheduler.rwlock.read_locked():
                table, old_rows, new_rows = self.db.resolve_update_rows(stmt)
                self._stage_delete_locked(table.name, old_rows)
                self._stage_insert_locked(table.name, new_rows)
            return len(old_rows)
        raise ExecutionError(
            f"sessions cannot execute {type(stmt).__name__} — only DML "
            "and SELECT run inside a session"
        )

    def discard(self) -> int:
        """Drop the staged update without validating it."""
        self._check_alive()
        return self.events.truncate()

    # -- introspection -----------------------------------------------------

    def pending_counts(self) -> dict[str, tuple[int, int]]:
        return self.events.counts()

    def has_pending_events(self) -> bool:
        return self.events.has_events()

    # -- snapshot reads ----------------------------------------------------

    def query(self, sql: str):
        """Run a SELECT against a consistent snapshot: committed base
        state plus (only) this session's staged events."""
        self._check_alive()
        if not self.events.has_events():
            with self.scheduler.rwlock.read_locked():
                return self.db.query(sql)
        # read-your-writes: splice the overlay into the base tables
        # under the exclusive lock, query, and undo the splice — no
        # other session can run a read or commit in between, and base
        # state is bit-identical afterwards (undo log replay).
        with self.scheduler.rwlock.write_locked():
            undo: list[tuple[str, Table, tuple]] = []
            try:
                self._splice_in(undo)
                return self.db.query(sql)
            finally:
                self._splice_out(undo)

    def rows(self, table: str) -> list[tuple]:
        """The session's effective rows of one table: base − staged
        deletions + staged insertions."""
        self._check_alive()
        base = self.db.table(table)
        if not self.events.captured(table):
            with self.scheduler.rwlock.read_locked():
                return base.rows_snapshot()
        ins, dels = self.events.pair(table)
        with self.scheduler.rwlock.read_locked():
            staged_deletes = set(dels.rows_snapshot())
            result = [
                row for row in base.rows_snapshot() if row not in staged_deletes
            ]
            result.extend(ins.rows_snapshot())
        return result

    def _splice_in(self, undo: list[tuple[str, Table, tuple]]) -> None:
        inserts, deletes = self.events.snapshot()
        for name, rows in deletes.items():
            base = self.db.table(name)
            for row in rows:
                if base.delete_row(row):
                    undo.append(("deleted", base, row))
                # a concurrent commit may have removed the row since it
                # was staged; the snapshot then simply lacks it
        for name, rows in inserts.items():
            base = self.db.table(name)
            for row in rows:
                try:
                    base.insert(row)
                except Exception:
                    # e.g. another session committed the same key since
                    # staging; the snapshot shows the committed row
                    continue
                undo.append(("inserted", base, row))

    @staticmethod
    def _splice_out(undo: list[tuple[str, Table, tuple]]) -> None:
        for action, base, row in reversed(undo):
            if action == "inserted":
                base.delete_row(row)
            else:
                base.insert(row)

    # -- committing --------------------------------------------------------

    def commit(self) -> "CommitResult":
        """Validate-and-apply this session's staged update through the
        serialized commit scheduler (group commit may batch it with
        other sessions' compatible updates)."""
        self._check_alive()
        result = self.scheduler.commit(self)
        if result.committed:
            self.commits += 1
        else:
            self.rejections += 1
        return result

    safe_commit = commit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "expired" if self.expired else "active"
        return f"Session({self.session_id!r}, {state})"


class SessionManager:
    """Creates, tracks and expires sessions for one :class:`Tintin`."""

    _ids = itertools.count(1)

    def __init__(
        self,
        tintin: "Tintin",
        default_ttl: Optional[float] = None,
        policy: str = "group",
        gather_seconds: float = 0.0,
    ):
        from .scheduler import CommitScheduler  # local: avoid import cycle

        self.tintin = tintin
        self.default_ttl = default_ttl
        self.scheduler = CommitScheduler(
            tintin, policy=policy, gather_seconds=gather_seconds
        )
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()

    def create(self, ttl: Optional[float] = None) -> Session:
        session_id = f"s{next(self._ids):04d}"
        session = Session(
            session_id,
            self.tintin,
            self.scheduler,
            manager=self,
            ttl=ttl if ttl is not None else self.default_ttl,
        )
        with self._lock:
            self._sessions[session_id] = session
        return session

    def get(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None or session.expired:
            raise SessionExpired(
                f"session {session_id!r} is unknown or expired"
            )
        return session

    def _forget(self, session_id: str) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)

    def expire_idle(self, max_idle_seconds: float) -> list[str]:
        """Expire every session idle longer than ``max_idle_seconds``;
        their staged events are discarded.  Returns the expired ids."""
        now = time.monotonic()
        with self._lock:
            idle = [
                s
                for s in self._sessions.values()
                if now - s.last_used > max_idle_seconds
            ]
        for session in idle:
            session.expire()
        return [s.session_id for s in idle]

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def active_sessions(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())
