"""The serialized group-commit scheduler.

``safeCommit`` must remain what the paper made it: one update,
validated against the stored violation views, applied or rejected
atomically.  With many sessions proposing updates concurrently the
scheduler serializes exactly that step — and amortizes it.  Commits are
queued FIFO; whichever client thread first grabs the leader lock drains
the queue and processes the whole batch inside a single exclusive
window (one write-lock acquisition; capture triggers stay armed — the
window's applies are trigger-free physical batch writes, and any
concurrent default-session staging blocks on the read lock).

Inside the window the batch is split into *groups* of pairwise
compatible members.  A compatible group takes the fast path: all
members' events are presented to the violation views together as
**overlays** on the (empty-during-the-window) global event tables —
the views run **once** over the union without physically loading a
row — and one combined ``apply_batch`` applies everything: k commits
for the price of one validation pass.  Any violation, constraint error
or incompatibility falls back to the strict serial protocol (overlay
one member's events, validate, apply — exactly the single-session
semantics, in FIFO order), which also attributes each violation to the
session that staged the offending events.

Compatibility is a conservative static check on the members' *key
footprints*:

* staged-row stakes — the key values a member inserts or deletes, per
  table and per referencable key space (PK and any UNIQUE key an FK
  targets) — must be pairwise disjoint (no write-write conflicts);
* one member's stakes must not intersect another's *FK references*
  (the keys its staged rows point at), in either direction — no
  member's apply can create or erase another member's violation
  witnesses through an FK join onto a staged row;
* staged values meeting in a denial *keyspace* — a shared variable of
  an installed assertion's denial, whose occurrence list the compiler
  derives statically (:func:`repro.core.denial_compiler
  .derive_coupling`) — must not pair a witness-creating member with a
  witness-*removing* one: deleting at a positive occurrence or
  inserting at a negated one can mask another member's violation in
  the union, so such members serialize (two sessions editing the
  lineitems of one order under an at-least-one assertion interact;
  orders sharing a customer parent no keyspace ties to their events do
  not).  Because the keyspaces come from the unified denial variables
  rather than declared FKs, assertions joining two event-receiving
  tables on non-FK attributes are covered too — ``policy="serial"`` is
  no longer required for them (tables a denial relates without any
  comparable key, e.g. through an inequality builtin alone, serialize
  pairwise via the spec's wildcard pairs);
* for aggregate assertions, the members' affected group keys must be
  disjoint (two sessions growing the same order's lineitem count must
  serialize).

The differential tests (sequential vs concurrent runs must
accept/reject identical updates) exercise the shipped workloads.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..errors import ConstraintViolation
from ..minidb.schema import normalize
from ..minidb.storage import TableOverlay
from ..minidb.transactions import TransactionManager
from ..core.event_tables import del_table_name, ins_table_name
from ..core.safe_commit import CommitResult
from .locks import ReadWriteLock
from ..obs.metrics import StatsBlock
from ..obs.trace import new_span_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.tintin import Tintin
    from .session import Session


@dataclass
class _Footprint:
    """The key surface one staged update touches (see module docstring)."""

    #: table -> row identities (PK values, whole rows for keyless
    #: tables) staged ins+del: the write-write conflict surface
    stakes: dict[str, set] = field(default_factory=dict)
    #: (table, referenced-columns) -> staged rows projected onto that
    #: key space — one bucket per key an FK can reference (PK or a
    #: declared UNIQUE key), so stakes and refs always compare values
    #: of the same columns
    key_stakes: dict[tuple, set] = field(default_factory=dict)
    #: (parent table, referenced-columns) -> key values this update's
    #: staged rows point at through their FKs
    refs: dict[tuple, set] = field(default_factory=dict)
    #: aggregate-spec name -> affected group-key values
    agg_groups: dict[str, set] = field(default_factory=dict)
    #: normalized names of tables this update stages events in
    event_tables: set = field(default_factory=set)
    #: keyspace signature (its occurrence tuple — shared by
    #: structurally identical denials) -> the values this update's
    #: staged rows bind in that keyspace, split by occurrence role and
    #: operation (see ``CouplingSpec`` and ``_KeyspaceBindings``)
    coupling: dict[tuple, "_KeyspaceBindings"] = field(default_factory=dict)

    def compatible(self, other: "_Footprint", coupling) -> bool:
        """Whether grouping with ``other`` preserves FIFO semantics.

        ``coupling`` is the tuple of statically derived
        :class:`~repro.core.denial_compiler.CouplingSpec` — two members
        serialize when one stages a witness-*removing* binding (a
        delete at a positive occurrence or an insert at a negated one)
        into a denial keyspace where the other stages a witness-
        *creating* one (an insert at a positive occurrence or a delete
        at a negated one): the removal could repair the other member's
        violation, making a union pass where FIFO would have rejected.
        Removal-vs-creation aimed at the *same* positive atom is exempt
        — there it only repairs if the exact staged rows coincide,
        which the stakes check already serializes.  They also
        serialize when staging events on opposite sides of a wildcard
        pair.  Creating-vs-creating overlaps stay groupable: they can
        only turn a clean union violating, which the union pass detects
        and replays serially anyway.
        """
        for table, keys in self.stakes.items():
            if keys & other.stakes.get(table, _EMPTY):
                return False
        for space, keys in self.key_stakes.items():
            if keys & other.refs.get(space, _EMPTY):
                return False
        for space, keys in self.refs.items():
            if keys & other.key_stakes.get(space, _EMPTY):
                return False
        for key, mine in self.coupling.items():
            theirs = other.coupling.get(key)
            if theirs is not None and mine.conflicts(theirs):
                return False
        for spec in coupling:
            for a, b in spec.wildcard_pairs:
                if (
                    a in self.event_tables and b in other.event_tables
                ) or (b in self.event_tables and a in other.event_tables):
                    return False
        for spec, keys in self.agg_groups.items():
            if keys & other.agg_groups.get(spec, _EMPTY):
                return False
        return True


_EMPTY: frozenset = frozenset()


class _KeyspaceBindings:
    """One update's staged values in one denial keyspace, split four
    ways: positive-atom inserts/deletes by atom index (``pi``/``pd``)
    and negated-occurrence inserts/deletes combined (``ni``/``nd``).

    Witness-removing bindings are ``pd`` and ``ni``; witness-creating
    ones are ``pi`` and ``nd``.  :meth:`conflicts` pairs each removal
    with the creations it could repair — every combination except a
    delete and an insert aimed at the *same* positive atom, which bind
    distinct witness tuples unless the staged rows are identical (and
    identical rows already collide on stakes).
    """

    __slots__ = ("pi", "pd", "ni", "nd", "removes", "creates")

    def __init__(self):
        self.pi: dict[int, set] = {}
        self.pd: dict[int, set] = {}
        self.ni: set = set()
        self.nd: set = set()
        #: flat unions (sealed by :meth:`seal` after projection): any
        #: precise repair pairing implies these coarse sets intersect,
        #: so disjointness is a cheap early exit for the common case
        #: of key-disjoint members
        self.removes: set = set()
        self.creates: set = set()

    def seal(self) -> None:
        self.removes = self.ni.union(*self.pd.values())
        self.creates = self.nd.union(*self.pi.values())

    def conflicts(self, other: "_KeyspaceBindings") -> bool:
        if (
            not (self.removes & other.creates)
            and not (other.removes & self.creates)
        ):
            return False
        return self._repairs(other) or other._repairs(self)

    def _repairs(self, other: "_KeyspaceBindings") -> bool:
        """Whether one of our removals could repair one of ``other``'s
        creations in the union state."""
        if self.ni and (
            self.ni & other.nd
            or any(self.ni & values for values in other.pi.values())
        ):
            return True
        if other.nd and any(
            values & other.nd for values in self.pd.values()
        ):
            return True
        for atom, deleted in self.pd.items():
            for other_atom, inserted in other.pi.items():
                if atom != other_atom and deleted & inserted:
                    return True
        return False


def _deadline_result() -> CommitResult:
    """The verdict for a request cancelled by its own deadline: not
    committed, not applied, no WAL frame — safely retriable."""
    return CommitResult(
        committed=False,
        constraint_error="deadline exceeded before validation completed",
        deadline_expired=True,
    )

def commit_verdict(result: CommitResult) -> str:
    """The one-word outcome label used in traces, metrics and the
    slow-commit log: committed / deadline / violation / error."""
    if result.committed:
        return "committed"
    if result.deadline_expired:
        return "deadline"
    if result.violations:
        return "violation"
    return "error"


def _columns_key(columns: tuple[str, ...]) -> tuple[str, ...]:
    return tuple(normalize(c) for c in columns)


@dataclass
class _PendingCommit:
    """One queued safeCommit request (events already snapshotted)."""

    session: Optional["Session"]
    inserts: dict[str, list[tuple]]
    deletes: dict[str, list[tuple]]
    footprint: _Footprint
    transactions: TransactionManager
    #: absolute ``time.monotonic()`` deadline, or None for "no limit".
    #: Checked at the window start and again right before the
    #: violation-view pass, so a doomed request is cancelled before
    #: the expensive work instead of after it.
    deadline: Optional[float] = None
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[CommitResult] = None
    #: observation context (:class:`repro.obs.trace.CommitObs`) when
    #: this commit is being traced or slow-logged; None on the default
    #: path — every stage point below guards on exactly this
    obs: Optional[object] = None
    #: ``time.monotonic()`` at enqueue, for the queue.wait span (only
    #: stamped when ``obs`` is present)
    enqueued_at: float = 0.0

    @property
    def size(self) -> int:
        return sum(len(r) for r in self.inserts.values()) + sum(
            len(r) for r in self.deletes.values()
        )

    def expired(self, now: Optional[float] = None) -> bool:
        return self.deadline is not None and (
            now if now is not None else time.monotonic()
        ) > self.deadline


class SchedulerStats(StatsBlock):
    """Counters describing how commits were scheduled.

    Mutate through :meth:`bump` and read through :meth:`snapshot`: the
    leader thread, the log-writer thread and metrics readers (the
    ``/metrics`` endpoint) all touch these concurrently, and ``+=`` on
    an attribute is neither atomic nor consistent across fields — an
    unguarded reader could see ``commits`` from one window and
    ``batches`` from another.

    Notable fields: ``deadline_expired`` counts requests whose deadline
    lapsed before their violation-view pass ran (cancelled inside the
    scheduler, never validated or applied); ``wal_fsyncs`` <
    ``wal_appends`` is group commit at work (several commits' records
    shared one fsync); ``writer_windows`` > ``writer_flushes`` is the
    log-writer thread's burst coalescing (several windows per fsync).
    """

    COUNTERS = (
        "batches",
        "commits",
        "group_fast_path",
        "serial_commits",
        "fallbacks",
        "deadline_expired",
        "wal_appends",
        "wal_fsyncs",
        "writer_flushes",
        "writer_windows",
        "prepares",
        "prepared_commits",
        "prepared_aborts",
    )
    ACCUMULATORS = ("check_seconds",)
    HIGH_WATER = ("max_group_size",)
    PREFIX = "tintin_scheduler"
    HELP = {
        "commits": "Commits applied by the scheduler",
        "group_fast_path": "Commits validated and applied as part of a compatible group",
        "fallbacks": "Groups that failed joint validation and re-ran serially",
        "deadline_expired": "Commits cancelled in the scheduler after their deadline lapsed",
        "prepares": "Two-phase commit prepare votes logged (yes votes)",
        "prepared_commits": "Prepared transactions committed by coordinator decision",
        "prepared_aborts": "Prepared transactions aborted by coordinator decision",
    }

    def saw_group(self, size: int) -> None:
        self.record_max(max_group_size=size)


class LogWriter:
    """Group commit's durability point, decoupled from the commit
    window: an idle-path inline flush plus a dedicated log-writer
    thread for bursts.

    In ``batch`` mode the leader appends its window's WAL records
    inside the window and flushes adaptively: with no backlog it
    fsyncs inline (zero handoff — the steady closed-loop protocol,
    where the fsync doubles as the next window's natural gather
    period); with requests already queued behind the window — bursty
    load, commits arriving faster than windows drain — it *submits*
    the window here and immediately processes the next one.  The
    dedicated log-writer thread then drains every submitted window
    and issues **one** fsync for the whole burst: flushes batch
    *across* commit windows (on top of the one-record-per-group
    batching inside each window) while the leader's validation of the
    next window overlaps the disk wait — the fsync releases the GIL,
    so the overlap is real even on one core.

    The fsyncgate discipline is preserved end to end: acknowledgements
    still wait on the flush (a member's result is withheld until the
    fsync covering its record returns), and a failed fsync — which
    rolls back the WAL's unsynced frames and poisons the log — rejects
    every member of every window the burst covered.  Windows submitted
    after the poisoning are rejected the same way when their sync
    raises.
    """

    def __init__(self, stats: SchedulerStats):
        self.stats = stats
        self._cond = threading.Condition()
        self._pending: deque = deque()  # (manager, deferred) per window
        self._flushing = False
        self._stopped = False
        self._thread: Optional[threading.Thread] = None

    def submit(self, manager, deferred) -> None:
        """Queue one window's deferred members for the thread's next
        burst fsync."""
        with self._cond:
            if not self._stopped:
                if self._thread is None or not self._thread.is_alive():
                    self._thread = threading.Thread(
                        target=self._run, name="tintin-log-writer", daemon=True
                    )
                    self._thread.start()
                self._pending.append((manager, deferred))
                self._cond.notify()
                return
        # late window after shutdown: flush inline — outside the
        # condition lock (the fsync must not block drain/submit) and
        # with the same never-strand-a-member net as the thread path
        try:
            self._flush_burst([(manager, deferred)])
        finally:
            for pending, _ in deferred:
                if pending.result is None:
                    pending.result = CommitResult(
                        committed=False,
                        constraint_error="log flush failed",
                    )
                    pending.done.set()

    def drain(self) -> None:
        """Block until every submitted window has been flushed (or
        rejected).  With the leader lock held, this quiesces the whole
        durability pipeline: no window can start, none is in flight."""
        with self._cond:
            while self._pending or self._flushing:
                self._cond.wait(timeout=0.05)

    def stop(self) -> None:
        """Drain, then retire the thread (later windows flush inline)."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._stopped:
                    self._cond.wait()
                if not self._pending:
                    return  # stopped and drained
                burst = list(self._pending)
                self._pending.clear()
                self._flushing = True
            try:
                self._flush_burst(burst)
            finally:
                # catastrophe net: whatever happened, no member of the
                # burst may be stranded in its wait loop.  A flush that
                # died on something _flush_burst does not recognize
                # propagates (and kills this thread — submit() restarts
                # it), but its members are still rejected first.
                for _, deferred in burst:
                    for pending, _ in deferred:
                        if pending.result is None:
                            pending.result = CommitResult(
                                committed=False,
                                constraint_error="log flush failed",
                            )
                            pending.done.set()
                with self._cond:
                    self._flushing = False
                    self._cond.notify_all()

    def _flush_burst(self, burst) -> None:
        """One fsync covers every window in the burst; then, and only
        then, their withheld committed results become visible."""
        from ..errors import DurabilityError

        manager = burst[-1][0]
        fsync_start = time.monotonic()
        try:
            manager.sync()
        except (OSError, DurabilityError) as exc:
            # the WAL rolled back its unsynced frames and poisoned
            # itself (or already was poisoned): no member of any
            # affected window may ever be acknowledged — reject them
            # all
            for _, deferred in burst:
                for pending, _ in deferred:
                    pending.result = CommitResult(
                        committed=False,
                        constraint_error=f"log flush failed: {exc}",
                    )
                    pending.done.set()
            return
        self.stats.bump(
            wal_fsyncs=1, writer_flushes=1, writer_windows=len(burst)
        )
        fsync_end = time.monotonic()
        for _, deferred in burst:
            for pending, result in deferred:
                # getattr: tests drive the writer with duck-typed
                # member stubs that carry only done/result
                obs = getattr(pending, "obs", None)
                if obs is not None:
                    obs.record(
                        "wal.fsync",
                        fsync_start,
                        fsync_end,
                        windows=len(burst),
                    )
                pending.result = result
                pending.done.set()


class CommitScheduler:
    """Serializes (and group-batches) safeCommit across sessions."""

    def __init__(
        self,
        tintin: "Tintin",
        policy: str = "group",
        max_batch: int = 64,
        gather_seconds: float = 0.0,
    ):
        if policy not in ("group", "serial"):
            raise ValueError(f"unknown scheduler policy {policy!r}")
        self.tintin = tintin
        self.db = tintin.db
        self.events = tintin.events
        self.policy = policy
        self.max_batch = max_batch
        #: upper bound on how long a leader waits before draining the
        #: queue, giving concurrent submitters time to join the batch.
        #: The wait is adaptive — it polls in slices and stops as soon
        #: as arrivals settle — so a lone client pays roughly one slice,
        #: not the whole window.  0 disables gathering entirely (only
        #: arrivals during the previous window batch naturally).
        self.gather_seconds = gather_seconds
        #: readers (session queries) vs the exclusive commit window
        self.rwlock = ReadWriteLock()
        # default-session trigger captures (plain db.execute DML) take
        # the read side too, so they can never interleave with a commit
        # window that is using the global event tables as scratchpad
        self.events.set_capture_gate(self.rwlock.read_locked)
        self.stats = SchedulerStats()
        self._queue: deque[_PendingCommit] = deque()
        self._queue_lock = threading.Lock()
        self._leader_lock = threading.Lock()
        #: undo-log manager for combined (multi-session) applies
        self._group_transactions = TransactionManager()
        #: (assertion-set version, derived CouplingSpec tuple)
        self._coupling_cache: Optional[tuple] = None
        #: (assertion-set version, per-table keyspace projection index)
        self._coupling_proj_cache: Optional[tuple] = None
        #: the dedicated log-writer thread (batch-mode windows hand it
        #: their deferred members; it batches fsyncs across windows).
        #: Set ``log_writer_enabled = False`` to flush every window
        #: inline instead (the pre-log-writer protocol).
        self.log_writer_enabled = True
        self._log_writer = LogWriter(self.stats)
        #: fault-injection hook (``repro.net.faults.FaultInjector.fire``
        #: when installed): called with a point name at well-defined
        #: spots in the commit pipeline so tests can stall or kill the
        #: scheduler deterministically.  None in production.
        self.fault_hook: Optional[callable] = None
        #: two-phase commit participant state: gid -> (inserts, deletes,
        #: open TransactionManager) of the prepared-but-undecided
        #: distributed transaction.  The tentative apply already
        #: happened (undo log held open); the coordinator's decision
        #: either commits it (close the undo log, log the decide) or
        #: aborts it (roll the undo log back).  While non-empty,
        #: ordinary commit windows are refused — a window validated
        #: against tentative state could be invalidated by the abort.
        self._prepared: dict[str, tuple[dict, dict, TransactionManager]] = {}

    def _fault(self, point: str, **ctx) -> None:
        hook = self.fault_hook
        if hook is not None:
            hook(point, **ctx)

    # -- lifecycle ---------------------------------------------------------

    @contextmanager
    def quiesced(self):
        """Hold the leader critical section with the durability pipe
        drained: no commit window can execute while the caller is
        inside, and every already-submitted window's WAL flush has
        completed (the log-writer queue is empty).  This is what
        ``Tintin.close`` wraps its final checkpoint and log detach in,
        so an in-flight group commit is fully flushed before the
        shutdown — or queued after it (and then commits non-durably,
        like any post-close commit).
        """
        with self._leader_lock:
            self._log_writer.drain()
            yield

    def stop_log_writer(self) -> None:
        """Drain and retire the log-writer thread (shutdown path)."""
        self._log_writer.stop()

    # -- submission --------------------------------------------------------

    def commit(
        self,
        session: "Session",
        deadline: Optional[float] = None,
        obs: Optional[object] = None,
    ) -> CommitResult:
        """Commit one session's staged update; blocks until decided."""
        inserts, deletes = session.events.snapshot()
        session.events.truncate()  # events move into the request
        return self.commit_events(
            inserts,
            deletes,
            transactions=session.transactions,
            session=session,
            deadline=deadline,
            obs=obs,
        )

    def commit_events(
        self,
        inserts: dict[str, list[tuple]],
        deletes: dict[str, list[tuple]],
        transactions: Optional[TransactionManager] = None,
        session: Optional["Session"] = None,
        deadline: Optional[float] = None,
        obs: Optional[object] = None,
    ) -> CommitResult:
        """Queue an explicit event batch (the default-session facade
        routes the globally captured update through here).

        ``deadline`` is an absolute ``time.monotonic()`` instant: a
        request still undecided past it is cancelled before its
        violation-view pass (``CommitResult.deadline_expired`` set, no
        apply, no WAL frame) — the caller may safely retry.

        ``obs`` (:class:`repro.obs.trace.CommitObs`) rides along with
        the request through the window so each pipeline stage lands in
        its trace.  A caller passing one keeps ownership (it finishes
        the trace); with none passed, the facade's tracer settings
        decide — commits stay observation-free (``pending.obs is
        None``, the zero-overhead path) unless tracing or slow-commit
        logging is enabled, in which case the obs is created *and
        finished* here.
        """
        owned = None
        if obs is None:
            obs = owned = self.tintin._make_obs()
        pending = _PendingCommit(
            session=session,
            inserts=inserts,
            deletes=deletes,
            footprint=self._footprint(inserts, deletes),
            transactions=transactions or TransactionManager(),
            deadline=deadline,
            obs=obs,
            enqueued_at=time.monotonic() if obs is not None else 0.0,
        )
        with self._queue_lock:
            self._queue.append(pending)
        # leader election: whoever gets the lock drains the queue and
        # processes everyone's requests.  The acquire is deliberately
        # non-blocking: done events are set just before the leader
        # releases the lock, so followers blocking on acquire would
        # form a convoy — each woken follower grabs and releases the
        # lock in turn before the next round's leader can start, which
        # measurably fragments batching.  A follower instead waits on
        # its done event with a short timeout (the retry covers the
        # case of a leader that exited without draining its request).
        while not pending.done.is_set():
            if self._leader_lock.acquire(blocking=False):
                try:
                    if not pending.done.is_set():
                        self._process_batch()
                finally:
                    self._leader_lock.release()
                # a no-op for an immediately-decided request; when the
                # request's record is riding the log-writer thread's
                # fsync the wait stops this thread from spinning on
                # re-election until the flush acknowledges it
                pending.done.wait(timeout=0.0005)
            else:
                pending.done.wait(timeout=0.0005)
        assert pending.result is not None
        if owned is not None:
            owned.finish(commit_verdict(pending.result))
        return pending.result

    # -- two-phase commit (participant side) -------------------------------

    @property
    def has_prepared(self) -> bool:
        """Whether a prepared-but-undecided transaction is pending.
        Checkpointing must be refused while this holds: a checkpoint
        truncates the WAL, and the prepare record *is* the vote — the
        only evidence recovery has that this engine said yes."""
        return bool(self._prepared)

    def prepare_events(
        self,
        gid: str,
        inserts: dict[str, list[tuple]],
        deletes: dict[str, list[tuple]],
        deadline: Optional[float] = None,
        obs: Optional[object] = None,
    ) -> CommitResult:
        """Phase one of two-phase commit: validate, tentatively apply,
        and durably log the prepare record — which *is* the yes vote.

        A ``committed=True`` result means this engine votes yes and is
        now bound by the coordinator's decision: the update is applied
        with its undo log held open, the prepare record is fsynced, and
        every ordinary commit window is refused until
        :meth:`decide_prepared` resolves the transaction.  Any other
        result is a no vote — nothing was applied, no record was
        written, and the coordinator must abort the global transaction.

        The router serializes cross-shard transactions per participant
        (it holds every participant's shard lock for the whole 2PC),
        so at most one prepare is ever outstanding here; a second one
        arriving anyway is voted down, not queued.
        """
        from ..errors import DurabilityError

        prepare_start = time.monotonic() if obs is not None else 0.0
        with self._leader_lock:
            if gid in self._prepared:
                raise ValueError(f"transaction {gid!r} is already prepared")
            if self._prepared:
                return CommitResult(
                    committed=False,
                    constraint_error=(
                        "participant busy: another transaction is prepared "
                        "and undecided"
                    ),
                )
            if deadline is not None and time.monotonic() > deadline:
                self.stats.bump(deadline_expired=1)
                return _deadline_result()
            self._fault("scheduler.prepare", gid=gid)
            manager = self._durability()
            txn = TransactionManager()
            applied = 0
            with self.rwlock.write_locked():
                stashed = self.events.snapshot_events()
                self.events.truncate_events()
                try:
                    violations, checked, skipped = (
                        self.tintin.safe_commit_proc.check_only(
                            self.db,
                            overlays=self._event_overlays(inserts, deletes),
                        )
                    )
                    if violations:
                        return CommitResult(
                            committed=False,
                            violations=violations,
                            checked_views=checked,
                            skipped_views=skipped,
                        )
                    # tentative apply: physical constraints (unique
                    # keys, deferred FKs) are verified NOW, so a yes
                    # vote guarantees the later commit cannot fail —
                    # the undo log stays open until the decision
                    txn.begin()
                    try:
                        with self.db.transaction_scope(txn):
                            applied = self.db.apply_batch(inserts, deletes)
                    except BaseException as exc:
                        if txn.in_transaction:
                            txn.rollback()
                        self.tintin.safe_commit_proc.reset_delta_state()
                        if isinstance(exc, ConstraintViolation):
                            return CommitResult(
                                committed=False,
                                constraint_error=str(exc),
                                checked_views=checked,
                                skipped_views=skipped,
                            )
                        raise
                finally:
                    self.events.load_events(*stashed)
            if manager is not None:
                try:
                    manager.log_prepare(gid, inserts, deletes)
                except (OSError, DurabilityError) as exc:
                    # an unloggable vote is a no vote: without the
                    # durable prepare record a crash would silently
                    # forget the yes, so undo the tentative apply
                    with self.rwlock.write_locked():
                        if txn.in_transaction:
                            txn.rollback()
                    self.tintin.safe_commit_proc.reset_delta_state()
                    return CommitResult(
                        committed=False,
                        constraint_error=f"prepare logging failed: {exc}",
                    )
            self._prepared[gid] = (inserts, deletes, txn)
            self.stats.bump(prepares=1)
            if obs is not None:
                obs.record(
                    "prepare", prepare_start, time.monotonic(), gid=gid
                )
            return CommitResult(
                committed=True,
                applied_rows=applied,
                checked_views=checked,
                skipped_views=skipped,
            )

    def adopt_prepared(
        self,
        gid: str,
        inserts: dict[str, list[tuple]],
        deletes: dict[str, list[tuple]],
    ) -> None:
        """Re-enter a recovered in-doubt transaction as prepared.

        Recovery replays the WAL's prepare record but not its events
        (``RecoveryReport.in_doubt``); the router then resolves the
        transaction against the coordinator's decision log.  Adopting
        performs the tentative apply exactly as :meth:`prepare_events`
        did originally — but writes NO new WAL record (the original
        prepare record is still in the log) — so the subsequent
        :meth:`decide_prepared` behaves identically either way.
        """
        with self._leader_lock:
            if gid in self._prepared:
                raise ValueError(f"transaction {gid!r} is already prepared")
            txn = TransactionManager()
            with self.rwlock.write_locked():
                txn.begin()
                try:
                    with self.db.transaction_scope(txn):
                        self.db.apply_batch(inserts, deletes)
                except BaseException:
                    if txn.in_transaction:
                        txn.rollback()
                    self.tintin.safe_commit_proc.reset_delta_state()
                    raise
            self._prepared[gid] = (inserts, deletes, txn)

    def decide_prepared(
        self,
        gid: str,
        verdict: bool,
        obs: Optional[object] = None,
    ) -> Optional[CommitResult]:
        """Phase two: enforce the coordinator's decision on a prepared
        transaction.  Returns None for an unknown gid — a duplicate
        decide (the router re-decides after crashing mid-resolution)
        is an idempotent no-op, never an error."""
        from ..durability.manager import touched_counts

        decide_start = time.monotonic() if obs is not None else 0.0
        with self._leader_lock:
            entry = self._prepared.pop(gid, None)
            if entry is None:
                return None
            inserts, deletes, txn = entry
            self._fault(
                "scheduler.decide", gid=gid, verdict=verdict
            )
            manager = self._durability()
            if verdict:
                # the tentative apply becomes permanent: close the undo
                # log, fold the delta into the derived state, log the
                # decision with post-apply counts for replay checking
                with self.rwlock.write_locked():
                    if txn.in_transaction:
                        txn.commit()
                    self.tintin.safe_commit_proc.note_applied(
                        self.db, inserts, deletes
                    )
                    counts = touched_counts(self.db, inserts, deletes)
                if manager is not None:
                    manager.log_decide(gid, True, counts=counts)
                    self.stats.bump(wal_appends=1, wal_fsyncs=1)
                self.stats.bump(commits=1, prepared_commits=1)
                result = CommitResult(committed=True)
            else:
                with self.rwlock.write_locked():
                    if txn.in_transaction:
                        txn.rollback()
                    # memo state may have been seeded expecting the
                    # apply to stick; dropping it is always sound
                    self.tintin.safe_commit_proc.reset_delta_state()
                if manager is not None:
                    manager.log_decide(gid, False)
                    self.stats.bump(wal_appends=1, wal_fsyncs=1)
                self.stats.bump(prepared_aborts=1)
                result = CommitResult(
                    committed=False,
                    constraint_error="aborted by coordinator decision",
                )
            if obs is not None:
                obs.record(
                    "decide",
                    decide_start,
                    time.monotonic(),
                    gid=gid,
                    verdict="commit" if verdict else "abort",
                )
            return result

    # -- footprints --------------------------------------------------------

    def _footprint(
        self,
        inserts: dict[str, list[tuple]],
        deletes: dict[str, list[tuple]],
    ) -> _Footprint:
        fp = _Footprint()
        checker = self.db.checker
        agg_specs = [
            checker_.spec
            for checker_ in self.tintin.safe_commit_proc.aggregate_checkers
        ]
        staged: dict[str, dict[str, list[tuple]]] = {"ins": {}, "del": {}}
        for source, mode in ((inserts, "ins"), (deletes, "del")):
            for name, rows in source.items():
                if rows:
                    staged[mode].setdefault(normalize(name), []).extend(rows)
        for source in (inserts, deletes):
            for name, rows in source.items():
                if not rows:
                    continue
                table = self.db.table(name)
                key = normalize(name)
                fp.event_tables.add(key)
                schema = table.schema
                if schema.primary_key:
                    positions = schema.key_positions(schema.primary_key)
                    stakes = {tuple(row[p] for p in positions) for row in rows}
                else:
                    stakes = set(rows)
                fp.stakes.setdefault(key, set()).update(stakes)
                # project staged rows onto every key space an FK can
                # reference on this table (the PK or a UNIQUE key)
                for inc in checker.incoming_fks(table):
                    space = (key, _columns_key(inc.fk.ref_columns))
                    bucket = fp.key_stakes.setdefault(space, set())
                    for row in rows:
                        value = tuple(row[p] for p in inc.parent_positions)
                        if not any(v is None for v in value):
                            bucket.add(value)
                for spec in checker.outgoing_fks(table):
                    space = (
                        normalize(spec.fk.ref_table),
                        _columns_key(spec.fk.ref_columns),
                    )
                    bucket = fp.refs.setdefault(space, set())
                    for row in rows:
                        value = tuple(row[p] for p in spec.positions)
                        if not any(v is None for v in value):
                            bucket.add(value)
                for spec in agg_specs:
                    if key == normalize(spec.inner_table):
                        columns = spec.inner_key_columns
                    elif key == normalize(spec.outer_table):
                        columns = spec.outer_key_columns
                    else:
                        continue
                    positions = schema.key_positions(columns)
                    fp.agg_groups.setdefault(spec.name, set()).update(
                        tuple(row[p] for p in positions) for row in rows
                    )
        # project the staged rows onto every installed denial keyspace
        # via the inverted per-table index (statically derived; see
        # CouplingSpec).  NULLs never join, so NULL bindings are
        # dropped; a column projection shared by several keyspaces is
        # computed once per staged table.
        proj = self._coupling_projection()
        for mode in ("ins", "del"):
            for table, rows in staged[mode].items():
                entries = proj.get(table)
                if not entries:
                    continue
                by_position: dict[int, set] = {}
                for sig, atom, position, role in entries:
                    values = by_position.get(position)
                    if values is None:
                        values = {
                            row[position]
                            for row in rows
                            if row[position] is not None
                        }
                        by_position[position] = values
                    if not values:
                        continue
                    bindings = fp.coupling.get(sig)
                    if bindings is None:
                        bindings = fp.coupling.setdefault(
                            sig, _KeyspaceBindings()
                        )
                    if role == "pos":
                        bucket = (
                            bindings.pi if mode == "ins" else bindings.pd
                        )
                        bucket.setdefault(atom, set()).update(values)
                    elif mode == "ins":
                        bindings.ni |= values
                    else:
                        bindings.nd |= values
        for bindings in fp.coupling.values():
            bindings.seal()
        return fp

    def _coupling_specs(self) -> tuple:
        """The statically derived coupling specs of every installed
        denial (see :func:`repro.core.denial_compiler.derive_coupling`),
        cached against the facade's assertion-set version — re-adding
        an assertion under the same name with a different body bumps
        the version, so the cache can never serve a stale body."""
        from ..core.denial_compiler import derive_coupling

        version = self.tintin.assertion_version
        cached = self._coupling_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        specs = derive_coupling(
            [
                denial
                for assertion in self.tintin.assertions.values()
                for denial in assertion.denials
            ]
        )
        self._coupling_cache = (version, specs)
        return specs

    def _coupling_projection(self) -> dict:
        """Inverted projection index over the coupling specs: normalized
        table name -> list of ``(signature, atom, position, role)``.

        The signature is the keyspace's occurrence tuple itself —
        structurally identical keyspaces (e.g. a family of bound-style
        denials that all join ``orders`` to ``lineitem`` on the order
        key) project to identical bindings, so they collapse into one
        footprint entry and are checked once per member pair instead
        of once per denial."""
        version = self.tintin.assertion_version
        cached = self._coupling_proj_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        proj: dict[str, list] = {}
        seen: set = set()
        for spec in self._coupling_specs():
            for keyspace in spec.keyspaces:
                if keyspace in seen:
                    continue
                seen.add(keyspace)
                for atom, table, position, role in keyspace:
                    proj.setdefault(table, []).append(
                        (keyspace, atom, position, role)
                    )
        self._coupling_proj_cache = (version, proj)
        return proj

    # -- the commit window -------------------------------------------------

    def _gather(self) -> None:
        """Wait (briefly) for concurrent submitters to join the batch.

        Sleeping releases the GIL, which is what actually lets the
        other client threads finish staging and enqueue; polling in
        slices ends the wait one slice after arrivals settle.
        """
        deadline = time.perf_counter() + self.gather_seconds
        interval = self.gather_seconds / 4
        with self._queue_lock:
            previous = len(self._queue)
        while time.perf_counter() < deadline:
            time.sleep(interval)
            with self._queue_lock:
                current = len(self._queue)
            if current >= self.max_batch or (previous and current == previous):
                break
            previous = current

    def _process_batch(self) -> None:
        """Drain, decide and (when durable) flush one commit window."""
        # a prepared-but-undecided distributed transaction owns the
        # engine: its tentative writes are applied with the undo log
        # open, so a window validated now could be invalidated by the
        # coordinator's abort.  Refuse the window; the submitters'
        # retry loops re-elect a leader once the decision lands (2PC
        # decision windows are short — one coordinator round trip).
        if self._prepared:
            return
        # per-commit durability (durability="commit") means NO group
        # commit: the WAL order is the commit order and every commit
        # owns the exclusive window for its whole validate-apply-log-
        # fsync critical section, exactly the classic pre-group-commit
        # engine (InnoDB's prepare_commit_mutex era).  One request per
        # window, no gathering — batching is the very thing the mode
        # disables, and the E9 experiment's baseline.
        manager = self._durability()
        per_commit = manager is not None and manager.mode == "commit"
        if self.gather_seconds and not per_commit:
            self._gather()
        with self._queue_lock:
            batch = []
            limit = 1 if per_commit else self.max_batch
            while self._queue and len(batch) < limit:
                batch.append(self._queue.popleft())
        if not batch:
            return
        # deadline triage at the window door: a request already past
        # its deadline is cancelled before any validation work starts
        # (its done event fires now — it never enters the window)
        self._fault("scheduler.window", batch=len(batch))
        alive: list[_PendingCommit] = []
        now = time.monotonic()
        for pending in batch:
            if pending.expired(now):
                pending.result = _deadline_result()
                pending.done.set()
                self.stats.bump(deadline_expired=1)
            else:
                alive.append(pending)
        batch = alive
        if not batch:
            return
        for pending in batch:
            if pending.obs is not None:
                pending.obs.record(
                    "queue.wait", pending.enqueued_at, time.monotonic()
                )
        self.stats.bump(batches=1, commits=len(batch))
        start = time.perf_counter()
        #: committed members whose WAL records are appended but not yet
        #: durable; their results are withheld until the window flush
        deferred: list[tuple[_PendingCommit, CommitResult]] = []
        try:
            with self.rwlock.write_locked():
                # the window needs no trigger toggling: apply_batch
                # writes base tables directly (trigger-free physical
                # ops), and capture triggers stay armed so a default-
                # session INSERT can never slip past staging — its
                # capture blocks on the read lock until the window ends
                #
                # the default session (global capture) may have staged
                # events outside any Session; stash them and empty the
                # global tables so each group's validation — which
                # overlays its events on those tables — sees exactly
                # its own update, then restore at window end
                stashed = self.events.snapshot_events()
                self.events.truncate_events()
                try:
                    for group in self._partition(batch):
                        self.stats.saw_group(len(group))
                        self._commit_group(group, deferred)
                finally:
                    self.events.load_events(*stashed)
        except BaseException as exc:
            # an unexpected engine error must not strand the batch —
            # but members whose *own* groups already committed (applied
            # and WAL-appended, results riding in ``deferred``) must
            # not be swallowed by a later group's failure: flush their
            # records and acknowledge them first.  The flush is inline
            # even in ``batch`` mode — the leader is about to propagate
            # the window failure, and every deferred member must be
            # durably decided before it does.  _flush_window is
            # failure-safe — if the flush itself dies it assigns
            # rejections, so either way every deferred member is
            # decided here.  Only the truly undecided members then get
            # the window-failure rejection, and the leader's own
            # caller sees the original exception.
            if deferred:
                self._flush_window(deferred, raise_on_failure=False)
            for pending in batch:
                if pending.result is None:
                    pending.result = CommitResult(
                        committed=False,
                        constraint_error=f"commit window failed: {exc}",
                    )
            raise
        finally:
            self.stats.bump(check_seconds=time.perf_counter() - start)
            # members with an immediate verdict (rejections, and every
            # member when nothing was logged) are released here; the
            # committed-and-logged ones are withheld until the flush
            for pending in batch:
                if pending.result is not None:
                    pending.done.set()
        if deferred:
            # the durability point — the WRITE lock is already
            # released (early lock release, as in Aether-style group
            # commit), so sessions stage their next updates under the
            # read lock while the fsync waits on the disk.  The flush
            # itself is adaptive in ``batch`` mode: with NO backlog
            # the leader fsyncs inline (zero handoff — the steady
            # closed-loop protocol, and the fsync doubles as the next
            # window's natural gather period); with requests already
            # queued behind this window — bursty load — the flush is
            # handed to the log-writer thread and the leader
            # immediately processes the next window, so consecutive
            # windows' flushes coalesce into shared fsyncs while
            # validation continues.  ``commit`` mode always flushes
            # inline (one fsync per commit, strictly inside the leader
            # critical section — the E9 baseline protocol).  Either
            # way acknowledgements wait for the flush, so no client is
            # ever told "committed" before its record is on disk.
            if (
                self.log_writer_enabled
                and manager is not None
                and manager.mode == "batch"
            ):
                with self._queue_lock:
                    backlog = bool(self._queue)
                if backlog:
                    self._log_writer.submit(manager, deferred)
                else:
                    self._flush_window(deferred)
            else:
                self._flush_window(deferred)

    def _flush_window(
        self,
        deferred: list[tuple[_PendingCommit, CommitResult]],
        raise_on_failure: bool = True,
    ) -> None:
        """One fsync makes every record this window appended durable,
        then the withheld committed results become visible.

        Failure-safe: whatever happens, every deferred member gets a
        result and its done event — a dying flush must not strand the
        committing sessions in their wait loops.  The window-failure
        handler passes ``raise_on_failure=False`` so a flush error
        cannot mask the original window exception.

        On flush failure the WAL rolls back its unsynced frames and
        poisons itself (every later durable commit is refused), so a
        rejected commit can never become durable later.  The batch's
        rows, however, were already applied under the write lock and
        stay visible in memory — the engine serves state ahead of its
        log until it is reopened, the same divergence a PostgreSQL
        instance has between a failed WAL flush and its PANIC restart.
        """
        manager = self._durability()
        fsync_start = time.monotonic()
        try:
            if manager is not None:
                manager.sync()
                self.stats.bump(wal_fsyncs=1)
        except BaseException as exc:
            for pending, _ in deferred:
                pending.result = CommitResult(
                    committed=False,
                    constraint_error=f"log flush failed: {exc}",
                )
                pending.done.set()
            if raise_on_failure:
                raise
            return
        fsync_end = time.monotonic()
        for pending, result in deferred:
            # spans land before done fires: once done is set the
            # waiting client thread may finish (and ship) the trace
            if pending.obs is not None:
                pending.obs.record("wal.fsync", fsync_start, fsync_end)
            pending.result = result
            pending.done.set()

    def _durability(self):
        """The attached durability manager, or None when commits are
        not being logged (no manager, or mode ``"off"``)."""
        manager = self.tintin.durability
        if manager is not None and manager.durable:
            return manager
        return None

    def _log_committed(
        self,
        manager,
        inserts: dict[str, list[tuple]],
        deletes: dict[str, list[tuple]],
    ) -> None:
        """Append one committed batch's WAL record (unsynced — the
        window flush issues the shared fsync after lock release)."""
        from ..durability.manager import touched_counts

        manager.append_batch(
            inserts,
            deletes,
            counts=touched_counts(self.db, inserts, deletes),
            sync=False,
        )
        self.stats.bump(wal_appends=1)

    def _partition(
        self, batch: list[_PendingCommit]
    ) -> list[list[_PendingCommit]]:
        """Split the FIFO batch into runs of pairwise-compatible members
        (order-preserving, so serial fallbacks keep submission order).

        Per-commit durability (``durability="commit"``) forces singleton
        groups: the WAL order is the commit order and every commit's
        acknowledgement must wait on its *own* fsync, which is exactly
        the strict pre-group-commit protocol — and the baseline the E9
        experiment measures ``"batch"`` mode against.
        """
        manager = self._durability()
        if self.policy == "serial" or (
            manager is not None and manager.mode == "commit"
        ):
            return [[pending] for pending in batch]
        coupling = self._coupling_specs()
        groups: list[list[_PendingCommit]] = []
        current: list[_PendingCommit] = []
        for pending in batch:
            if current and not all(
                pending.footprint.compatible(other.footprint, coupling)
                for other in current
            ):
                groups.append(current)
                current = []
            current.append(pending)
        if current:
            groups.append(current)
        return groups

    def _expire_member(self, pending: _PendingCommit) -> bool:
        """Cancel a member whose deadline lapsed (inside the window:
        its done event fires with everyone else's at window end)."""
        if pending.result is not None or not pending.expired():
            return pending.result is not None
        pending.result = _deadline_result()
        self.stats.bump(deadline_expired=1)
        return True

    def _event_overlays(
        self,
        inserts: dict[str, list[tuple]],
        deletes: dict[str, list[tuple]],
    ) -> dict[str, TableOverlay]:
        """Present a staged update as overlays on the global event
        tables: the violation views (which reference ``ins_T``/
        ``del_T``) then see exactly this update without a single row
        being physically loaded — validation is a pure read."""
        overlays: dict[str, TableOverlay] = {}
        for table, rows in inserts.items():
            if rows:
                overlays[normalize(ins_table_name(table))] = TableOverlay(rows)
        for table, rows in deletes.items():
            if rows:
                overlays[normalize(del_table_name(table))] = TableOverlay(rows)
        return overlays

    def _commit_group(
        self,
        group: list[_PendingCommit],
        deferred: list[tuple[_PendingCommit, CommitResult]],
    ) -> None:
        # deadline check right before the expensive pass: a member
        # whose deadline lapsed while the window was draining earlier
        # groups is dropped from the union before validation runs
        group = [p for p in group if not self._expire_member(p)]
        if not group:
            return
        if len(group) == 1:
            self._commit_serially(group, deferred)
            return
        # fast path: union validation + one combined apply
        union_ins: dict[str, list[tuple]] = {}
        union_del: dict[str, list[tuple]] = {}
        for pending in group:
            for table, rows in pending.inserts.items():
                union_ins.setdefault(table, []).extend(rows)
            for table, rows in pending.deletes.items():
                union_del.setdefault(table, []).extend(rows)
        self._fault("scheduler.validate", group=len(group))
        traced = [
            (p.obs, new_span_id()) for p in group if p.obs is not None
        ]
        validate_start = time.monotonic() if traced else 0.0
        violations, checked, skipped = self.tintin.safe_commit_proc.check_only(
            self.db,
            overlays=self._event_overlays(union_ins, union_del),
            trace=traced or None,
        )
        for obs, span_id in traced:
            obs.record(
                "validate",
                validate_start,
                time.monotonic(),
                span_id=span_id,
                group=len(group),
                checked=checked,
                skipped=skipped,
            )
        if not violations and any(p.expired() for p in group):
            # a deadline lapsed *during* union validation: the union
            # can no longer be applied as one batch (dropping the
            # expired member's events from a validated union is not
            # violation-preserving), so replay serially — each member's
            # deadline is then enforced precisely
            self.stats.bump(fallbacks=1)
            self._commit_serially(group, deferred)
            return
        if violations:
            # someone's events violate: replay strictly serially so the
            # violation lands on the session that staged it
            self.stats.bump(fallbacks=1)
            self._commit_serially(group, deferred)
            return
        # per-member applied-row accounting, so a grouped commit reports
        # the same number the serial protocol would: staged deletes of
        # rows an earlier batch already removed apply as no-ops
        applied_by_member = []
        for pending in group:
            applied = sum(len(rows) for rows in pending.inserts.values())
            for table_name, rows in pending.deletes.items():
                table = self.db.table(table_name)
                applied += sum(
                    1 for row in rows if table.find_rowid(row) is not None
                )
            applied_by_member.append(applied)
        apply_start = time.monotonic() if traced else 0.0
        try:
            with self.db.transaction_scope(self._group_transactions):
                self.db.apply_batch(union_ins, union_del)
        except ConstraintViolation:
            self.stats.bump(fallbacks=1)
            self._commit_serially(group, deferred)
            return
        # the union passed ONE validation (one delta evaluation for the
        # whole group) and is now applied: re-arm the seeded delta
        # plans and fold the combined batch into the aggregate memos
        self.tintin.safe_commit_proc.note_applied(
            self.db, union_ins, union_del
        )
        if traced:
            apply_end = time.monotonic()
            for obs, _ in traced:
                obs.record("apply", apply_start, apply_end, group=len(group))
        manager = self._durability()
        durable = manager is not None and bool(union_ins or union_del)
        if durable:
            # the group-commit payoff: ONE combined WAL record for the
            # whole group, made durable by the window's single shared
            # fsync.  Results are deferred until that flush, so a
            # failed fsync can never acknowledge a commit that is not
            # on disk.
            append_start = time.monotonic() if traced else 0.0
            self._log_committed(manager, union_ins, union_del)
            if traced:
                append_end = time.monotonic()
                for obs, _ in traced:
                    obs.record(
                        "wal.append", append_start, append_end,
                        group=len(group),
                    )
        self.stats.bump(group_fast_path=len(group))
        for pending, applied in zip(group, applied_by_member):
            result = CommitResult(
                committed=True,
                applied_rows=applied,
                checked_views=checked,
                skipped_views=skipped,
                group_size=len(group),
            )
            if durable:
                deferred.append((pending, result))
            else:
                pending.result = result

    def _commit_serially(
        self,
        group: list[_PendingCommit],
        deferred: list[tuple[_PendingCommit, CommitResult]],
    ) -> None:
        """The exact single-session protocol, one member at a time.

        Each member's events are overlaid on the (empty) global event
        tables for its validation pass, then applied directly — the
        global tables are never written inside the window.

        Durability: each committed member's WAL record is appended
        here (in commit order) and made durable by the window flush
        after lock release — one fsync per window, which in ``commit``
        mode (singleton windows) is exactly one fsync per commit.
        Committed results ride in ``deferred`` until that flush, so a
        member is never acknowledged before its record is on disk;
        rejections carry no record and are assigned immediately.
        """
        manager = self._durability()
        for pending in group:
            # the cheap pre-validation deadline gate: doomed work is
            # cancelled before the violation-view pass runs
            if self._expire_member(pending):
                continue
            self.stats.bump(serial_commits=1)
            self._fault("scheduler.validate", session=pending.session)
            obs = pending.obs
            traced = [(obs, new_span_id())] if obs is not None else []
            validate_start = time.monotonic() if traced else 0.0
            violations, checked, skipped = (
                self.tintin.safe_commit_proc.check_only(
                    self.db,
                    overlays=self._event_overlays(
                        pending.inserts, pending.deletes
                    ),
                    trace=traced or None,
                )
            )
            if obs is not None:
                obs.record(
                    "validate",
                    validate_start,
                    time.monotonic(),
                    span_id=traced[0][1],
                    checked=checked,
                    skipped=skipped,
                )
            if self._expire_member(pending):
                # lapsed mid-validation: the check already ran, but the
                # apply and its WAL frame have not — cancelling here
                # keeps an expired request invisible (safe to retry)
                continue
            if violations:
                pending.result = CommitResult(
                    committed=False,
                    violations=violations,
                    checked_views=checked,
                    skipped_views=skipped,
                )
                continue
            apply_start = time.monotonic() if obs is not None else 0.0
            try:
                with self.db.transaction_scope(pending.transactions):
                    applied = self.db.apply_batch(
                        pending.inserts, pending.deletes
                    )
            except ConstraintViolation as exc:
                pending.result = CommitResult(
                    committed=False,
                    constraint_error=str(exc),
                    checked_views=checked,
                    skipped_views=skipped,
                )
                continue
            if obs is not None:
                obs.record("apply", apply_start, time.monotonic())
            self.tintin.safe_commit_proc.note_applied(
                self.db, pending.inserts, pending.deletes
            )
            result = CommitResult(
                committed=True,
                applied_rows=applied,
                checked_views=checked,
                skipped_views=skipped,
            )
            if manager is not None and pending.size:
                append_start = time.monotonic() if obs is not None else 0.0
                self._log_committed(manager, pending.inserts, pending.deletes)
                if obs is not None:
                    obs.record("wal.append", append_start, time.monotonic())
                deferred.append((pending, result))
            else:
                pending.result = result
