"""repro.server — multi-session concurrency on top of the TINTIN core.

Three pieces turn the single-staging-area reproduction into a
concurrent service:

* :class:`Session` / :class:`SessionManager` — each client owns a
  private ``ins_T``/``del_T`` overlay (:class:`SessionEvents`), so no
  session ever observes another's uncommitted events;
* snapshot reads — ``session.query`` runs under the shared side of a
  read/write lock (:class:`ReadWriteLock`) against committed base
  state plus only the session's own staged events, merged at
  execution time as :class:`~repro.minidb.storage.TableOverlay`
  overlays (base tables are never touched; any number of readers run
  concurrently);
* :class:`CommitScheduler` — serializes validate-and-apply through a
  FIFO queue with group-commit batching: compatible (key-disjoint)
  updates are validated in one violation-view pass — the events
  presented to the views as overlays on the global event tables — and
  applied in one combined batch.
"""

from .locks import ReadWriteLock
from .scheduler import CommitScheduler, SchedulerStats
from .session import Session, SessionEvents, SessionManager

__all__ = [
    "CommitScheduler",
    "ReadWriteLock",
    "SchedulerStats",
    "Session",
    "SessionEvents",
    "SessionManager",
]
