"""Counters, gauges, fixed-bucket histograms, Prometheus rendering.

The registry is deliberately tiny: a *collector* is anything with a
``collect() -> Iterable[str]`` method yielding Prometheus text
exposition lines.  :class:`Counter`, :class:`Gauge` and
:class:`Histogram` are the built-in collectors; :class:`StatsBlock` is
the shared base for the engine's existing bump-under-lock stats
(scheduler / WAL / admission), which keeps their attribute surfaces
(``stats.commits``, ``stats.snapshot()``) intact while also rendering
into ``/metrics``.

Histograms use fixed bucket boundaries (cumulative ``le`` counts, as
Prometheus expects) so p50/p95/p99 are derivable client-side; the
:meth:`Histogram.quantile` helper interpolates them locally for tests
and reports.
"""

from __future__ import annotations

import logging
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsBlock",
    "DEFAULT_BUCKETS",
    "escape_label_value",
    "format_value",
]

#: Latency buckets in seconds: 0.5ms .. 10s, roughly log-spaced.  Wide
#: enough for both in-process sub-millisecond commits and multi-second
#: congested tails.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


#: Collection-time failures (a gauge callback raising mid-render) are
#: logged here rather than silently dropping the metric: the /metrics
#: page must still render, but a gauge that vanishes without a trace
#: is exactly the kind of blind spot the page exists to prevent.
log = logging.getLogger("repro.obs")


def escape_label_value(value: Any) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (k, escape_label_value(v)) for k, v in labels
    )
    return "{%s}" % inner


class Counter:
    """A monotonically increasing value, optionally labelled.

    ``inc(value, **labels)`` bumps the series for those label values;
    an unlabelled counter is the single series with no labels.
    """

    def __init__(
        self,
        name: str,
        help_text: str = "",
        label_names: Tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], float] = {}

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                "counter %s expects labels %r, got %r"
                % (self.name, self.label_names, tuple(labels))
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def collect(self) -> Iterator[str]:
        with self._lock:
            series = dict(self._series)
        if self.help_text:
            yield "# HELP %s %s" % (self.name, self.help_text)
        yield "# TYPE %s counter" % self.name
        if not series and not self.label_names:
            series = {(): 0.0}
        for key in sorted(series):
            labels = tuple(zip(self.label_names, key))
            yield "%s%s %s" % (
                self.name,
                _labels_text(labels),
                format_value(series[key]),
            )


class Gauge:
    """A point-in-time value: settable, or computed by a callback.

    With ``fn`` given, the gauge is read-only and evaluated at collect
    time — handy for exposing live depths (queue length, open
    connections) without keeping a shadow counter in sync.
    """

    def __init__(
        self,
        name: str,
        help_text: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self._fn = fn
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError("gauge %s is callback-driven" % self.name)
        with self._lock:
            self._value = float(value)

    def inc(self, value: float = 1.0) -> None:
        if self._fn is not None:
            raise ValueError("gauge %s is callback-driven" % self.name)
        with self._lock:
            self._value += value

    def dec(self, value: float = 1.0) -> None:
        self.inc(-value)

    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def collect(self) -> Iterator[str]:
        try:
            value = self.value()
        except Exception:
            # the rest of the /metrics page must still render, but a
            # dying callback means this gauge is silently absent from
            # it — say so
            log.warning(
                "gauge %s callback failed during collection",
                self.name,
                exc_info=True,
            )
            return
        if self.help_text:
            yield "# HELP %s %s" % (self.name, self.help_text)
        yield "# TYPE %s gauge" % self.name
        yield "%s %s" % (self.name, format_value(value))


class Histogram:
    """Fixed-bucket latency histogram with optional labels.

    Each distinct label-value combination keeps its own bucket array,
    sum and count.  Rendering follows the Prometheus convention:
    cumulative ``_bucket{le=...}`` series ending at ``le="+Inf"``,
    plus ``_sum`` and ``_count``.
    """

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        label_names: Tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(sorted(buckets))
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        # key -> (per-bucket counts list, sum, count)
        self._series: Dict[Tuple[str, ...], List[Any]] = {}

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                "histogram %s expects labels %r, got %r"
                % (self.name, self.label_names, tuple(labels))
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        idx = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._series[key] = series
            series[0][idx] += 1
            series[1] += value
            series[2] += 1

    def count(self, **labels: Any) -> int:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series[2] if series else 0

    def sum(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series[1] if series else 0.0

    def quantile(self, q: float, **labels: Any) -> Optional[float]:
        """Approximate the q-quantile by linear interpolation within
        the bucket containing the target rank (Prometheus-style)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None or series[2] == 0:
                return None
            counts = list(series[0])
            total = series[2]
        rank = q * total
        cumulative = 0
        for i, c in enumerate(counts):
            prev = cumulative
            cumulative += c
            if cumulative >= rank and c > 0:
                hi = (
                    self.buckets[i]
                    if i < len(self.buckets)
                    else self.buckets[-1]
                )
                lo = self.buckets[i - 1] if i > 0 else 0.0
                frac = (rank - prev) / c
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        return self.buckets[-1]

    def collect(self) -> Iterator[str]:
        with self._lock:
            snap = {
                key: (list(series[0]), series[1], series[2])
                for key, series in self._series.items()
            }
        if self.help_text:
            yield "# HELP %s %s" % (self.name, self.help_text)
        yield "# TYPE %s histogram" % self.name
        if not snap and not self.label_names:
            snap = {(): ([0] * (len(self.buckets) + 1), 0.0, 0)}
        for key in sorted(snap):
            counts, total_sum, total_count = snap[key]
            base = tuple(zip(self.label_names, key))
            cumulative = 0
            for bound, c in zip(self.buckets, counts):
                cumulative += c
                labels = base + (("le", format_value(bound)),)
                yield "%s_bucket%s %d" % (
                    self.name,
                    _labels_text(labels),
                    cumulative,
                )
            labels = base + (("le", "+Inf"),)
            yield "%s_bucket%s %d" % (
                self.name,
                _labels_text(labels),
                total_count,
            )
            yield "%s_sum%s %s" % (
                self.name,
                _labels_text(base),
                format_value(total_sum),
            )
            yield "%s_count%s %d" % (
                self.name,
                _labels_text(base),
                total_count,
            )


class StatsBlock:
    """Base for the engine's bump-under-lock counter blocks.

    Subclasses declare their fields in class tuples:

    * ``COUNTERS`` — monotonically increasing ints (``bump()``-able)
    * ``ACCUMULATORS`` — monotonically increasing floats (seconds,
      bytes), also ``bump()``-able; rendered as Prometheus counters
    * ``HIGH_WATER`` — maxima updated via :meth:`record_max`; rendered
      as gauges

    Field access (``stats.commits``) and assignment (``stats.commits
    += 1``) transparently hit a lock-guarded value dict, so existing
    call sites and tests keep working unchanged.  ``PREFIX`` namespaces
    the Prometheus sample names (``<PREFIX>_<field>``).
    """

    COUNTERS: Tuple[str, ...] = ()
    ACCUMULATORS: Tuple[str, ...] = ()
    HIGH_WATER: Tuple[str, ...] = ()
    PREFIX: str = "tintin"
    HELP: Dict[str, str] = {}

    def __init__(self) -> None:
        object.__setattr__(self, "_lock", threading.Lock())
        values: Dict[str, float] = {}
        for name in self.COUNTERS:
            values[name] = 0
        for name in self.ACCUMULATORS:
            values[name] = 0.0
        for name in self.HIGH_WATER:
            values[name] = 0
        object.__setattr__(self, "_values", values)

    def _fields(self) -> Iterable[str]:
        return (*self.COUNTERS, *self.ACCUMULATORS, *self.HIGH_WATER)

    def __getattr__(self, name: str) -> Any:
        values = object.__getattribute__(self, "_values")
        if name in values:
            lock = object.__getattribute__(self, "_lock")
            with lock:
                return values[name]
        raise AttributeError(
            "%s has no field %r" % (type(self).__name__, name)
        )

    def __setattr__(self, name: str, value: Any) -> None:
        values = object.__getattribute__(self, "_values")
        if name in values:
            lock = object.__getattribute__(self, "_lock")
            with lock:
                values[name] = value
            return
        object.__setattr__(self, name, value)

    def bump(self, **deltas: float) -> None:
        """Atomically add the given deltas to their fields."""
        values = object.__getattribute__(self, "_values")
        lock = object.__getattribute__(self, "_lock")
        with lock:
            for name, delta in deltas.items():
                if name not in values:
                    raise AttributeError(
                        "%s has no field %r" % (type(self).__name__, name)
                    )
                values[name] += delta

    def record_max(self, **candidates: float) -> None:
        """Raise high-water fields to the given values if larger."""
        values = object.__getattribute__(self, "_values")
        lock = object.__getattribute__(self, "_lock")
        with lock:
            for name, candidate in candidates.items():
                if candidate > values[name]:
                    values[name] = candidate

    def snapshot(self) -> Dict[str, float]:
        """A consistent point-in-time copy of every field."""
        values = object.__getattribute__(self, "_values")
        lock = object.__getattribute__(self, "_lock")
        with lock:
            return {name: values[name] for name in self._fields()}

    def collect(self) -> Iterator[str]:
        snap = self.snapshot()
        for name in (*self.COUNTERS, *self.ACCUMULATORS):
            metric = "%s_%s" % (self.PREFIX, name)
            help_text = self.HELP.get(name)
            if help_text:
                yield "# HELP %s %s" % (metric, help_text)
            yield "# TYPE %s counter" % metric
            yield "%s %s" % (metric, format_value(float(snap[name])))
        for name in self.HIGH_WATER:
            metric = "%s_%s" % (self.PREFIX, name)
            help_text = self.HELP.get(name)
            if help_text:
                yield "# HELP %s %s" % (metric, help_text)
            yield "# TYPE %s gauge" % metric
            yield "%s %s" % (metric, format_value(float(snap[name])))


class MetricsRegistry:
    """Holds collectors; renders them as one Prometheus text page."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._collectors: List[Any] = []

    def register(self, collector: Any) -> Any:
        """Add any object with ``collect() -> Iterable[str]``."""
        with self._lock:
            self._collectors.append(collector)
        return collector

    def counter(
        self,
        name: str,
        help_text: str = "",
        label_names: Tuple[str, ...] = (),
    ) -> Counter:
        return self.register(Counter(name, help_text, label_names))

    def gauge(
        self,
        name: str,
        help_text: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        return self.register(Gauge(name, help_text, fn))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        label_names: Tuple[str, ...] = (),
    ) -> Histogram:
        return self.register(Histogram(name, help_text, buckets, label_names))

    def render(self) -> str:
        """The full exposition page, trailing newline included."""
        with self._lock:
            collectors = list(self._collectors)
        lines: List[str] = []
        for collector in collectors:
            lines.extend(collector.collect())
        return "\n".join(lines) + "\n" if lines else ""
