"""Per-assertion check profiling and per-plan-node statistics.

:class:`AssertionProfiler` accumulates, per installed assertion's
violation view: how many times it was checked vs. skipped (guard-table
pruning), how many violations it surfaced, cumulative wall time, and —
when row capture is enabled — cumulative rows pulled out of storage.
The timing half is cheap (two ``perf_counter`` calls and one lock bump
per checked view) and is always on once a profiler is installed; row
capture threads a :class:`PlanStatsCollector` through plan execution
and is opt-in because it touches every operator boundary.

:class:`PlanStatsCollector` is also the machinery behind
``EXPLAIN ANALYZE``: it wraps each plan node's iterator, counting rows
yielded and inclusive wall time per node, keyed by node identity so an
annotated plan tree can be printed afterwards.

A collector instance observes exactly one plan execution (it is carried
in that execution's :class:`~repro.minidb.plan.ExecutionContext` and is
not thread-safe); cumulative aggregation across executions happens in
the profiler, under its lock.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Any, Dict, Iterator, Optional

__all__ = ["AssertionProfiler", "PlanStatsCollector"]


class PlanStatsCollector:
    """Counts rows and inclusive wall time per plan node for one
    execution.

    Installed via ``ExecutionContext(collector=...)``;
    :class:`~repro.minidb.plan.PlanNode` routes every node's iterator
    through :meth:`wrap`.  Time is *inclusive* — a join's time contains
    its children's, since their ``next()`` runs inside the parent's.
    """

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        # id(node) -> [node, rows, seconds]
        self._stats: Dict[int, list] = {}

    def wrap(self, node: Any, iterator: Iterator[tuple]) -> Iterator[tuple]:
        entry = self._stats.get(id(node))
        if entry is None:
            entry = self._stats[id(node)] = [node, 0, 0.0]
        it = iter(iterator)
        while True:
            t0 = perf_counter()
            try:
                row = next(it)
            except StopIteration:
                entry[2] += perf_counter() - t0
                return
            entry[2] += perf_counter() - t0
            entry[1] += 1
            yield row

    def rows_for(self, node: Any) -> int:
        entry = self._stats.get(id(node))
        return entry[1] if entry else 0

    def seconds_for(self, node: Any) -> float:
        entry = self._stats.get(id(node))
        return entry[2] if entry else 0.0

    def rows_scanned(self) -> int:
        """Rows produced by storage-touching nodes (scans and index
        probes — anything holding a base ``table``)."""
        return sum(
            rows
            for node, rows, _ in self._stats.values()
            if hasattr(node, "table")
        )

    def annotate(self, plan: Any) -> str:
        """The plan tree with ``(actual rows=N, time=T)`` per node —
        the body of an EXPLAIN ANALYZE report."""
        lines = []

        def walk(node: Any, indent: int) -> None:
            lines.append(
                "%s%s  (actual rows=%d, time=%.6fs)"
                % (
                    "  " * indent,
                    node.describe(),
                    self.rows_for(node),
                    self.seconds_for(node),
                )
            )
            for child in node.children():
                walk(child, indent + 1)

        walk(plan, 0)
        return "\n".join(lines)


class AssertionProfiler:
    """Cumulative per-assertion check accounting.

    Keyed by violation-view name.  ``capture_rows`` additionally
    threads a per-execution :class:`PlanStatsCollector` through each
    check so ``rows_scanned`` fills in (slower; off by default).
    """

    def __init__(self, capture_rows: bool = False) -> None:
        self.capture_rows = capture_rows
        self._lock = threading.Lock()
        self._views: Dict[str, Dict[str, Any]] = {}

    def _entry(self, view: str) -> Dict[str, Any]:
        entry = self._views.get(view)
        if entry is None:
            entry = self._views[view] = {
                "checks": 0,
                "skips": 0,
                "violations": 0,
                "seconds": 0.0,
                "rows_scanned": 0,
            }
        return entry

    def record_check(
        self,
        view: str,
        seconds: float,
        violations: int = 0,
        rows_scanned: int = 0,
    ) -> None:
        with self._lock:
            entry = self._entry(view)
            entry["checks"] += 1
            entry["violations"] += violations
            entry["seconds"] += seconds
            entry["rows_scanned"] += rows_scanned

    def record_skip(self, view: str) -> None:
        with self._lock:
            self._entry(view)["skips"] += 1

    def collector(self) -> Optional[PlanStatsCollector]:
        """A fresh per-execution collector, or None when row capture
        is off."""
        return PlanStatsCollector() if self.capture_rows else None

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """``{view_name: {checks, skips, violations, seconds,
        rows_scanned}}``, consistent under the lock."""
        with self._lock:
            return {
                view: dict(entry) for view, entry in self._views.items()
            }

    def reset(self) -> None:
        with self._lock:
            self._views.clear()

    def report(self) -> str:
        """A fixed-width text table, slowest assertion first."""
        snap = self.snapshot()
        header = "%-32s %8s %8s %10s %12s %12s" % (
            "assertion",
            "checks",
            "skips",
            "violations",
            "seconds",
            "rows",
        )
        lines = [header, "-" * len(header)]
        for view, e in sorted(
            snap.items(), key=lambda kv: kv[1]["seconds"], reverse=True
        ):
            lines.append(
                "%-32s %8d %8d %10d %12.6f %12d"
                % (
                    view,
                    e["checks"],
                    e["skips"],
                    e["violations"],
                    e["seconds"],
                    e["rows_scanned"],
                )
            )
        return "\n".join(lines)
