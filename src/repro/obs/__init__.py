"""Observability: tracing, metrics and per-assertion profiling.

Zero-dependency (stdlib only) and zero-cost when disabled: the engine
ships with a :class:`NullTracer` and creates no per-commit observation
state unless a real tracer or a slow-commit threshold is installed —
the hot commit path pays one ``is None`` test per stage point.

Three layers, one package:

* :mod:`repro.obs.trace` — spans.  A :class:`Tracer` receives finished
  :class:`Span` records; :class:`RecordingTracer` keeps them in memory
  (tests, EXPLAIN ANALYZE-style inspection), :class:`JsonlTracer`
  writes one JSON line per span for offline analysis.  A
  :class:`CommitObs` carries one commit's trace through every thread
  hop of the pipeline (client/server thread → admission worker →
  scheduler leader → log-writer), so a single trace id reconstructs
  the admission-wait / queue-wait / validate / apply / log / flush
  breakdown.
* :mod:`repro.obs.metrics` — a metrics registry: counters, gauges and
  fixed-bucket latency histograms (p50/p95/p99 derivable), rendered in
  Prometheus text exposition format.  :class:`StatsBlock` is the
  shared bump-under-lock/consistent-snapshot counter block the
  scheduler, WAL and admission stats are built on.
* :mod:`repro.obs.profiler` — per-assertion check accounting
  (:class:`AssertionProfiler`: cumulative count, wall time, rows) and
  the per-node :class:`PlanStatsCollector` behind ``EXPLAIN ANALYZE``.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsBlock,
)
from .profiler import AssertionProfiler, PlanStatsCollector
from .trace import (
    CommitObs,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Span,
    Tracer,
    new_trace_id,
)

__all__ = [
    "AssertionProfiler",
    "CommitObs",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "MetricsRegistry",
    "NullTracer",
    "PlanStatsCollector",
    "RecordingTracer",
    "Span",
    "StatsBlock",
    "Tracer",
    "new_trace_id",
]
