"""Spans, tracers and the per-commit observation context.

A *span* is one timed stage of one commit (or request): it has a name,
a trace id shared by every span of the same commit, its own span id, an
optional parent span id, wall-clock start/end times and a free-form
attribute dict.  Spans are emitted to a :class:`Tracer` when they
*finish* — parents therefore arrive after their children, which is why
span ids are allocated eagerly (a child can reference its parent's id
before the parent span is emitted).

The engine is multi-threaded and a single commit hops threads several
times (network thread → admission worker → scheduler leader →
log-writer), so trace context is carried explicitly in a
:class:`CommitObs` object handed along the call chain — never in
thread-locals.

Cost model: when no tracer is installed and no slow-commit threshold is
set, no ``CommitObs`` is allocated at all and every stage point in the
hot path reduces to one ``obs is None`` test.  With a ``CommitObs``
present but the tracer disabled (slow-log only), stages append one
tuple to a list; spans are materialized only for enabled tracers.
"""

from __future__ import annotations

import io
import itertools
import json
import logging
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "JsonlTracer",
    "CommitObs",
    "new_trace_id",
    "new_span_id",
    "SLOW_LOG",
]

#: Structured slow-commit lines go here; attach a handler (or configure
#: the root logger) to see them.  Nothing in the library ever prints to
#: stdout.
SLOW_LOG = logging.getLogger("repro.obs.slowlog")

_span_ids = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random, collision-unlikely)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> int:
    """A fresh process-unique span id (monotonic int)."""
    return next(_span_ids)


@dataclass(frozen=True)
class Span:
    """One finished, timed stage of a trace."""

    name: str
    trace_id: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }
        if self.parent_id is not None:
            d["parent_id"] = self.parent_id
        if self.attrs:
            d["attrs"] = self.attrs
        return d


class Tracer:
    """Receives finished spans.  Subclass and override :meth:`emit`.

    ``enabled`` is checked at every emission point; a disabled tracer
    (the default :class:`NullTracer`) costs one attribute read.
    Tracers may receive spans from several threads concurrently and
    must synchronize internally.
    """

    enabled: bool = True

    def emit(self, span: Span) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def emit_span(
        self,
        name: str,
        trace_id: str,
        start: float,
        end: float,
        *,
        parent_id: Optional[int] = None,
        span_id: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        """Build and emit a span in one call; returns its span id."""
        sid = span_id if span_id is not None else new_span_id()
        self.emit(
            Span(
                name=name,
                trace_id=trace_id,
                span_id=sid,
                parent_id=parent_id,
                start=start,
                end=end,
                attrs=attrs,
            )
        )
        return sid


class NullTracer(Tracer):
    """The default tracer: drops everything, ``enabled`` is False."""

    enabled = False

    def emit(self, span: Span) -> None:
        pass


class RecordingTracer(Tracer):
    """Keeps spans in memory; for tests and interactive inspection."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    def emit(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        return spans

    def trace_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for s in self.spans():
            seen.setdefault(s.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


class JsonlTracer(Tracer):
    """Writes one JSON line per span, for offline analysis.

    Accepts a path (opened append-mode) or any writable text file
    object.  Lines are written under a lock so concurrent emitters
    never interleave.
    """

    def __init__(self, path_or_file: Any) -> None:
        self._lock = threading.Lock()
        if isinstance(path_or_file, (str, bytes)) or hasattr(
            path_or_file, "__fspath__"
        ):
            self._fh: io.TextIOBase = open(path_or_file, "a", encoding="utf-8")
            self._owned = True
        else:
            self._fh = path_or_file
            self._owned = False

    def emit(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True, default=str)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._owned:
                self._fh.close()


class CommitObs:
    """One commit's observation context, threaded across the pipeline.

    Collects ``(name, start, end)`` stage tuples for the slow-commit
    log and emits a span per stage when the tracer is enabled.  The
    root span (named ``commit``) is emitted by :meth:`finish` with the
    commit verdict; its span id is pre-allocated so stage spans can
    parent to it before it exists.

    **Clock discipline**: every instant handed to :meth:`record` (and
    taken internally by :meth:`stage`/:meth:`finish`) is a
    ``time.monotonic()`` reading — producers along the commit path
    never touch the wall clock, so an NTP step mid-commit cannot
    produce negative durations or mis-ordered stages.  Spans surfaced
    to users still carry wall-clock (epoch) timestamps: this class is
    the single monotonic→wall conversion point, applying the fixed
    offset captured at construction, so one commit's spans share one
    consistent wall mapping.

    One ``CommitObs`` belongs to one commit and is touched by at most
    one thread at a time (ownership passes along with the commit
    through the pipeline), so stage recording is unsynchronized.
    """

    __slots__ = (
        "tracer",
        "trace_id",
        "root_id",
        "stages",
        "slow_threshold",
        "t0",
        "m0",
        "_offset",
        "_on_finish",
        "_finished",
    )

    def __init__(
        self,
        tracer: Tracer,
        trace_id: Optional[str] = None,
        *,
        slow_threshold: Optional[float] = None,
        start: Optional[float] = None,
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id if trace_id else new_trace_id()
        self.root_id = new_span_id()
        self.stages: List[Tuple[str, float, float]] = []
        self.slow_threshold = slow_threshold
        now_wall = time.time()
        now_mono = time.monotonic()
        #: the one wall-clock sample this commit ever takes; every
        #: emitted span timestamp is a monotonic instant shifted by it
        self._offset = now_wall - now_mono
        #: monotonic commit start (``start`` lets a caller backdate to
        #: an earlier monotonic reading, e.g. frame-arrival time)
        self.m0 = start if start is not None else now_mono
        #: wall-clock commit start, for user-surfaced span timestamps
        self.t0 = self.m0 + self._offset
        self._on_finish: List[Callable[["CommitObs", str], None]] = []
        self._finished = False

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent: Optional[int] = None,
        span_id: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[int]:
        """Record one finished stage (monotonic instants); returns the
        span id if emitted."""
        self.stages.append((name, start, end))
        if self.tracer.enabled:
            offset = self._offset
            return self.tracer.emit_span(
                name,
                self.trace_id,
                start + offset,
                end + offset,
                parent_id=parent if parent is not None else self.root_id,
                span_id=span_id,
                **attrs,
            )
        return None

    @contextmanager
    def stage(
        self, name: str, *, parent: Optional[int] = None, **attrs: Any
    ) -> Iterator[None]:
        start = time.monotonic()
        try:
            yield
        finally:
            self.record(name, start, time.monotonic(), parent=parent, **attrs)

    def on_finish(self, fn: Callable[["CommitObs", str], None]) -> None:
        """Run ``fn(obs, verdict)`` just before the root span is emitted."""
        self._on_finish.append(fn)

    def finish(self, verdict: str, **attrs: Any) -> float:
        """Close the trace: emit the root span, maybe log slow commits.

        Returns the end-to-end duration in seconds.  Idempotent — only
        the first call has any effect (re-finishing returns elapsed
        time without emitting again).
        """
        end = time.monotonic()
        total = end - self.m0
        if self._finished:
            return total
        self._finished = True
        for fn in self._on_finish:
            fn(self, verdict)
        if self.tracer.enabled:
            self.tracer.emit_span(
                "commit",
                self.trace_id,
                self.t0,
                end + self._offset,
                span_id=self.root_id,
                verdict=verdict,
                **attrs,
            )
        if self.slow_threshold is not None and total >= self.slow_threshold:
            SLOW_LOG.warning(
                "slow commit trace=%s total=%.6fs verdict=%s stages=%s",
                self.trace_id,
                total,
                verdict,
                "; ".join(
                    "%s=%.6f" % (name, e - s) for name, s, e in self.stages
                ),
            )
        return total
