"""Benchmark harness and reporting (drives the E1-E5 experiments)."""

from .harness import CellResult, Workload, build_workload, run_cell, time_call
from .reporting import e1_table, format_seconds, series_table

__all__ = [
    "CellResult",
    "Workload",
    "build_workload",
    "e1_table",
    "format_seconds",
    "run_cell",
    "series_table",
    "time_call",
]
