"""Benchmark harness and reporting (drives the E1-E5 experiments)."""

from .harness import (
    CellResult,
    CommitRateResult,
    Workload,
    build_workload,
    measure_commit_rate,
    run_cell,
    time_call,
)
from .reporting import (
    e1_table,
    format_seconds,
    plan_cache_payload,
    plan_cache_table,
    series_table,
    write_json_baseline,
)

__all__ = [
    "CellResult",
    "CommitRateResult",
    "Workload",
    "build_workload",
    "e1_table",
    "format_seconds",
    "measure_commit_rate",
    "plan_cache_payload",
    "plan_cache_table",
    "run_cell",
    "series_table",
    "time_call",
    "write_json_baseline",
]
