"""Benchmark harness and reporting (drives the E1-E5 experiments)."""

from .harness import (
    CellResult,
    CommitRateResult,
    ConcurrencyResult,
    Workload,
    build_workload,
    measure_commit_rate,
    measure_concurrent_throughput,
    run_cell,
    time_call,
)
from .reporting import (
    concurrency_payload,
    concurrency_table,
    e1_table,
    format_seconds,
    plan_cache_line,
    plan_cache_metrics,
    plan_cache_payload,
    plan_cache_table,
    series_table,
    write_json_baseline,
)

__all__ = [
    "CellResult",
    "CommitRateResult",
    "ConcurrencyResult",
    "Workload",
    "build_workload",
    "concurrency_payload",
    "concurrency_table",
    "e1_table",
    "format_seconds",
    "measure_commit_rate",
    "measure_concurrent_throughput",
    "plan_cache_line",
    "plan_cache_metrics",
    "plan_cache_payload",
    "plan_cache_table",
    "run_cell",
    "series_table",
    "time_call",
    "write_json_baseline",
]
