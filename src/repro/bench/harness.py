"""Benchmark harness: build a workload cell, time incremental vs full.

One *cell* corresponds to one configuration of the paper's evaluation:
a data scale (the paper's 1-5 GB axis) and an update size (the paper's
1-5 MB axis).  For each cell the harness measures:

* ``tintin_seconds`` — running the stored violation views against the
  captured update (``check_pending``: what safeCommit does before
  applying);
* ``baseline_seconds`` — executing the original assertion queries over
  the full post-update state (the paper's non-incremental comparator).

Both checks see exactly the same update and the same final state, and
run on the same engine with the same indexes.
"""

from __future__ import annotations

import gc
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core import Tintin
from ..minidb.database import Database
from ..tpch import (
    AssertionSpec,
    TPCHGenerator,
    UpdateGenerator,
    tpch_database,
)


@dataclass
class CommitRateResult:
    """Throughput of a repeated stage-then-safeCommit loop (E7)."""

    commits: int
    seconds: float
    assertions: int
    cache_enabled: bool
    plan_cache_invalidations: int = 0

    @property
    def commits_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.commits / self.seconds


def measure_commit_rate(
    tintin: Tintin,
    stage: Callable[[int], None],
    commits: int,
) -> CommitRateResult:
    """Time ``commits`` rounds of ``stage(i)`` followed by ``safeCommit``.

    ``stage`` receives the zero-based round number and must propose an
    update (through the capture triggers) that the installed assertions
    accept; a rejected commit aborts the measurement.  This is the E7
    primitive: with the plan cache enabled the per-commit cost is pure
    execution; with it disabled every executed violation view is parsed
    and planned anew — the seed's fresh-plan behaviour.
    """
    db = tintin.db
    before = db.plan_cache_stats.invalidations
    start = time.perf_counter()
    for i in range(commits):
        stage(i)
        result = tintin.safe_commit()
        if not result.committed:
            raise RuntimeError(f"commit {i} rejected during measurement: {result}")
    elapsed = time.perf_counter() - start
    return CommitRateResult(
        commits=commits,
        seconds=elapsed,
        assertions=len(tintin.assertions),
        cache_enabled=db.plan_cache_enabled,
        plan_cache_invalidations=db.plan_cache_stats.invalidations - before,
    )


@dataclass
class ConcurrencyResult:
    """Aggregate throughput of one multi-session sweep point (E8)."""

    sessions: int
    commits: int
    committed: int
    rejected: int
    seconds: float
    #: scheduler counters over the measured window
    group_fast_path: int = 0
    serial_commits: int = 0
    fallbacks: int = 0
    max_group_size: int = 1

    @property
    def commits_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.commits / self.seconds


def measure_concurrent_throughput(
    tintin: Tintin,
    session_count: int,
    commits_per_session: int,
    stage: Callable,
) -> ConcurrencyResult:
    """Aggregate commits/sec of ``session_count`` client threads.

    Each worker owns one session and runs ``commits_per_session``
    rounds of ``stage(session, worker, round)`` followed by
    ``session.commit()``.  ``stage`` must propose updates whose key
    footprints are disjoint across workers (each worker writes its own
    key range), so the scheduler's group-commit fast path is available;
    the measurement itself only requires that commits terminate.

    The clock starts when every worker is staged at the barrier and
    stops when the last commit returns, so session setup is excluded.
    """
    scheduler = tintin.sessions.scheduler
    # max_group_size is a lifetime high-water mark; zeroing it scopes
    # the reported maximum to this measurement window like the other
    # (delta-computed) counters
    scheduler.stats.max_group_size = 0
    before = scheduler.stats.snapshot()
    sessions = [tintin.create_session() for _ in range(session_count)]
    outcomes: list[bool] = []
    barrier = threading.Barrier(session_count + 1)

    def worker(index: int, session) -> None:
        results = []
        barrier.wait()
        for round_no in range(commits_per_session):
            stage(session, index, round_no)
            results.append(session.commit().committed)
        outcomes.extend(results)

    threads = [
        threading.Thread(target=worker, args=(index, session))
        for index, session in enumerate(sessions)
    ]
    # GC hygiene: a collection pause mid-measurement (scanning whatever
    # earlier workloads left alive) lands on a random worker and skews
    # the thread-count comparison; collect now and pause the collector
    # for the measured window
    gc.collect()
    gc.disable()
    try:
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    after = scheduler.stats.snapshot()
    return ConcurrencyResult(
        sessions=session_count,
        commits=len(outcomes),
        committed=sum(outcomes),
        rejected=len(outcomes) - sum(outcomes),
        seconds=elapsed,
        group_fast_path=after["group_fast_path"] - before["group_fast_path"],
        serial_commits=after["serial_commits"] - before["serial_commits"],
        fallbacks=after["fallbacks"] - before["fallbacks"],
        max_group_size=after["max_group_size"],
    )


@dataclass
class StagedReadResult:
    """Aggregate read throughput of sessions holding staged events (E8).

    ``mode`` is ``"overlay"`` (the production overlay-merge path:
    shared lock, base tables untouched) or ``"splice"`` (the historical
    baseline: exclusive lock, staged events physically spliced in and
    out around every query).
    """

    mode: str
    sessions: int
    reads: int
    seconds: float
    staged_rows: int
    plan_cache_invalidations: int = 0
    data_version_delta: int = 0

    @property
    def reads_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.reads / self.seconds


def measure_staged_read_throughput(
    tintin: Tintin,
    sessions: list,
    reads_per_session: int,
    sql,
    mode: str = "overlay",
) -> StagedReadResult:
    """Aggregate reads/sec of one reader thread per session.

    Every session must already hold staged events, so each read
    exercises the read-your-writes path: ``mode="overlay"`` uses
    ``session.query`` (concurrent readers), ``mode="splice"`` uses
    ``session.query_spliced`` (the serialized mutate-and-undo
    baseline).  ``sql`` is one statement or a read script (a sequence
    cycled through per reader — an OLTP mix of cheap lookups and
    pending-update checks).  The clock starts at the barrier and stops
    when the last reader finishes.
    """
    if mode not in ("overlay", "splice"):
        raise ValueError(f"unknown staged-read mode {mode!r}")
    script = (sql,) if isinstance(sql, str) else tuple(sql)
    db = tintin.db
    staged_rows = sum(
        ins + dels
        for session in sessions
        for ins, dels in session.pending_counts().values()
    )
    invalidations_before = db.plan_cache_stats.invalidations
    version_before = db.data_version()
    barrier = threading.Barrier(len(sessions) + 1)
    completed = [0] * len(sessions)
    errors: list[BaseException] = []

    def reader(index: int, session) -> None:
        read = session.query if mode == "overlay" else session.query_spliced
        barrier.wait()
        try:
            for round_no in range(reads_per_session):
                read(script[round_no % len(script)])
                completed[index] += 1
        except BaseException as exc:  # surface after join, never silently
            errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(index, session))
        for index, session in enumerate(sessions)
    ]
    gc.collect()
    gc.disable()
    try:
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    if errors:
        raise RuntimeError(
            f"{len(errors)} reader thread(s) failed during the "
            f"{mode} measurement"
        ) from errors[0]
    return StagedReadResult(
        mode=mode,
        sessions=len(sessions),
        reads=sum(completed),
        seconds=elapsed,
        staged_rows=staged_rows,
        plan_cache_invalidations=(
            db.plan_cache_stats.invalidations - invalidations_before
        ),
        data_version_delta=db.data_version() - version_before,
    )


@dataclass
class CellResult:
    """Timing results of one workload cell."""

    scale: float
    data_rows: int
    update_rows: int
    tintin_seconds: float
    baseline_seconds: float
    committed: bool

    @property
    def speedup(self) -> float:
        if self.tintin_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.tintin_seconds


@dataclass
class Workload:
    """A prepared workload: loaded database + staged update.

    The update sits in the event tables; ``check_incremental`` and
    (after ``apply``) ``check_full`` can be timed repeatedly without
    disturbing it.
    """

    db: Database
    tintin: Tintin
    update_rows: int
    data_rows: int
    scale: float

    def check_incremental(self):
        return self.tintin.check_pending()

    def apply(self) -> int:
        return self.tintin.events.apply_pending()

    def check_full(self):
        return self.tintin.baseline.check_current_state(self.db)


def build_workload(
    scale: float,
    update_orders: int,
    assertions: tuple[AssertionSpec, ...],
    seed: int = 42,
    update_kind: str = "mixed",
    optimize: bool = True,
) -> Workload:
    """Load TPC-H at ``scale``, install the assertions, stage an update.

    ``update_kind`` is ``"mixed"`` (RF1+RF2, the paper's
    insertions+deletions), ``"insert"`` (RF1) or ``"delete"`` (RF2).
    """
    db = tpch_database()
    data = TPCHGenerator(scale, seed).populate(db)
    tintin = Tintin(db, optimize=optimize)
    tintin.install()
    for spec in assertions:
        tintin.add_assertion(spec.sql)
    generator = UpdateGenerator(db, seed=seed + 1)
    if update_kind == "mixed":
        batch = generator.mixed_refresh(update_orders)
    elif update_kind == "insert":
        batch = generator.rf1_new_orders(update_orders)
    elif update_kind == "delete":
        batch = generator.rf2_delete_orders(update_orders)
    else:
        raise ValueError(f"unknown update kind {update_kind!r}")
    staged = batch.stage(db)
    return Workload(db, tintin, staged, data.total_rows, scale)


def time_call(fn: Callable, repeat: int = 3) -> float:
    """Best-of-N wall time of a callable (seconds)."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_cell(
    scale: float,
    update_orders: int,
    assertions: tuple[AssertionSpec, ...],
    seed: int = 42,
    repeat: int = 3,
) -> CellResult:
    """Measure one cell: incremental check vs full post-state check."""
    workload = build_workload(scale, update_orders, assertions, seed)
    incremental = time_call(workload.check_incremental, repeat)
    result = workload.check_incremental()
    workload.apply()
    full = time_call(workload.check_full, repeat)
    return CellResult(
        scale=scale,
        data_rows=workload.data_rows,
        update_rows=workload.update_rows,
        tintin_seconds=incremental,
        baseline_seconds=full,
        committed=result.committed,
    )
