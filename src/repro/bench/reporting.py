"""Paper-style result tables for the benchmark harness."""

from __future__ import annotations

import json
from typing import Iterable

from .harness import CellResult, CommitRateResult


def format_seconds(seconds: float) -> str:
    if seconds < 0.0001:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def e1_table(results: Iterable[CellResult]) -> str:
    """The E1 grid: rows = data scale, columns = update size, cells =
    TINTIN time / baseline time / speedup (the paper's x89-x2662)."""
    lines = [
        f"{'data rows':>10} {'update rows':>12} {'TINTIN':>10} "
        f"{'full check':>11} {'speedup':>9}"
    ]
    for cell in results:
        lines.append(
            f"{cell.data_rows:>10} {cell.update_rows:>12} "
            f"{format_seconds(cell.tintin_seconds):>10} "
            f"{format_seconds(cell.baseline_seconds):>11} "
            f"x{cell.speedup:>8.1f}"
        )
    return "\n".join(lines)


def series_table(
    header: str, rows: list[tuple[str, float, float]]
) -> str:
    """A two-series table (incremental vs full) keyed by a label."""
    lines = [f"{header:>16} {'TINTIN':>10} {'full check':>11} {'speedup':>9}"]
    for label, incremental, full in rows:
        speedup = full / incremental if incremental > 0 else float("inf")
        lines.append(
            f"{label:>16} {format_seconds(incremental):>10} "
            f"{format_seconds(full):>11} x{speedup:>8.1f}"
        )
    return "\n".join(lines)


def plan_cache_table(
    pairs: Iterable[tuple[CommitRateResult, CommitRateResult]]
) -> str:
    """The E7 grid: per assertion count, commits/sec with the prepared
    plan cache on vs the fresh-plan path, plus the resulting speedup."""
    lines = [
        f"{'assertions':>10} {'cached c/s':>11} {'fresh c/s':>10} "
        f"{'speedup':>9} {'replans':>8}"
    ]
    for cached, fresh in pairs:
        speedup = (
            cached.commits_per_second / fresh.commits_per_second
            if fresh.commits_per_second > 0
            else float("inf")
        )
        lines.append(
            f"{cached.assertions:>10} {cached.commits_per_second:>11.0f} "
            f"{fresh.commits_per_second:>10.0f} x{speedup:>8.1f} "
            f"{cached.plan_cache_invalidations:>8}"
        )
    return "\n".join(lines)


def plan_cache_payload(
    pairs: Iterable[tuple[CommitRateResult, CommitRateResult]]
) -> dict:
    """JSON-serializable summary of an E7 run (the committed baseline)."""
    rows = []
    for cached, fresh in pairs:
        rows.append(
            {
                "assertions": cached.assertions,
                "commits": cached.commits,
                "cached_commits_per_second": round(cached.commits_per_second, 1),
                "fresh_commits_per_second": round(fresh.commits_per_second, 1),
                "speedup": round(
                    cached.commits_per_second / fresh.commits_per_second, 2
                )
                if fresh.commits_per_second > 0
                else None,
                "plan_cache_invalidations": cached.plan_cache_invalidations,
            }
        )
    return {"experiment": "e7_plan_cache", "rows": rows}


def write_json_baseline(path: str, payload: dict) -> None:
    """Persist a benchmark payload as a committed JSON baseline."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
