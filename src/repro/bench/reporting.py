"""Paper-style result tables for the benchmark harness."""

from __future__ import annotations

import json
from typing import Iterable, Optional

from ..minidb.database import Database
from .harness import (
    CellResult,
    CommitRateResult,
    ConcurrencyResult,
    StagedReadResult,
)


def format_seconds(seconds: float) -> str:
    if seconds < 0.0001:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def e1_table(results: Iterable[CellResult]) -> str:
    """The E1 grid: rows = data scale, columns = update size, cells =
    TINTIN time / baseline time / speedup (the paper's x89-x2662)."""
    lines = [
        f"{'data rows':>10} {'update rows':>12} {'TINTIN':>10} "
        f"{'full check':>11} {'speedup':>9}"
    ]
    for cell in results:
        lines.append(
            f"{cell.data_rows:>10} {cell.update_rows:>12} "
            f"{format_seconds(cell.tintin_seconds):>10} "
            f"{format_seconds(cell.baseline_seconds):>11} "
            f"x{cell.speedup:>8.1f}"
        )
    return "\n".join(lines)


def series_table(
    header: str, rows: list[tuple[str, float, float]]
) -> str:
    """A two-series table (incremental vs full) keyed by a label."""
    lines = [f"{header:>16} {'TINTIN':>10} {'full check':>11} {'speedup':>9}"]
    for label, incremental, full in rows:
        speedup = full / incremental if incremental > 0 else float("inf")
        lines.append(
            f"{label:>16} {format_seconds(incremental):>10} "
            f"{format_seconds(full):>11} x{speedup:>8.1f}"
        )
    return "\n".join(lines)


def plan_cache_table(
    pairs: Iterable[tuple[CommitRateResult, CommitRateResult]]
) -> str:
    """The E7 grid: per assertion count, commits/sec with the prepared
    plan cache on vs the fresh-plan path, plus the resulting speedup."""
    lines = [
        f"{'assertions':>10} {'cached c/s':>11} {'fresh c/s':>10} "
        f"{'speedup':>9} {'replans':>8}"
    ]
    for cached, fresh in pairs:
        speedup = (
            cached.commits_per_second / fresh.commits_per_second
            if fresh.commits_per_second > 0
            else float("inf")
        )
        lines.append(
            f"{cached.assertions:>10} {cached.commits_per_second:>11.0f} "
            f"{fresh.commits_per_second:>10.0f} x{speedup:>8.1f} "
            f"{cached.plan_cache_invalidations:>8}"
        )
    return "\n".join(lines)


def plan_cache_payload(
    pairs: Iterable[tuple[CommitRateResult, CommitRateResult]]
) -> dict:
    """JSON-serializable summary of an E7 run (the committed baseline)."""
    rows = []
    for cached, fresh in pairs:
        rows.append(
            {
                "assertions": cached.assertions,
                "commits": cached.commits,
                "cached_commits_per_second": round(cached.commits_per_second, 1),
                "fresh_commits_per_second": round(fresh.commits_per_second, 1),
                "speedup": round(
                    cached.commits_per_second / fresh.commits_per_second, 2
                )
                if fresh.commits_per_second > 0
                else None,
                "plan_cache_invalidations": cached.plan_cache_invalidations,
            }
        )
    return {"experiment": "e7_plan_cache", "rows": rows}


def plan_cache_metrics(db: Database) -> dict:
    """The plan-cache counters of a database, JSON-ready.

    Attached to every experiment's report (not just E7), so a run
    always records how much parsing/planning the cache absorbed.
    """
    metrics = db.plan_cache_stats.snapshot()
    metrics["entries"] = len(db.plan_cache)
    metrics["enabled"] = db.plan_cache_enabled
    return metrics


def plan_cache_line(db: Database) -> str:
    """One printable line of plan-cache metrics for experiment reports."""
    m = plan_cache_metrics(db)
    return (
        f"plan cache: {m['entries']} entries, hits={m['hits']} "
        f"misses={m['misses']} invalidations={m['invalidations']} "
        f"dml-ast hits={m['dml_ast_hits']}/"
        f"{m['dml_ast_hits'] + m['dml_ast_misses']}"
    )


def durability_metrics(tintin=None) -> dict:
    """The durability counters of an engine, JSON-ready.

    Attached to every experiment's report alongside the plan-cache
    block, so a run always records whether (and how) commits were
    logged.  ``tintin=None`` or an engine without an attached manager
    reports ``{"mode": "off"}`` — the in-memory-only configuration.
    """
    manager = getattr(tintin, "durability", None)
    if manager is None:
        return {"mode": "off", "attached": False}
    metrics = manager.metrics()
    metrics["attached"] = True
    if tintin.serving:
        stats = tintin.sessions.scheduler.stats
        metrics["scheduler_wal_appends"] = stats.wal_appends
        metrics["scheduler_wal_fsyncs"] = stats.wal_fsyncs
    return metrics


def durability_line(tintin=None) -> str:
    """One printable line of durability metrics for experiment reports."""
    m = durability_metrics(tintin)
    if not m["attached"]:
        return "durability: off (no WAL attached — in-memory only)"
    if m["mode"] == "off":
        return (
            f"durability: off (checkpoint-only, "
            f"{m['checkpoints']} checkpoint(s))"
        )
    shared = (
        m["appends"] / m["fsyncs"] if m.get("fsyncs") else float("inf")
    )
    return (
        f"durability: {m['mode']} — {m['appends']} append(s) / "
        f"{m['fsyncs']} fsync(s) ({shared:.1f} records/fsync), "
        f"{m['bytes_written']}B logged, {m['checkpoints']} checkpoint(s)"
    )


def durability_table(rows: Iterable[dict]) -> str:
    """The E9 grid: per (durability mode, session count), aggregate
    commits/sec plus the WAL activity that produced them.  The
    ``commits/fsync`` column is group commit made visible: how many
    acknowledged commits shared each durable flush."""
    lines = [
        f"{'mode':>8} {'sessions':>8} {'commits':>8} {'c/s':>8} "
        f"{'appends':>8} {'fsyncs':>7} {'commits/fsync':>14}"
    ]
    for r in rows:
        fsyncs = r.get("wal_fsyncs", 0)
        appends = r.get("wal_appends", 0)
        per = (
            f"{r['commits'] / fsyncs:>14.1f}" if fsyncs else f"{'-':>14}"
        )
        lines.append(
            f"{r['mode']:>8} {r['sessions']:>8} {r['commits']:>8} "
            f"{r['commits_per_second']:>8.0f} {appends:>8} {fsyncs:>7} {per}"
        )
    return "\n".join(lines)


def concurrency_table(results: Iterable[ConcurrencyResult]) -> str:
    """The E8 grid: per session count, aggregate commits/sec, the
    speedup over the single-session row, and how the scheduler batched
    (fast-path vs serial commits, largest group)."""
    results = list(results)
    base = results[0].commits_per_second if results else 0.0
    lines = [
        f"{'sessions':>8} {'commits':>8} {'c/s':>8} {'speedup':>8} "
        f"{'grouped':>8} {'serial':>7} {'maxgrp':>7}"
    ]
    for r in results:
        speedup = r.commits_per_second / base if base > 0 else float("inf")
        lines.append(
            f"{r.sessions:>8} {r.commits:>8} {r.commits_per_second:>8.0f} "
            f"x{speedup:>7.2f} {r.group_fast_path:>8} "
            f"{r.serial_commits:>7} {r.max_group_size:>7}"
        )
    return "\n".join(lines)


def concurrency_payload(
    results: Iterable[ConcurrencyResult],
    differential: Optional[dict] = None,
    db: Optional[Database] = None,
) -> dict:
    """JSON-serializable summary of an E8 run (the committed baseline)."""
    results = list(results)
    base = results[0].commits_per_second if results else 0.0
    rows = []
    for r in results:
        rows.append(
            {
                "sessions": r.sessions,
                "commits": r.commits,
                "committed": r.committed,
                "rejected": r.rejected,
                "commits_per_second": round(r.commits_per_second, 1),
                "speedup_vs_one_session": round(r.commits_per_second / base, 2)
                if base > 0
                else None,
                "group_fast_path": r.group_fast_path,
                "serial_commits": r.serial_commits,
                "fallbacks": r.fallbacks,
                "max_group_size": r.max_group_size,
            }
        )
    payload = {"experiment": "e8_concurrency", "rows": rows}
    if differential is not None:
        payload["differential"] = differential
    if db is not None:
        payload["plan_cache"] = plan_cache_metrics(db)
    return payload


def staged_read_table(overlay: StagedReadResult, splice: StagedReadResult) -> str:
    """The E8 staged-read grid: overlay-merge vs splice-baseline
    aggregate reads/sec for sessions holding staged events."""
    speedup = (
        overlay.reads_per_second / splice.reads_per_second
        if splice.reads_per_second > 0
        else float("inf")
    )
    lines = [
        f"{'mode':>8} {'sessions':>8} {'reads':>7} {'reads/s':>9} "
        f"{'replans':>8} {'dv-delta':>9}"
    ]
    for r in (overlay, splice):
        lines.append(
            f"{r.mode:>8} {r.sessions:>8} {r.reads:>7} "
            f"{r.reads_per_second:>9.0f} {r.plan_cache_invalidations:>8} "
            f"{r.data_version_delta:>9}"
        )
    lines.append(f"overlay-merge speedup: x{speedup:.1f}")
    return "\n".join(lines)


def staged_read_payload(
    overlay: StagedReadResult, splice: StagedReadResult
) -> dict:
    """JSON-serializable summary of the E8 staged-read comparison."""
    speedup = (
        round(overlay.reads_per_second / splice.reads_per_second, 2)
        if splice.reads_per_second > 0
        else None
    )
    def row(r: StagedReadResult) -> dict:
        return {
            "mode": r.mode,
            "sessions": r.sessions,
            "reads": r.reads,
            "staged_rows": r.staged_rows,
            "reads_per_second": round(r.reads_per_second, 1),
            "plan_cache_invalidations": r.plan_cache_invalidations,
            "data_version_delta": r.data_version_delta,
        }

    return {
        "overlay": row(overlay),
        "splice": row(splice),
        "overlay_speedup": speedup,
    }


def write_json_baseline(path: str, payload: dict) -> None:
    """Persist a benchmark payload as a committed JSON baseline."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
