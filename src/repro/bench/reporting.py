"""Paper-style result tables for the benchmark harness."""

from __future__ import annotations

from typing import Iterable

from .harness import CellResult


def format_seconds(seconds: float) -> str:
    if seconds < 0.0001:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def e1_table(results: Iterable[CellResult]) -> str:
    """The E1 grid: rows = data scale, columns = update size, cells =
    TINTIN time / baseline time / speedup (the paper's x89-x2662)."""
    lines = [
        f"{'data rows':>10} {'update rows':>12} {'TINTIN':>10} "
        f"{'full check':>11} {'speedup':>9}"
    ]
    for cell in results:
        lines.append(
            f"{cell.data_rows:>10} {cell.update_rows:>12} "
            f"{format_seconds(cell.tintin_seconds):>10} "
            f"{format_seconds(cell.baseline_seconds):>11} "
            f"x{cell.speedup:>8.1f}"
        )
    return "\n".join(lines)


def series_table(
    header: str, rows: list[tuple[str, float, float]]
) -> str:
    """A two-series table (incremental vs full) keyed by a label."""
    lines = [f"{header:>16} {'TINTIN':>10} {'full check':>11} {'speedup':>9}"]
    for label, incremental, full in rows:
        speedup = full / incremental if incremental > 0 else float("inf")
        lines.append(
            f"{label:>16} {format_seconds(incremental):>10} "
            f"{format_seconds(full):>11} x{speedup:>8.1f}"
        )
    return "\n".join(lines)
