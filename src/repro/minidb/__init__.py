"""minidb — the from-scratch relational engine substrate.

The TINTIN paper runs on Microsoft SQL Server; this package provides the
equivalent substrate: typed tables with PK/UNIQUE/NOT NULL/FK
constraints, hash indexes, views, INSTEAD OF triggers, stored
procedures, transactions, and a planner/executor that gives the
generated incremental queries the access paths they rely on
(index probes instead of scans for update-sized inputs).
"""

from .catalog import Catalog, Procedure, Trigger, View
from .database import (
    Database,
    PlanCache,
    PlanCacheStats,
    PreparedStatement,
    ResultSet,
)
from .plan import ExecutionContext
from .schema import Column, ForeignKey, TableSchema
from .storage import Table
from .types import (
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    VARCHAR,
    SQLType,
    coerce,
    resolve_type,
)

__all__ = [
    "BOOLEAN",
    "Catalog",
    "Column",
    "DATE",
    "DOUBLE",
    "Database",
    "ExecutionContext",
    "ForeignKey",
    "INTEGER",
    "PlanCache",
    "PlanCacheStats",
    "PreparedStatement",
    "Procedure",
    "ResultSet",
    "SQLType",
    "Table",
    "TableSchema",
    "Trigger",
    "VARCHAR",
    "View",
    "coerce",
    "resolve_type",
]
