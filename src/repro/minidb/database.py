"""The :class:`Database` facade: SQL execution against the catalog.

This is the engine's public entry point.  It parses and executes SQL
text (or pre-parsed ASTs), dispatches DML through INSTEAD OF triggers,
enforces constraints, and exposes the transactional batch-apply that
TINTIN's ``safeCommit`` uses.

Query compilation is amortized through two cooperating layers:

* :class:`PreparedStatement` — an explicit handle (``db.prepare(sql)``
  / ``db.prepare_query(ast)``) that owns a compiled plan and re-plans
  itself lazily when the catalog version changes or referenced table
  sizes drift far from what the planner assumed;
* a transparent LRU :class:`PlanCache` inside :meth:`Database.query`
  and :meth:`Database.execute`, keyed by SQL text, so repeated text
  queries (TINTIN's per-commit ``SELECT * FROM <edc_view>``) skip the
  parser and planner entirely.

Both layers rely on plans being immutable and reusable (see
:mod:`repro.minidb.plan`); set ``plan_cache_enabled = False`` to fall
back to the historical fresh-plan-per-statement behaviour.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import perf_counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, NamedTuple, Optional, Sequence

from ..errors import (
    CatalogError,
    ConstraintViolation,
    ExecutionError,
    SchemaError,
)
from ..sqlparser import nodes as n
from ..sqlparser.parser import parse_statement
from .catalog import Catalog, Procedure, Trigger, View
from .constraints import ConstraintChecker, validate_foreign_keys
from .expressions import Scope, compile_expr
from .plan import ExecutionContext, PlanNode, execution_params
from .planner import Planner
from .schema import Column, TableSchema
from .storage import Table, TableOverlay
from .transactions import TransactionManager
from .types import resolve_type

#: A cached plan is re-planned when a referenced table's row count moves
#: at least this factor away from its plan-time value (a plan chosen
#: when a table held 10 rows is re-planned once it reaches 100 — the
#: IndexJoin-vs-HashJoin decision was made for a different shape) ...
_DRIFT_RATIO = 10.0
#: ... provided the absolute change also crosses this delta.  The delta
#: gate keeps small-table noise from thrashing the cache: TINTIN's
#: event tables legitimately swing between empty and update-sized on
#: every commit, and for update-sized row counts every plan shape
#: decision comes out the same anyway.  Because a table growing row by
#: row re-records its count at each re-plan, a growing table triggers
#: only O(log n) recompilations over its lifetime.
_DRIFT_MIN_DELTA = 64


def _row_count_drifted(old: int, new: int) -> bool:
    if abs(new - old) < _DRIFT_MIN_DELTA:
        return False
    return new >= old * _DRIFT_RATIO or old >= new * _DRIFT_RATIO


class ResultSet:
    """An executed query result: column names plus materialized rows."""

    def __init__(self, columns: list[str], rows: list[tuple]):
        self.columns = columns
        self.rows = rows

    @property
    def is_empty(self) -> bool:
        return not self.rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def first(self) -> Optional[tuple]:
        return self.rows[0] if self.rows else None

    def column(self, name: str) -> list:
        """All values of one output column."""
        try:
            index = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(f"result has no column {name!r}") from None
        return [row[index] for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSet({self.columns}, {len(self.rows)} rows)"


class _PlanState(NamedTuple):
    """One immutable compilation of a prepared statement.

    Bundling the plan with its validity metadata into a single object
    lets a re-plan install the new compilation with one attribute
    assignment, so a concurrent :meth:`PreparedStatement.execute` on
    another thread always sees a matching (plan, columns) pair.
    """

    plan: PlanNode
    columns: list[str]
    catalog_version: int
    row_counts: dict[str, int]
    table_refs: dict[str, Table]


class PreparedStatement:
    """A query compiled once and executable many times.

    The handle owns the current compiled plan plus the metadata needed
    to decide whether it is still trustworthy: the catalog version it
    was planned under and the row counts of every base table the
    planner touched.  :meth:`execute` revalidates in O(#tables) integer
    comparisons and re-plans lazily when the catalog changed
    (DDL — the plan may reference dropped objects) or a table size
    drifted past :data:`_DRIFT_RATIO` (the greedy IndexJoin/HashJoin
    decisions were made for a different data shape).

    Handles are shared across server sessions: re-planning is
    serialized per handle, and the compiled state swaps atomically.
    """

    def __init__(self, db: "Database", query: n.Query, sql: Optional[str] = None):
        self.db = db
        self.query = query
        self.sql = sql
        self._replan_lock = threading.Lock()
        self._state = self._compile()

    # -- compilation ------------------------------------------------------

    def _compile(self) -> _PlanState:
        # read the version BEFORE planning: if DDL lands mid-compile,
        # the state is stamped stale and revalidation re-plans — it can
        # never pin a pre-DDL plan under the post-DDL version
        catalog_version = self.db.catalog.version
        planner = Planner(self.db.catalog)
        plan = planner.plan_query(self.query)
        return _PlanState(
            plan=plan,
            columns=planner.output_columns(self.query),
            catalog_version=catalog_version,
            row_counts=dict(planner.tables_used),
            table_refs=dict(planner.table_refs),
        )

    def _state_is_valid(self, state: _PlanState) -> bool:
        catalog = self.db.catalog
        if state.catalog_version != catalog.version:
            return False
        for name, planned_count in state.row_counts.items():
            table = catalog.get_table(name, default=None)
            if table is None:
                return False
            if _row_count_drifted(planned_count, len(table)):
                return False
        return True

    def is_valid(self) -> bool:
        """Whether the compiled plan can still be executed as-is."""
        return self._state_is_valid(self._state)

    def _validated_state(self) -> _PlanState:
        state = self._state
        if self._state_is_valid(state):
            return state
        with self._replan_lock:
            state = self._state
            if not self._state_is_valid(state):
                self.db.plan_cache_stats.invalidations += 1
                state = self._compile()
                self._state = state
            return state

    # -- execution --------------------------------------------------------

    @property
    def plan(self) -> PlanNode:
        """The current compiled plan (revalidated on access)."""
        return self._validated_state().plan

    @property
    def columns(self) -> list[str]:
        # a view redefinition can change the list, so revalidate first
        return list(self._validated_state().columns)

    def execute(
        self,
        params: Optional[dict] = None,
        overlays: Optional[dict[str, TableOverlay]] = None,
        collector: Optional[object] = None,
    ) -> ResultSet:
        """Run the prepared plan under a fresh execution context.

        ``overlays`` (normalized table name ->
        :class:`~repro.minidb.storage.TableOverlay`) merges staged
        events into the named tables for this execution only — the
        overlay-merge read path of server sessions.  The compiled plan
        itself is shared and untouched.  ``collector`` (see
        :class:`repro.obs.profiler.PlanStatsCollector`) observes this
        one execution's per-node row counts and timings.
        """
        state = self._validated_state()
        ctx = ExecutionContext(overlays, collector=collector)
        return ResultSet(
            list(state.columns), list(state.plan.run(params, ctx))
        )

    def explain(self) -> str:
        """The current physical plan as an indented tree."""
        return self._validated_state().plan.explain()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.sql if self.sql is not None else type(self.query).__name__
        return (
            f"PreparedStatement({label!r}, "
            f"catalog v{self._state.catalog_version})"
        )


@dataclass
class PlanCacheStats:
    """Counters for the transparent plan cache (inspect via EXPLAIN)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    #: DML AST cache counters: INSERT/DELETE/UPDATE text whose parsed
    #: statement was reused (hit) or parsed and stored (miss)
    dml_ast_hits: int = 0
    dml_ast_misses: int = 0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "dml_ast_hits": self.dml_ast_hits,
            "dml_ast_misses": self.dml_ast_misses,
        }


class PlanCache:
    """A small LRU of :class:`PreparedStatement` keyed by SQL text.

    Entries revalidate themselves (catalog version + row-count drift),
    so the cache never needs proactive invalidation — stale entries
    simply re-plan on their next use.  Statements that fail to parse or
    are not SELECTs are never cached.  All operations are serialized
    behind an internal lock: session threads share one cache.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._entries: "OrderedDict[str, PreparedStatement]" = OrderedDict()
        self._lock = threading.Lock()

    @staticmethod
    def key(sql: str) -> str:
        return sql.strip()

    def get(self, sql: str) -> Optional[PreparedStatement]:
        key = self.key(sql)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, sql: str, statement: PreparedStatement) -> None:
        key = self.key(sql)
        with self._lock:
            self._entries[key] = statement
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                statement.db.plan_cache_stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def prune_dead(self, catalog: Catalog) -> int:
        """Drop entries whose plans pin storage that left the catalog.

        A cached plan holds direct references to its tables' row
        storage; after DROP TABLE — including drop-and-recreate under
        the same name — the entry would otherwise retain the dropped
        storage until LRU eviction.  Detection is by object identity:
        an entry is dead as soon as any captured Table is no longer the
        catalog's current object for that name.  Entries whose tables
        are all intact (merely version-stale plans) are kept — they
        re-plan cheaply from their stored AST.
        """
        with self._lock:
            dead = [
                key
                for key, statement in self._entries.items()
                if any(
                    catalog.get_table(name, default=None) is not ref
                    for name, ref in statement._state.table_refs.items()
                )
            ]
            for key in dead:
                del self._entries[key]
            return len(dead)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, sql: str) -> bool:
        with self._lock:
            return self.key(sql) in self._entries


class Database:
    """An in-memory relational database with SQL Server-style features.

    The subset implemented is exactly what the TINTIN reproduction
    needs: typed tables with PK/UNIQUE/NOT NULL/FK constraints, views,
    INSTEAD OF triggers, stored procedures, transactions, and a planner
    whose incremental-friendly access paths mirror what a production
    optimizer would do with the paper's generated queries.
    """

    def __init__(self, name: str = "db", plan_cache_size: int = 256):
        self.name = name
        self.catalog = Catalog()
        self.checker = ConstraintChecker(self.catalog)
        #: the default transaction manager; server sessions bind their
        #: own manager per thread via :meth:`transaction_scope`
        self._default_transactions = TransactionManager()
        self._txn_binding = threading.local()
        #: transparent prepared-plan cache for text queries; set
        #: ``plan_cache_enabled = False`` to restore the historical
        #: fresh-parse-and-plan-per-statement behaviour
        self.plan_cache = PlanCache(plan_cache_size)
        self.plan_cache_enabled = True
        self.plan_cache_stats = PlanCacheStats()
        self._cache_pruned_version = -1
        #: parsed-AST LRU for DML text (INSERT/DELETE/UPDATE), keyed
        #: alongside the prepared-plan cache: repeated DML text skips
        #: the parser (execution still resolves tables/constraints
        #: fresh, so the entries never go stale)
        self._dml_ast_cache: "OrderedDict[str, n.Statement]" = OrderedDict()
        self._dml_ast_capacity = plan_cache_size
        self._dml_ast_lock = threading.Lock()
        #: optional DDL observer ``(event, **payload)`` invoked after a
        #: facade-level schema change succeeds.  The durability manager
        #: installs itself here so CREATE/DROP TABLE issued through the
        #: database reach the write-ahead log; event-namespace tables
        #: (TINTIN's capture machinery) are recreated by replaying the
        #: higher-level ``install`` record instead and bypass this hook.
        self.ddl_listener = None
        #: makes a facade DDL's catalog mutation and its listener call
        #: one atomic step.  WAL format v2 batch records reference
        #: tables by catalog position, so the log's DDL order must
        #: match the catalog's mutation order — without this lock two
        #: racing DDLs could mutate in one order and log in the other,
        #: and replay would resolve ordinals against the wrong list.
        self._ddl_lock = threading.Lock()

    # -- transactions (per-session binding) ---------------------------------

    @property
    def transactions(self) -> TransactionManager:
        """The transaction manager bound to the calling thread.

        Defaults to the database-wide manager; a server session's
        commit window rebinds its own manager via
        :meth:`transaction_scope` so undo logs stay per-session.
        """
        bound = getattr(self._txn_binding, "manager", None)
        return bound if bound is not None else self._default_transactions

    @contextmanager
    def transaction_scope(self, manager: TransactionManager):
        """Bind ``manager`` as the calling thread's transaction manager
        for the duration of the ``with`` block."""
        previous = getattr(self._txn_binding, "manager", None)
        self._txn_binding.manager = manager
        try:
            yield manager
        finally:
            self._txn_binding.manager = previous

    # -- prepared statements ------------------------------------------------

    def prepare(self, sql: str) -> PreparedStatement:
        """Compile a SELECT/UNION once for repeated execution."""
        stmt = parse_statement(sql)
        if not isinstance(stmt, n.SelectStatement):
            raise ExecutionError("prepare() requires a SELECT statement")
        return PreparedStatement(self, stmt.query, sql=sql)

    def prepare_query(self, query: n.Query) -> PreparedStatement:
        """Compile a pre-parsed query AST once for repeated execution."""
        return PreparedStatement(self, query)

    def prepare_cached(self, sql: str, query: n.Query) -> PreparedStatement:
        """Get-or-create the plan-cache entry for SELECT text whose AST
        the caller already parsed (avoids a second parse of ``sql``)."""
        cached = self._cached_select(sql)
        if cached is not None:
            return cached
        prepared = PreparedStatement(self, query, sql=sql)
        self._cache_select(sql, prepared)
        return prepared

    def _cached_select(self, sql: str) -> Optional[PreparedStatement]:
        """Cache lookup for a text SELECT; counts a hit or nothing."""
        if not self.plan_cache_enabled:
            return None
        if self._cache_pruned_version != self.catalog.version:
            # DDL happened since the last access: free entries whose
            # tables were dropped (they pin the dropped row storage)
            self.plan_cache.prune_dead(self.catalog)
            self._cache_pruned_version = self.catalog.version
        cached = self.plan_cache.get(sql)
        if cached is not None:
            self.plan_cache_stats.hits += 1
        return cached

    def _cache_select(self, sql: str, statement: PreparedStatement) -> None:
        if self.plan_cache_enabled:
            self.plan_cache_stats.misses += 1
            self.plan_cache.put(sql, statement)

    def _prepare_text(self, sql: str, required_by: Optional[str]):
        """Shared lookup/parse/prepare/cache sequence for text SELECTs.

        Returns ``(prepared, parsed_stmt, was_hit)``; ``prepared`` is
        None when the text is not a SELECT — a
        :class:`~repro.errors.ExecutionError` naming ``required_by``
        is raised instead if the caller accepts only SELECTs.
        """
        cached = self._cached_select(sql)
        if cached is not None:
            return cached, None, True
        stmt = parse_statement(sql)
        if not isinstance(stmt, n.SelectStatement):
            if required_by is not None:
                raise ExecutionError(f"{required_by} requires a SELECT statement")
            return None, stmt, False
        prepared = PreparedStatement(self, stmt.query, sql=sql)
        self._cache_select(sql, prepared)
        return prepared, stmt, False

    # -- DML AST cache ------------------------------------------------------

    def _cached_dml(self, sql: str) -> Optional[n.Statement]:
        """Return the cached parsed statement for DML text, if any."""
        if not self.plan_cache_enabled:
            return None
        key = sql.strip()
        with self._dml_ast_lock:
            stmt = self._dml_ast_cache.get(key)
            if stmt is not None:
                self._dml_ast_cache.move_to_end(key)
                self.plan_cache_stats.dml_ast_hits += 1
            return stmt

    def _cache_dml(self, sql: str, stmt: n.Statement) -> None:
        """Remember a parsed INSERT/DELETE/UPDATE for its SQL text.

        The AST nodes are frozen dataclasses, so one parse can be
        re-executed any number of times; values and WHERE clauses are
        re-evaluated per execution.
        """
        if not self.plan_cache_enabled:
            return
        if not isinstance(stmt, (n.Insert, n.Delete, n.Update)):
            return
        key = sql.strip()
        with self._dml_ast_lock:
            self.plan_cache_stats.dml_ast_misses += 1
            self._dml_ast_cache[key] = stmt
            self._dml_ast_cache.move_to_end(key)
            while len(self._dml_ast_cache) > self._dml_ast_capacity:
                self._dml_ast_cache.popitem(last=False)

    def parse_dml_cached(self, sql: str) -> n.Statement:
        """Parse one statement, reusing/filling the DML AST cache.

        Used by server sessions and :meth:`execute` so that a repeated
        INSERT/DELETE/UPDATE text skips the parser entirely.
        """
        stmt = self._cached_dml(sql)
        if stmt is not None:
            return stmt
        stmt = parse_statement(sql)
        self._cache_dml(sql, stmt)
        return stmt

    # -- SQL entry points ---------------------------------------------------

    def execute(self, sql: str):
        """Parse and execute one SQL statement.

        Returns a :class:`ResultSet` for queries, an affected-row count
        for DML, a plan-tree string for ``EXPLAIN <query>``, and
        ``None`` for DDL.  SELECT statements go through the prepared
        plan cache, and INSERT/DELETE/UPDATE text through the parsed-AST
        cache: a repeated statement skips the parser (and, for SELECTs,
        the planner).
        """
        explained = _split_explain(sql)
        if explained is not None:
            analyze, inner = explained
            if analyze:
                return self.explain_analyze(inner)
            return self._explain_text(inner)
        cached_dml = self._cached_dml(sql)
        if cached_dml is not None:
            return self.execute_statement(cached_dml)
        prepared, stmt, _ = self._prepare_text(sql, required_by=None)
        if prepared is not None:
            return prepared.execute()
        self._cache_dml(sql, stmt)
        return self.execute_statement(stmt)

    def execute_script(self, sql: str) -> list:
        """Execute a ``;``-separated script; returns per-statement results.

        Script statements run through the AST path and deliberately
        bypass the text plan cache (the parser does not preserve
        per-statement source text to key it with); scripts are a setup
        convenience, not a hot path.
        """
        from ..sqlparser.parser import parse_script

        return [self.execute_statement(stmt) for stmt in parse_script(sql)]

    def execute_statement(self, stmt: n.Statement):
        if isinstance(stmt, n.SelectStatement):
            return self.query_ast(stmt.query)
        if isinstance(stmt, n.Explain):
            # AST entry point: no SQL text to key the cache with — plan
            # fresh and report the tree (the text entry point in
            # :meth:`execute` adds cache hit/miss information).
            plan = Planner(self.catalog).plan_query(stmt.query)
            if getattr(stmt, "analyze", False):
                return _run_explain_analyze(plan)
            return plan.explain()
        if isinstance(stmt, n.CreateTable):
            self.create_table_ast(stmt)
            return None
        if isinstance(stmt, n.CreateView):
            with self._ddl_lock:
                self.create_view(stmt.name, stmt.query)
                if self.ddl_listener is not None:
                    # user-issued views are WAL-logged as printed SQL;
                    # TINTIN's assertion views bypass this (they call
                    # create_view directly and are rebuilt by assertion
                    # replay instead)
                    from ..sqlparser.printer import print_query

                    self.ddl_listener(
                        "create_view",
                        name=stmt.name,
                        sql=print_query(stmt.query),
                    )
            return None
        if isinstance(stmt, n.CreateAssertion):
            raise ExecutionError(
                "CREATE ASSERTION must go through repro.core.Tintin — the "
                "engine itself does not implement assertions (that is the "
                "paper's point)"
            )
        if isinstance(stmt, n.DropTable):
            with self._ddl_lock:
                dropped = self.catalog.drop_table(stmt.name, stmt.if_exists)
                if dropped and self.ddl_listener is not None:
                    self.ddl_listener("drop_table", name=stmt.name)
            return None
        if isinstance(stmt, n.DropView):
            with self._ddl_lock:
                dropped_view = self.catalog.drop_view(
                    stmt.name, stmt.if_exists
                )
                if dropped_view and self.ddl_listener is not None:
                    self.ddl_listener("drop_view", name=stmt.name)
            return None
        if isinstance(stmt, n.Insert):
            return self._execute_insert(stmt)
        if isinstance(stmt, n.Delete):
            return self._execute_delete(stmt)
        if isinstance(stmt, n.Update):
            return self._execute_update(stmt)
        if isinstance(stmt, n.Truncate):
            return self.catalog.require_table(stmt.table).truncate()
        if isinstance(stmt, n.Call):
            args = [self._literal_value(a) for a in stmt.args]
            return self.call(stmt.name, *args)
        raise ExecutionError(f"cannot execute statement {type(stmt).__name__}")

    def query(
        self,
        sql: str,
        overlays: Optional[dict[str, TableOverlay]] = None,
    ) -> ResultSet:
        """Parse and run a SELECT/UNION, returning a ResultSet.

        Queries go through the prepared plan cache keyed on the SQL
        text: a repeated query skips the parser and planner entirely.
        ``overlays`` merges staged events into the named base tables
        for this execution only (see :meth:`PreparedStatement.execute`).
        """
        prepared, _, _ = self._prepare_text(sql, required_by="query()")
        return prepared.execute(overlays=overlays)

    def query_ast(
        self,
        query: n.Query,
        overlays: Optional[dict[str, TableOverlay]] = None,
    ) -> ResultSet:
        planner = Planner(self.catalog)
        plan = planner.plan_query(query)
        columns = planner.output_columns(query)
        return ResultSet(
            columns, list(plan.run(ctx=ExecutionContext(overlays)))
        )

    def explain(self, sql: str) -> str:
        """The physical plan for a query, as an indented tree, headed by
        a plan-cache status line (same output as ``EXPLAIN <query>``)."""
        return self._explain_text(sql)

    def explain_analyze(
        self,
        sql: str,
        overlays: Optional[dict[str, TableOverlay]] = None,
    ) -> str:
        """Execute a query and return its plan tree annotated with
        actual per-node row counts and inclusive timings (same output
        as ``EXPLAIN ANALYZE <query>``).  Goes through the prepared
        plan cache like a normal query."""
        prepared, _, _ = self._prepare_text(sql, required_by="EXPLAIN ANALYZE")
        state = prepared._validated_state()
        return _run_explain_analyze(state.plan, overlays)

    def _explain_text(self, sql: str) -> str:
        """EXPLAIN body: cache status header + the plan tree.

        The probed statement is planned (and cached) if absent, so an
        EXPLAIN followed by the query itself reuses the compiled plan.
        """
        stats = self.plan_cache_stats
        prepared, _, was_hit = self._prepare_text(sql, required_by="EXPLAIN")
        if was_hit:
            status = "hit" if prepared.is_valid() else "hit (stale, re-planning)"
        elif self.plan_cache_enabled:
            status = "miss"
        else:
            status = "disabled"
        header = (
            f"-- plan cache: {status} (catalog v{self.catalog.version}, "
            f"hits={stats.hits} misses={stats.misses} "
            f"invalidations={stats.invalidations})"
        )
        return header + "\n" + prepared.explain()

    # -- DDL -------------------------------------------------------------------

    def create_table_ast(self, stmt: n.CreateTable, namespace: str = "main") -> Table:
        columns = [
            Column(
                c.name,
                resolve_type(c.type_name, c.type_params),
                c.not_null,
            )
            for c in stmt.columns
        ]
        primary_key = stmt.primary_key
        inline_pk = [c.name for c in stmt.columns if c.primary_key]
        if inline_pk:
            if primary_key:
                raise SchemaError(
                    f"table {stmt.name!r}: both inline and table-level PRIMARY KEY"
                )
            if len(inline_pk) > 1:
                raise SchemaError(
                    f"table {stmt.name!r}: multiple inline PRIMARY KEY columns"
                )
            primary_key = tuple(inline_pk)
        from .schema import ForeignKey

        schema = TableSchema(
            stmt.name,
            columns,
            primary_key,
            tuple(
                ForeignKey(fk.columns, fk.ref_table, fk.ref_columns)
                for fk in stmt.foreign_keys
            ),
            stmt.uniques,
        )
        validate_foreign_keys(self.catalog, schema)
        with self._ddl_lock:
            table = self.catalog.add_table(schema, namespace)
            if self.ddl_listener is not None:
                self.ddl_listener(
                    "create_table", schema=schema, namespace=namespace
                )
        return table

    def create_table(self, sql: str, namespace: str = "main") -> Table:
        stmt = parse_statement(sql)
        if not isinstance(stmt, n.CreateTable):
            raise ExecutionError("create_table() requires CREATE TABLE")
        return self.create_table_ast(stmt, namespace)

    def create_view(self, name: str, query: n.Query) -> View:
        planner = Planner(self.catalog)
        columns = tuple(planner.output_columns(query))
        # plan now to validate references eagerly
        planner.plan_query(query)
        view = View(name, query, columns)
        self.catalog.add_view(view)
        return view

    # -- transactions --------------------------------------------------------------

    def begin(self) -> None:
        self.transactions.begin()

    def commit(self) -> int:
        return self.transactions.commit()

    def rollback(self) -> int:
        return self.transactions.rollback()

    # -- DML: inserts -----------------------------------------------------------------

    def resolve_insert_rows(self, stmt: n.Insert) -> tuple[Table, list[tuple]]:
        """Evaluate an INSERT's source rows (VALUES or SELECT) without
        applying them.  Shared by the trigger-dispatching execution path
        and by server sessions, which stage the rows privately."""
        table = self.catalog.require_table(stmt.table)
        if stmt.query is not None:
            source = self.query_ast(stmt.query)
            raw_rows: list[tuple] = list(source.rows)
        else:
            raw_rows = [
                tuple(self._literal_value(value) for value in row)
                for row in stmt.rows
            ]
        rows = [self._arrange_columns(table, stmt.columns, r) for r in raw_rows]
        return table, rows

    def _execute_insert(self, stmt: n.Insert) -> int:
        table, rows = self.resolve_insert_rows(stmt)
        return self.insert_rows(table.name, rows)

    def _arrange_columns(
        self, table: Table, columns: Sequence[str], values: tuple
    ) -> tuple:
        if not columns:
            return values
        if len(columns) != len(values):
            raise ExecutionError(
                f"INSERT into {table.name!r}: {len(columns)} columns but "
                f"{len(values)} values"
            )
        positions = table.schema.key_positions(tuple(columns))
        if len(set(positions)) != len(positions):
            raise ExecutionError(
                f"INSERT into {table.name!r}: duplicate column in column list"
            )
        full = [None] * table.schema.arity
        for position, value in zip(positions, values):
            full[position] = value
        return tuple(full)

    def insert_rows(
        self,
        table_name: str,
        rows: Iterable[tuple],
        bypass_triggers: bool = False,
    ) -> int:
        """Insert rows, dispatching to INSTEAD OF triggers when enabled."""
        table = self.catalog.require_table(table_name)
        validated = [table.validate_row(tuple(row)) for row in rows]
        if not validated:
            return 0
        if not bypass_triggers:
            triggers = self.catalog.active_triggers_for(table.name, "insert")
            if triggers:
                for trigger in triggers:
                    trigger.action(self, table.name, validated)
                return len(validated)
        count = 0
        for row in validated:
            self._physical_insert(table, row)
            count += 1
        return count

    def _physical_insert(self, table: Table, row: tuple) -> None:
        self.checker.check_not_null(table, row)
        self.checker.check_fk_insert(table, row)
        rowid = table.insert(row)
        txn = self.transactions.current
        if txn is not None and txn.active:
            txn.record_insert(table, row, rowid)

    # -- DML: deletes --------------------------------------------------------------------

    def resolve_delete_rows(self, stmt: n.Delete) -> tuple[Table, list[tuple]]:
        """Evaluate a DELETE's victim rows (WHERE against the base
        table) without applying the deletion."""
        table = self.catalog.require_table(stmt.table)
        victims = self._matching_rows(table, stmt.alias, stmt.where)
        return table, victims

    def _execute_delete(self, stmt: n.Delete) -> int:
        table, victims = self.resolve_delete_rows(stmt)
        return self.delete_rows(table.name, victims)

    def delete_rows(
        self,
        table_name: str,
        rows: Iterable[tuple],
        bypass_triggers: bool = False,
    ) -> int:
        """Delete the given rows, dispatching to INSTEAD OF triggers."""
        table = self.catalog.require_table(table_name)
        victims = [tuple(row) for row in rows]
        if not victims:
            return 0
        if not bypass_triggers:
            triggers = self.catalog.active_triggers_for(table.name, "delete")
            if triggers:
                for trigger in triggers:
                    trigger.action(self, table.name, victims)
                return len(victims)
        count = 0
        for row in victims:
            if self._physical_delete(table, row):
                count += 1
        return count

    def _physical_delete(self, table: Table, row: tuple) -> bool:
        rowid = table.find_rowid(row)
        if rowid is None:
            return False
        self.checker.check_fk_delete(table, row)
        table.delete_rowid(rowid)
        txn = self.transactions.current
        if txn is not None and txn.active:
            txn.record_delete(table, row, rowid)
        return True

    # -- DML: updates -----------------------------------------------------------------------

    def resolve_update_rows(
        self, stmt: n.Update
    ) -> tuple[Table, list[tuple], list[tuple]]:
        """Evaluate an UPDATE's (old, new) row pairs without applying.

        TINTIN models an update as a set of tuple deletions plus
        insertions; callers stage or apply the two lists accordingly.
        """
        table = self.catalog.require_table(stmt.table)
        binding = stmt.alias or table.name
        scope = Scope([(binding, c) for c in table.schema.column_names])
        assignments: dict[int, object] = {}
        for column, expr in stmt.assignments:
            position = table.schema.column_index(column)
            if position in assignments:
                raise ExecutionError(
                    f"UPDATE {table.name!r} assigns column {column!r} twice"
                )
            assignments[position] = compile_expr(expr, scope)
        old_rows = self._matching_rows(table, stmt.alias, stmt.where)
        new_rows = []
        for row in old_rows:
            values = list(row)
            for position, fn in assignments.items():
                values[position] = fn(row, {})
            new_rows.append(table.validate_row(tuple(values)))
        return table, old_rows, new_rows

    def _execute_update(self, stmt: n.Update) -> int:
        """UPDATE is executed as delete-old + insert-new.

        This matches TINTIN's model where an update is a set of tuple
        insertions and deletions (the paper handles exactly those two
        event kinds).
        """
        table, old_rows, new_rows = self.resolve_update_rows(stmt)
        if not old_rows:
            return 0
        has_triggers = bool(
            self.catalog.active_triggers_for(table.name, "insert")
            or self.catalog.active_triggers_for(table.name, "delete")
        )
        if has_triggers:
            # an update is a set of deletions plus insertions — exactly the
            # event model TINTIN captures
            self.delete_rows(table.name, old_rows)
            self.insert_rows(table.name, new_rows)
        else:
            for old_row, new_row in zip(old_rows, new_rows):
                self._physical_update(table, old_row, new_row)
        return len(old_rows)

    def _physical_update(self, table: Table, old_row: tuple, new_row: tuple) -> None:
        if old_row == new_row:
            return
        self.checker.check_not_null(table, new_row)
        self.checker.check_fk_insert(table, new_row)
        self.checker.check_fk_update(table, old_row, new_row)
        rowid = table.find_rowid(old_row)
        if rowid is None:
            raise ExecutionError(
                f"row disappeared during UPDATE of {table.name!r}"
            )
        table.delete_rowid(rowid)
        try:
            new_rowid = table.insert(new_row)
        except ConstraintViolation:
            table.insert(old_row)
            raise
        txn = self.transactions.current
        if txn is not None and txn.active:
            txn.record_delete(table, old_row, rowid)
            txn.record_insert(table, new_row, new_rowid)

    def _matching_rows(
        self, table: Table, alias: Optional[str], where: Optional[n.Expr]
    ) -> list[tuple]:
        binding = alias or table.name
        if where is None:
            return table.rows_snapshot()
        select = n.Select(
            items=(n.Star(),),
            from_items=(n.TableRef(table.name, alias),),
            where=where,
        )
        return list(self.query_ast(select).rows)

    # -- batch apply (used by safeCommit) ---------------------------------------------------

    def apply_batch(
        self,
        inserts: dict[str, list[tuple]],
        deletes: dict[str, list[tuple]],
    ) -> int:
        """Apply a batch of physical inserts and deletes atomically.

        Foreign keys are checked in **deferred** mode: deletes run first
        (so delete+reinsert of the same key — a captured UPDATE — works),
        then inserts, and referential integrity is verified against the
        final state.  Any batch whose *net effect* is FK-consistent
        applies cleanly.  Triggers are bypassed (this is the engine-level
        primitive that ``safeCommit`` calls with triggers disabled).  On
        any constraint violation the whole batch is rolled back and the
        violation re-raised.
        """
        own_transaction = not self.transactions.in_transaction
        if own_transaction:
            self.begin()
        changed = 0
        deleted_rows: list[tuple[Table, tuple]] = []
        inserted_rows: list[tuple[Table, tuple]] = []
        try:
            delete_names = [name for name, rows in deletes.items() if rows]
            for name in reversed(self.checker.fk_topological_order(delete_names)):
                table = self.catalog.require_table(name)
                for row in deletes[name]:
                    validated = table.validate_row(tuple(row))
                    if self._physical_delete_deferred(table, validated):
                        deleted_rows.append((table, validated))
                        changed += 1
            insert_names = [name for name, rows in inserts.items() if rows]
            for name in self.checker.fk_topological_order(insert_names):
                table = self.catalog.require_table(name)
                for row in inserts[name]:
                    validated = table.validate_row(tuple(row))
                    self._physical_insert_deferred(table, validated)
                    inserted_rows.append((table, validated))
                    changed += 1
            # deferred referential-integrity verification on the final state
            for table, row in inserted_rows:
                self.checker.check_fk_insert(table, row)
            for table, row in deleted_rows:
                self.checker.check_fk_after_delete(table, row)
        except BaseException:
            # any failure — constraint or otherwise (e.g. a table
            # dropped mid-batch) — must leave no half-applied rows or
            # dangling open transaction behind
            if own_transaction:
                self.rollback()
            raise
        if own_transaction:
            self.commit()
        return changed

    def _physical_insert_deferred(self, table: Table, row: tuple) -> None:
        """Insert without FK checks (NOT NULL and unique keys still apply)."""
        self.checker.check_not_null(table, row)
        rowid = table.insert(row)
        txn = self.transactions.current
        if txn is not None and txn.active:
            txn.record_insert(table, row, rowid)

    def _physical_delete_deferred(self, table: Table, row: tuple) -> bool:
        """Delete without FK checks."""
        rowid = table.find_rowid(row)
        if rowid is None:
            return False
        table.delete_rowid(rowid)
        txn = self.transactions.current
        if txn is not None and txn.active:
            txn.record_delete(table, row, rowid)
        return True

    # -- triggers and procedures ---------------------------------------------------------------

    def create_trigger(
        self, name: str, table: str, event: str, action
    ) -> Trigger:
        trigger = Trigger(name, table, event, action)
        self.catalog.add_trigger(trigger)
        return trigger

    def enable_triggers(self, table: str) -> None:
        self.catalog.set_triggers_enabled(table, True)

    def disable_triggers(self, table: str) -> None:
        self.catalog.set_triggers_enabled(table, False)

    def create_procedure(self, name: str, body, description: str = "") -> Procedure:
        procedure = Procedure(name, body, description)
        self.catalog.replace_procedure(procedure)
        return procedure

    def call(self, name: str, *args):
        """Invoke a stored procedure."""
        return self.catalog.get_procedure(name).body(self, *args)

    # -- helpers -------------------------------------------------------------------------------

    @staticmethod
    def _literal_value(expr: n.Expr):
        """Evaluate a row-less expression (INSERT values, CALL args)."""
        fn = compile_expr(expr, Scope([]))
        return fn((), {})

    def table(self, name: str) -> Table:
        """Direct access to a table's storage (tests and tooling)."""
        return self.catalog.require_table(name)

    def data_version(self, namespace: Optional[str] = "main") -> int:
        """Aggregate data-version stamp over the catalog's tables.

        Monotonically increasing with every row mutation; two equal
        readings prove no base data changed in between.  Session reads
        — including read-your-writes with staged events — go through
        the overlay-merge path and never perturb the stamps.
        """
        return sum(t.data_version for t in self.catalog.tables(namespace))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name!r}, {len(self.catalog.tables())} tables)"


def _split_explain(sql: str) -> Optional[tuple[bool, str]]:
    """If ``sql`` is ``EXPLAIN [ANALYZE] <query>``, return
    ``(analyze, <query> text)``.

    Detected textually (before parsing) so the inner text keys the plan
    cache identically to running the query directly — EXPLAIN then
    reports the very entry the query would use.
    """
    stripped = sql.lstrip()
    head = stripped[:7]
    if head.upper() != "EXPLAIN":
        return None
    rest = stripped[7:]
    if rest and not rest[0].isspace() and rest[0] != "(":
        return None  # an identifier like EXPLAINX
    rest = rest.strip()
    analyze = False
    head = rest[:7]
    if head.upper() == "ANALYZE":
        tail = rest[7:]
        if not tail or tail[0].isspace() or tail[0] == "(":
            analyze = True
            rest = tail.strip()
    return analyze, rest.rstrip(";")


def _run_explain_analyze(
    plan: PlanNode, overlays: Optional[dict[str, TableOverlay]] = None
) -> str:
    """Execute ``plan`` under a fresh stats collector and render the
    annotated tree plus a one-line execution summary."""
    from ..obs.profiler import PlanStatsCollector

    collector = PlanStatsCollector()
    ctx = ExecutionContext(overlays, collector=collector)
    start = perf_counter()
    rows = sum(1 for _ in plan.run(ctx=ctx))
    elapsed = perf_counter() - start
    return (
        collector.annotate(plan)
        + f"\n-- {rows} rows in {elapsed:.6f}s"
        + f" ({collector.rows_scanned()} rows scanned)"
    )
