"""The :class:`Database` facade: SQL execution against the catalog.

This is the engine's public entry point.  It parses and executes SQL
text (or pre-parsed ASTs), dispatches DML through INSTEAD OF triggers,
enforces constraints, and exposes the transactional batch-apply that
TINTIN's ``safeCommit`` uses.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..errors import (
    CatalogError,
    ConstraintViolation,
    ExecutionError,
    SchemaError,
)
from ..sqlparser import nodes as n
from ..sqlparser.parser import parse_statement
from .catalog import Catalog, Procedure, Trigger, View
from .constraints import ConstraintChecker, validate_foreign_keys
from .expressions import Scope, compile_expr
from .planner import Planner
from .schema import Column, TableSchema
from .storage import Table
from .transactions import TransactionManager
from .types import resolve_type


class ResultSet:
    """An executed query result: column names plus materialized rows."""

    def __init__(self, columns: list[str], rows: list[tuple]):
        self.columns = columns
        self.rows = rows

    @property
    def is_empty(self) -> bool:
        return not self.rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def first(self) -> Optional[tuple]:
        return self.rows[0] if self.rows else None

    def column(self, name: str) -> list:
        """All values of one output column."""
        try:
            index = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(f"result has no column {name!r}") from None
        return [row[index] for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSet({self.columns}, {len(self.rows)} rows)"


class Database:
    """An in-memory relational database with SQL Server-style features.

    The subset implemented is exactly what the TINTIN reproduction
    needs: typed tables with PK/UNIQUE/NOT NULL/FK constraints, views,
    INSTEAD OF triggers, stored procedures, transactions, and a planner
    whose incremental-friendly access paths mirror what a production
    optimizer would do with the paper's generated queries.
    """

    def __init__(self, name: str = "db"):
        self.name = name
        self.catalog = Catalog()
        self.checker = ConstraintChecker(self.catalog)
        self.transactions = TransactionManager()

    # -- SQL entry points ---------------------------------------------------

    def execute(self, sql: str):
        """Parse and execute one SQL statement.

        Returns a :class:`ResultSet` for queries, an affected-row count
        for DML, and ``None`` for DDL.
        """
        return self.execute_statement(parse_statement(sql))

    def execute_script(self, sql: str) -> list:
        """Execute a ``;``-separated script; returns per-statement results."""
        from ..sqlparser.parser import parse_script

        return [self.execute_statement(stmt) for stmt in parse_script(sql)]

    def execute_statement(self, stmt: n.Statement):
        if isinstance(stmt, n.SelectStatement):
            return self.query_ast(stmt.query)
        if isinstance(stmt, n.CreateTable):
            self.create_table_ast(stmt)
            return None
        if isinstance(stmt, n.CreateView):
            self.create_view(stmt.name, stmt.query)
            return None
        if isinstance(stmt, n.CreateAssertion):
            raise ExecutionError(
                "CREATE ASSERTION must go through repro.core.Tintin — the "
                "engine itself does not implement assertions (that is the "
                "paper's point)"
            )
        if isinstance(stmt, n.DropTable):
            self.catalog.drop_table(stmt.name, stmt.if_exists)
            return None
        if isinstance(stmt, n.DropView):
            self.catalog.drop_view(stmt.name, stmt.if_exists)
            return None
        if isinstance(stmt, n.Insert):
            return self._execute_insert(stmt)
        if isinstance(stmt, n.Delete):
            return self._execute_delete(stmt)
        if isinstance(stmt, n.Update):
            return self._execute_update(stmt)
        if isinstance(stmt, n.Truncate):
            return self.catalog.require_table(stmt.table).truncate()
        if isinstance(stmt, n.Call):
            args = [self._literal_value(a) for a in stmt.args]
            return self.call(stmt.name, *args)
        raise ExecutionError(f"cannot execute statement {type(stmt).__name__}")

    def query(self, sql: str) -> ResultSet:
        """Parse and run a SELECT/UNION, returning a ResultSet."""
        stmt = parse_statement(sql)
        if not isinstance(stmt, n.SelectStatement):
            raise ExecutionError("query() requires a SELECT statement")
        return self.query_ast(stmt.query)

    def query_ast(self, query: n.Query) -> ResultSet:
        planner = Planner(self.catalog)
        plan = planner.plan_query(query)
        columns = planner.output_columns(query)
        return ResultSet(columns, list(plan.execute({})))

    def explain(self, sql: str) -> str:
        """The physical plan for a query, as an indented tree."""
        stmt = parse_statement(sql)
        if not isinstance(stmt, n.SelectStatement):
            raise ExecutionError("explain() requires a SELECT statement")
        return Planner(self.catalog).plan_query(stmt.query).explain()

    # -- DDL -------------------------------------------------------------------

    def create_table_ast(self, stmt: n.CreateTable, namespace: str = "main") -> Table:
        columns = [
            Column(
                c.name,
                resolve_type(c.type_name, c.type_params),
                c.not_null,
            )
            for c in stmt.columns
        ]
        primary_key = stmt.primary_key
        inline_pk = [c.name for c in stmt.columns if c.primary_key]
        if inline_pk:
            if primary_key:
                raise SchemaError(
                    f"table {stmt.name!r}: both inline and table-level PRIMARY KEY"
                )
            if len(inline_pk) > 1:
                raise SchemaError(
                    f"table {stmt.name!r}: multiple inline PRIMARY KEY columns"
                )
            primary_key = tuple(inline_pk)
        from .schema import ForeignKey

        schema = TableSchema(
            stmt.name,
            columns,
            primary_key,
            tuple(
                ForeignKey(fk.columns, fk.ref_table, fk.ref_columns)
                for fk in stmt.foreign_keys
            ),
            stmt.uniques,
        )
        validate_foreign_keys(self.catalog, schema)
        return self.catalog.add_table(schema, namespace)

    def create_table(self, sql: str, namespace: str = "main") -> Table:
        stmt = parse_statement(sql)
        if not isinstance(stmt, n.CreateTable):
            raise ExecutionError("create_table() requires CREATE TABLE")
        return self.create_table_ast(stmt, namespace)

    def create_view(self, name: str, query: n.Query) -> View:
        planner = Planner(self.catalog)
        columns = tuple(planner.output_columns(query))
        # plan now to validate references eagerly
        planner.plan_query(query)
        view = View(name, query, columns)
        self.catalog.add_view(view)
        return view

    # -- transactions --------------------------------------------------------------

    def begin(self) -> None:
        self.transactions.begin()

    def commit(self) -> int:
        return self.transactions.commit()

    def rollback(self) -> int:
        return self.transactions.rollback()

    # -- DML: inserts -----------------------------------------------------------------

    def _execute_insert(self, stmt: n.Insert) -> int:
        table = self.catalog.require_table(stmt.table)
        if stmt.query is not None:
            source = self.query_ast(stmt.query)
            raw_rows: list[tuple] = list(source.rows)
        else:
            raw_rows = [
                tuple(self._literal_value(value) for value in row)
                for row in stmt.rows
            ]
        rows = [self._arrange_columns(table, stmt.columns, r) for r in raw_rows]
        return self.insert_rows(table.name, rows)

    def _arrange_columns(
        self, table: Table, columns: Sequence[str], values: tuple
    ) -> tuple:
        if not columns:
            return values
        if len(columns) != len(values):
            raise ExecutionError(
                f"INSERT into {table.name!r}: {len(columns)} columns but "
                f"{len(values)} values"
            )
        positions = table.schema.key_positions(tuple(columns))
        if len(set(positions)) != len(positions):
            raise ExecutionError(
                f"INSERT into {table.name!r}: duplicate column in column list"
            )
        full = [None] * table.schema.arity
        for position, value in zip(positions, values):
            full[position] = value
        return tuple(full)

    def insert_rows(
        self,
        table_name: str,
        rows: Iterable[tuple],
        bypass_triggers: bool = False,
    ) -> int:
        """Insert rows, dispatching to INSTEAD OF triggers when enabled."""
        table = self.catalog.require_table(table_name)
        validated = [table.validate_row(tuple(row)) for row in rows]
        if not validated:
            return 0
        if not bypass_triggers:
            triggers = self.catalog.active_triggers_for(table.name, "insert")
            if triggers:
                for trigger in triggers:
                    trigger.action(self, table.name, validated)
                return len(validated)
        count = 0
        for row in validated:
            self._physical_insert(table, row)
            count += 1
        return count

    def _physical_insert(self, table: Table, row: tuple) -> None:
        self.checker.check_not_null(table, row)
        self.checker.check_fk_insert(table, row)
        rowid = table.insert(row)
        txn = self.transactions.current
        if txn is not None and txn.active:
            txn.record_insert(table, row, rowid)

    # -- DML: deletes --------------------------------------------------------------------

    def _execute_delete(self, stmt: n.Delete) -> int:
        table = self.catalog.require_table(stmt.table)
        victims = self._matching_rows(table, stmt.alias, stmt.where)
        return self.delete_rows(table.name, victims)

    def delete_rows(
        self,
        table_name: str,
        rows: Iterable[tuple],
        bypass_triggers: bool = False,
    ) -> int:
        """Delete the given rows, dispatching to INSTEAD OF triggers."""
        table = self.catalog.require_table(table_name)
        victims = [tuple(row) for row in rows]
        if not victims:
            return 0
        if not bypass_triggers:
            triggers = self.catalog.active_triggers_for(table.name, "delete")
            if triggers:
                for trigger in triggers:
                    trigger.action(self, table.name, victims)
                return len(victims)
        count = 0
        for row in victims:
            if self._physical_delete(table, row):
                count += 1
        return count

    def _physical_delete(self, table: Table, row: tuple) -> bool:
        rowid = table.find_rowid(row)
        if rowid is None:
            return False
        self.checker.check_fk_delete(table, row)
        table.delete_rowid(rowid)
        txn = self.transactions.current
        if txn is not None and txn.active:
            txn.record_delete(table, row, rowid)
        return True

    # -- DML: updates -----------------------------------------------------------------------

    def _execute_update(self, stmt: n.Update) -> int:
        """UPDATE is executed as delete-old + insert-new.

        This matches TINTIN's model where an update is a set of tuple
        insertions and deletions (the paper handles exactly those two
        event kinds).
        """
        table = self.catalog.require_table(stmt.table)
        binding = stmt.alias or table.name
        scope = Scope([(binding, c) for c in table.schema.column_names])
        assignments: dict[int, object] = {}
        for column, expr in stmt.assignments:
            position = table.schema.column_index(column)
            if position in assignments:
                raise ExecutionError(
                    f"UPDATE {table.name!r} assigns column {column!r} twice"
                )
            assignments[position] = compile_expr(expr, scope)
        old_rows = self._matching_rows(table, stmt.alias, stmt.where)
        if not old_rows:
            return 0
        new_rows = []
        for row in old_rows:
            values = list(row)
            for position, fn in assignments.items():
                values[position] = fn(row, {})
            new_rows.append(table.validate_row(tuple(values)))
        has_triggers = bool(
            self.catalog.active_triggers_for(table.name, "insert")
            or self.catalog.active_triggers_for(table.name, "delete")
        )
        if has_triggers:
            # an update is a set of deletions plus insertions — exactly the
            # event model TINTIN captures
            self.delete_rows(table.name, old_rows)
            self.insert_rows(table.name, new_rows)
        else:
            for old_row, new_row in zip(old_rows, new_rows):
                self._physical_update(table, old_row, new_row)
        return len(old_rows)

    def _physical_update(self, table: Table, old_row: tuple, new_row: tuple) -> None:
        if old_row == new_row:
            return
        self.checker.check_not_null(table, new_row)
        self.checker.check_fk_insert(table, new_row)
        self.checker.check_fk_update(table, old_row, new_row)
        rowid = table.find_rowid(old_row)
        if rowid is None:
            raise ExecutionError(
                f"row disappeared during UPDATE of {table.name!r}"
            )
        table.delete_rowid(rowid)
        try:
            new_rowid = table.insert(new_row)
        except ConstraintViolation:
            table.insert(old_row)
            raise
        txn = self.transactions.current
        if txn is not None and txn.active:
            txn.record_delete(table, old_row, rowid)
            txn.record_insert(table, new_row, new_rowid)

    def _matching_rows(
        self, table: Table, alias: Optional[str], where: Optional[n.Expr]
    ) -> list[tuple]:
        binding = alias or table.name
        if where is None:
            return table.rows_snapshot()
        select = n.Select(
            items=(n.Star(),),
            from_items=(n.TableRef(table.name, alias),),
            where=where,
        )
        return list(self.query_ast(select).rows)

    # -- batch apply (used by safeCommit) ---------------------------------------------------

    def apply_batch(
        self,
        inserts: dict[str, list[tuple]],
        deletes: dict[str, list[tuple]],
    ) -> int:
        """Apply a batch of physical inserts and deletes atomically.

        Foreign keys are checked in **deferred** mode: deletes run first
        (so delete+reinsert of the same key — a captured UPDATE — works),
        then inserts, and referential integrity is verified against the
        final state.  Any batch whose *net effect* is FK-consistent
        applies cleanly.  Triggers are bypassed (this is the engine-level
        primitive that ``safeCommit`` calls with triggers disabled).  On
        any constraint violation the whole batch is rolled back and the
        violation re-raised.
        """
        own_transaction = not self.transactions.in_transaction
        if own_transaction:
            self.begin()
        changed = 0
        deleted_rows: list[tuple[Table, tuple]] = []
        inserted_rows: list[tuple[Table, tuple]] = []
        try:
            delete_names = [name for name, rows in deletes.items() if rows]
            for name in reversed(self.checker.fk_topological_order(delete_names)):
                table = self.catalog.require_table(name)
                for row in deletes[name]:
                    validated = table.validate_row(tuple(row))
                    if self._physical_delete_deferred(table, validated):
                        deleted_rows.append((table, validated))
                        changed += 1
            insert_names = [name for name, rows in inserts.items() if rows]
            for name in self.checker.fk_topological_order(insert_names):
                table = self.catalog.require_table(name)
                for row in inserts[name]:
                    validated = table.validate_row(tuple(row))
                    self._physical_insert_deferred(table, validated)
                    inserted_rows.append((table, validated))
                    changed += 1
            # deferred referential-integrity verification on the final state
            for table, row in inserted_rows:
                self.checker.check_fk_insert(table, row)
            for table, row in deleted_rows:
                self.checker.check_fk_after_delete(table, row)
        except ConstraintViolation:
            if own_transaction:
                self.rollback()
            raise
        if own_transaction:
            self.commit()
        return changed

    def _physical_insert_deferred(self, table: Table, row: tuple) -> None:
        """Insert without FK checks (NOT NULL and unique keys still apply)."""
        self.checker.check_not_null(table, row)
        rowid = table.insert(row)
        txn = self.transactions.current
        if txn is not None and txn.active:
            txn.record_insert(table, row, rowid)

    def _physical_delete_deferred(self, table: Table, row: tuple) -> bool:
        """Delete without FK checks."""
        rowid = table.find_rowid(row)
        if rowid is None:
            return False
        table.delete_rowid(rowid)
        txn = self.transactions.current
        if txn is not None and txn.active:
            txn.record_delete(table, row, rowid)
        return True

    # -- triggers and procedures ---------------------------------------------------------------

    def create_trigger(
        self, name: str, table: str, event: str, action
    ) -> Trigger:
        trigger = Trigger(name, table, event, action)
        self.catalog.add_trigger(trigger)
        return trigger

    def enable_triggers(self, table: str) -> None:
        self.catalog.set_triggers_enabled(table, True)

    def disable_triggers(self, table: str) -> None:
        self.catalog.set_triggers_enabled(table, False)

    def create_procedure(self, name: str, body, description: str = "") -> Procedure:
        procedure = Procedure(name, body, description)
        self.catalog.replace_procedure(procedure)
        return procedure

    def call(self, name: str, *args):
        """Invoke a stored procedure."""
        return self.catalog.get_procedure(name).body(self, *args)

    # -- helpers -------------------------------------------------------------------------------

    @staticmethod
    def _literal_value(expr: n.Expr):
        """Evaluate a row-less expression (INSERT values, CALL args)."""
        fn = compile_expr(expr, Scope([]))
        return fn((), {})

    def table(self, name: str) -> Table:
        """Direct access to a table's storage (tests and tooling)."""
        return self.catalog.require_table(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name!r}, {len(self.catalog.tables())} tables)"
