"""Transaction support: an undo log over row-level changes.

The engine uses statement-level immediate constraint checking, so a
transaction only needs to remember which rows were inserted and deleted
in order to roll them back.  TINTIN's ``safeCommit`` wraps the batch
apply in one of these transactions: if a constraint trips mid-batch the
whole update is undone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from ..errors import TransactionError
from .storage import Table


@dataclass
class _UndoRecord:
    kind: Literal["insert", "delete"]
    table: Table
    row: tuple
    rowid: int


class Transaction:
    """One open transaction: an ordered undo log."""

    def __init__(self):
        self._log: list[_UndoRecord] = []
        self.active = True

    def record_insert(self, table: Table, row: tuple, rowid: int) -> None:
        self._log.append(_UndoRecord("insert", table, row, rowid))

    def record_delete(self, table: Table, row: tuple, rowid: int) -> None:
        self._log.append(_UndoRecord("delete", table, row, rowid))

    @property
    def change_count(self) -> int:
        return len(self._log)

    def rollback(self) -> int:
        """Undo every logged change in reverse order; returns the count."""
        count = len(self._log)
        for record in reversed(self._log):
            if record.kind == "insert":
                # the row may have moved; delete by identity when possible
                try:
                    record.table.delete_rowid(record.rowid)
                except KeyError:
                    record.table.delete_row(record.row)
            else:
                record.table.insert(record.row)
        self._log.clear()
        self.active = False
        return count

    def commit(self) -> int:
        count = len(self._log)
        self._log.clear()
        self.active = False
        return count


class TransactionManager:
    """Tracks one agent's (single) open transaction.

    A database owns a default manager; each server session owns its own
    and binds it to the committing thread via
    :meth:`repro.minidb.database.Database.transaction_scope`, so undo
    logs stay attributed to the session whose update is being applied.
    """

    def __init__(self):
        self._current: Transaction | None = None

    @property
    def current(self) -> Transaction | None:
        return self._current

    @property
    def in_transaction(self) -> bool:
        return self._current is not None and self._current.active

    def begin(self) -> Transaction:
        if self.in_transaction:
            raise TransactionError("a transaction is already open")
        self._current = Transaction()
        return self._current

    def commit(self) -> int:
        if not self.in_transaction:
            raise TransactionError("no open transaction to commit")
        count = self._current.commit()
        self._current = None
        return count

    def rollback(self) -> int:
        if not self.in_transaction:
            raise TransactionError("no open transaction to roll back")
        count = self._current.rollback()
        self._current = None
        return count
