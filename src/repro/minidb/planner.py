"""Query planner: AST -> physical plan.

Planning strategy, tuned for TINTIN's workload shape (tiny event tables
joined against large indexed base tables):

1. **Pushdown** — single-binding WHERE conjuncts move onto their scan.
2. **Greedy equi-join ordering** — start from the smallest estimated
   relation and repeatedly attach the smallest connected one.  When the
   accumulated stream is much smaller than the next base table, the
   planner emits an :class:`~repro.minidb.plan.IndexJoin` that probes the
   table's hash index instead of materializing it — this is what makes
   the generated incremental views touch only update-adjacent data.
3. **Subquery probes** — ``[NOT] EXISTS`` / ``[NOT] IN`` compile into
   probe closures, not join operators.  A probe over a single base table
   with equi-correlation becomes an index probe; anything else falls
   back to a per-call subplan execution memoized on its correlation
   values (so uncorrelated subqueries run exactly once).

Plans are **reusable**: all per-execution state (the memo tables of the
generic subquery probes) lives in an
:class:`~repro.minidb.plan.ExecutionContext` threaded through the
``params`` dict, so a compiled plan may be executed any number of times
— this is what the prepared-statement cache in
:mod:`repro.minidb.database` builds on.  The planner records every base
table it resolves in :attr:`Planner.tables_used` together with its row
count at plan time, so the cache can re-plan when table sizes drift far
from what the greedy join ordering assumed.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..errors import CatalogError, ExecutionError, SchemaError
from ..sqlparser import nodes as n
from .expressions import Compiled, Scope, compile_expr, sql_not, sql_or
from .plan import (
    Aggregate,
    DeltaSeed,
    Distinct,
    Filter,
    HashJoin,
    IndexJoin,
    NestedLoopCross,
    PlanNode,
    Project,
    SeqScan,
    UnionAll,
    UnionDistinct,
    aggregate_value,
    context_memo,
    probe_table,
    scan_table,
)
from .storage import Table

#: Below this ratio of outer-estimate to table size the planner prefers
#: probing the table's index over materializing it in a hash join.
_INDEX_JOIN_RATIO = 0.25

_MISSING = object()


class Rename(PlanNode):
    """Expose a subplan's output columns under a new binding name.

    Used for views and subselect-as-relation: the underlying plan keeps
    its own scope; this wrapper presents ``(binding, output_column)``.
    """

    def __init__(self, child: PlanNode, binding: str, columns: list[str]):
        if len(columns) != len(child.scope.entries):
            raise ExecutionError(
                f"rename of {binding!r}: {len(columns)} names for "
                f"{len(child.scope.entries)} columns"
            )
        self.child = child
        self.binding = binding
        self.scope = Scope([(binding, c) for c in columns], outer=child.scope.outer)
        self.estimate = child.estimate

    def _execute(self, params: dict) -> Iterator[tuple]:
        return self.child.execute(params)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Rename({self.binding})"


class _Relation:
    """A FROM-clause relation during planning.

    Estimates are read off the (pushdown-filtered) plan nodes built in
    ``_join_relations`` — plain attributes, so the greedy join-ordering
    loops never recompute them per access.
    """

    def __init__(self, binding: str, plan: PlanNode, table: Optional[Table]):
        self.binding = binding.lower()
        self.plan = plan
        #: set when the relation is a bare base table (IndexJoin candidate)
        self.table = table
        self.pushdown: list[n.Expr] = []


class Planner:
    """Plans queries against a catalog (tables + views)."""

    def __init__(self, catalog):
        self.catalog = catalog
        #: normalized base-table name -> row count when the plan was
        #: built; consumed by the prepared-plan cache for drift checks
        self.tables_used: dict[str, int] = {}
        #: normalized name -> the Table object the plan captured, so the
        #: cache can detect drop-and-recreate under the same name
        self.table_refs: dict[str, Table] = {}

    def _note_table(self, table: Table) -> None:
        key = table.schema.name.lower()
        self.tables_used.setdefault(key, len(table))
        self.table_refs.setdefault(key, table)

    # -- public API -------------------------------------------------------

    def plan_query(self, query: n.Query, outer: Optional[Scope] = None) -> PlanNode:
        """Build an executable plan for a SELECT or UNION query."""
        if isinstance(query, n.Union):
            parts = [self.plan_select(s, outer) for s in query.selects]
            width = len(parts[0].scope.entries)
            for part in parts[1:]:
                if len(part.scope.entries) != width:
                    raise ExecutionError("UNION branches have different widths")
            return UnionAll(parts) if query.all else UnionDistinct(parts)
        return self.plan_select(query, outer)

    def output_columns(self, query: n.Query) -> list[str]:
        """Output column names of a query (for views and result headers)."""
        select = query.selects[0] if isinstance(query, n.Union) else query
        names: list[str] = []
        for item in select.items:
            if isinstance(item, n.Star):
                names.extend(self._star_columns(select, item))
            elif item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, n.ColumnRef):
                names.append(item.expr.column)
            elif isinstance(item.expr, n.AggregateCall):
                names.append(item.expr.func.lower())
            else:
                names.append(f"col{len(names) + 1}")
        return names

    # -- FROM resolution -------------------------------------------------------

    def _star_columns(self, select: n.Select, star: n.Star) -> list[str]:
        columns: list[str] = []
        for ref in select.from_items:
            if star.table is not None and ref.binding.lower() != star.table.lower():
                continue
            columns.extend(self._relation_columns(ref.name))
        if not columns:
            raise SchemaError(f"star {star.table}.* matches no relation")
        return columns

    def _relation_columns(self, name: str) -> list[str]:
        table = self.catalog.get_table(name, default=None)
        if table is not None:
            return list(table.schema.column_names)
        view = self.catalog.get_view(name, default=None)
        if view is not None:
            return list(view.columns)
        raise CatalogError(f"unknown table or view {name!r}")

    def _base_relation(self, ref: n.TableRef, outer: Optional[Scope]) -> _Relation:
        if isinstance(ref, n.DeltaSeedRef):
            tables = []
            for name in ref.tables:
                table = self.catalog.get_table(name, default=None)
                if table is None:
                    raise CatalogError(f"unknown event table {name!r}")
                self._note_table(table)
                tables.append(table)
            seed = DeltaSeed(tables, ref.binding, ref.columns, ref.positions)
            # table=None: the seed is a key stream, never an IndexJoin
            # target — it is the probe *source* the parents attach to
            return _Relation(ref.binding, seed, None)
        table = self.catalog.get_table(ref.name, default=None)
        if table is not None:
            self._note_table(table)
            return _Relation(ref.binding, SeqScan(table, ref.binding), table)
        view = self.catalog.get_view(ref.name, default=None)
        if view is not None:
            subplan = self.plan_query(view.query, outer)
            renamed = Rename(subplan, ref.binding, list(view.columns))
            return _Relation(ref.binding, renamed, None)
        raise CatalogError(f"unknown table or view {ref.name!r}")

    # -- SELECT planning ----------------------------------------------------------

    def plan_select(self, select: n.Select, outer: Optional[Scope] = None) -> PlanNode:
        if _is_aggregate_select(select):
            return self._plan_aggregate_select(select, outer)
        source = self._plan_source(select, outer)
        return self._project(source, select, outer)

    def _plan_source(
        self, select: n.Select, outer: Optional[Scope]
    ) -> PlanNode:
        """FROM + WHERE of one SELECT block (everything but the select
        list)."""
        relations = self._resolve_from(select, outer)
        bindings = {rel.binding for rel in relations}
        if len(bindings) != len(relations):
            raise SchemaError("duplicate binding name in FROM clause")

        pushdowns: dict[str, list[n.Expr]] = {rel.binding: [] for rel in relations}
        edges: list[tuple[str, str, n.ColumnRef, n.ColumnRef]] = []
        residual: list[n.Expr] = []

        for conjunct in n.conjuncts(select.where):
            kind, payload = self._classify(conjunct, bindings)
            if kind == "pushdown":
                pushdowns[payload[0]].append(payload[1])
            elif kind == "edge":
                edges.append(payload)
            else:
                residual.append(payload)

        for rel in relations:
            rel.pushdown = pushdowns[rel.binding]

        joined = self._join_relations(relations, edges, outer)

        if residual:
            # every plan leaving _join_relations is already scoped with
            # ``outer`` as its correlation chain
            scope = joined.scope
            predicate = compile_expr(
                n.conjoin(residual),
                scope,
                self._subquery_compiler(scope),
            )
            joined = Filter(joined, predicate)

        return joined

    def _plan_aggregate_select(
        self, select: n.Select, outer: Optional[Scope]
    ) -> PlanNode:
        """Ungrouped aggregation: ``SELECT COUNT(*), SUM(x) FROM ...``.

        Engine extension (the assertion fragment has no aggregates);
        used by the aggregate-assertion checker and general queries.
        """
        if select.distinct:
            raise ExecutionError("DISTINCT is not valid on an aggregate query")
        source = self._plan_source(select, outer)
        scope = source.scope
        specs: list = []
        names: list[str] = []
        for item in select.items:
            if isinstance(item, n.Star) or not isinstance(
                item.expr, n.AggregateCall
            ):
                raise ExecutionError(
                    "aggregate queries cannot mix aggregates with plain "
                    "columns (GROUP BY is not supported)"
                )
            call = item.expr
            if call.argument is None:
                specs.append((call.func, None))
            else:
                specs.append(
                    (
                        call.func,
                        compile_expr(
                            call.argument, scope, self._subquery_compiler(scope)
                        ),
                    )
                )
            names.append(item.alias or call.func.lower())
        out_scope = Scope([(None, name) for name in names], outer=outer)
        return Aggregate(source, specs, out_scope)

    def _resolve_from(
        self, select: n.Select, outer: Optional[Scope]
    ) -> list[_Relation]:
        if not select.from_items:
            raise SchemaError("SELECT requires a FROM clause")
        return [self._base_relation(ref, outer) for ref in select.from_items]

    # -- conjunct classification ------------------------------------------------

    def _classify(self, conjunct: n.Expr, bindings: set[str]):
        """Classify one WHERE conjunct.

        Returns ``("pushdown", (binding, expr))``, ``("edge", (b1, b2,
        ref1, ref2))`` or ``("residual", expr)``.
        """
        # unwrap NOT around subquery predicates so they normalize
        expr = conjunct
        if isinstance(expr, n.Not) and isinstance(expr.item, (n.Exists, n.InSubquery)):
            inner = expr.item
            if isinstance(inner, n.Exists):
                expr = n.Exists(inner.query, negated=not inner.negated)
            else:
                expr = n.InSubquery(inner.item, inner.query, negated=not inner.negated)
        if isinstance(expr, (n.Exists, n.InSubquery)):
            return ("residual", expr)
        if _contains_subquery(expr):
            return ("residual", expr)

        used = _local_bindings(expr, bindings)
        if (
            isinstance(expr, n.Comparison)
            and expr.op == "="
            and isinstance(expr.left, n.ColumnRef)
            and isinstance(expr.right, n.ColumnRef)
        ):
            lb = (expr.left.table or "").lower()
            rb = (expr.right.table or "").lower()
            if lb in bindings and rb in bindings and lb != rb:
                return ("edge", (lb, rb, expr.left, expr.right))
        if len(used) == 1:
            return ("pushdown", (next(iter(used)), expr))
        return ("residual", expr)

    # -- join ordering -----------------------------------------------------------

    def _join_relations(
        self,
        relations: list[_Relation],
        edges: list[tuple[str, str, n.ColumnRef, n.ColumnRef]],
        outer: Optional[Scope],
    ) -> PlanNode:
        # Rescope every relation's plan onto the outer chain exactly once,
        # up front — the greedy loop below then reuses plan scopes as-is
        # instead of re-allocating a Scope per attachment step.
        plans: dict[str, PlanNode] = {}
        for rel in relations:
            plan = _rescope(rel.plan, Scope(rel.plan.scope.entries, outer=outer))
            if rel.pushdown:
                scope = plan.scope
                predicate = compile_expr(
                    n.conjoin(rel.pushdown), scope, self._subquery_compiler(scope)
                )
                plan = Filter(plan, predicate)
            plans[rel.binding] = plan

        if len(relations) == 1:
            only = relations[0]
            return plans[only.binding]

        by_binding = {rel.binding: rel for rel in relations}
        remaining = set(by_binding)
        start = min(remaining, key=lambda b: plans[b].estimate)
        current = plans[start]
        current_set = {start}
        remaining.discard(start)

        while remaining:
            connected = {
                (b2 if b1 in current_set else b1)
                for (b1, b2, _, _) in edges
                if (b1 in current_set) != (b2 in current_set)
                and (b1 in remaining or b2 in remaining)
            }
            connected &= remaining
            if connected:
                chosen = min(connected, key=lambda b: plans[b].estimate)
                current = self._attach(
                    current, current_set, by_binding[chosen], plans[chosen], edges, outer
                )
            else:
                chosen = min(remaining, key=lambda b: plans[b].estimate)
                current = NestedLoopCross(current, plans[chosen])
            current_set.add(chosen)
            remaining.discard(chosen)
        return current

    def _attach(
        self,
        current: PlanNode,
        current_set: set[str],
        chosen: _Relation,
        chosen_plan: PlanNode,
        edges,
        outer: Optional[Scope],
    ) -> PlanNode:
        """Join ``chosen`` onto the accumulated ``current`` plan.

        Both ``current`` and ``chosen_plan`` were rescoped onto the
        outer chain before the greedy loop started, so their scopes are
        used directly here (no per-step Scope allocation).
        """
        outer_refs: list[n.ColumnRef] = []
        inner_refs: list[n.ColumnRef] = []
        for b1, b2, r1, r2 in edges:
            if b1 in current_set and b2 == chosen.binding:
                outer_refs.append(r1)
                inner_refs.append(r2)
            elif b2 in current_set and b1 == chosen.binding:
                outer_refs.append(r2)
                inner_refs.append(r1)
        current_scope = current.scope
        outer_positions = tuple(current_scope.resolve(r) for r in outer_refs)

        use_index = (
            chosen.table is not None
            and current.estimate <= len(chosen.table) * _INDEX_JOIN_RATIO
        )
        if use_index:
            residual = None
            if chosen.pushdown:
                combined_entries = current_scope.entries + [
                    (chosen.binding, c)
                    for c in chosen.table.schema.column_names
                ]
                combined = Scope(combined_entries, outer=outer)
                residual = compile_expr(
                    n.conjoin(chosen.pushdown),
                    combined,
                    self._subquery_compiler(combined),
                )
            columns = tuple(
                chosen.table.schema.column(r.column).name for r in inner_refs
            )
            return IndexJoin(
                current,
                chosen.table,
                chosen.binding,
                columns,
                outer_positions,
                residual,
            )

        inner_positions = tuple(chosen_plan.scope.resolve(r) for r in inner_refs)
        return HashJoin(
            current,
            chosen_plan,
            outer_positions,
            inner_positions,
        )

    # -- projection ------------------------------------------------------------

    def _project(
        self, child: PlanNode, select: n.Select, outer: Optional[Scope]
    ) -> PlanNode:
        scope = child.scope  # already chained onto ``outer`` by _plan_source
        exprs: list[Compiled] = []
        names: list[str] = []
        for item in select.items:
            if isinstance(item, n.Star):
                for position, (binding, column) in enumerate(scope.entries):
                    if item.table is not None and binding != item.table.lower():
                        continue
                    exprs.append(_position_getter(position))
                    names.append(column)
            else:
                exprs.append(
                    compile_expr(item.expr, scope, self._subquery_compiler(scope))
                )
                if item.alias:
                    names.append(item.alias)
                elif isinstance(item.expr, n.ColumnRef):
                    names.append(item.expr.column)
                else:
                    names.append(f"col{len(names) + 1}")
        out_scope = Scope([(None, name) for name in names], outer=outer)
        plan: PlanNode = Project(child, exprs, out_scope)
        if select.distinct:
            plan = Distinct(plan)
        return plan

    # -- subquery probes ------------------------------------------------------------

    def _subquery_compiler(self, scope: Scope):
        """A :data:`SubqueryCompiler` bound to the given enclosing scope."""

        def compile_subquery(node: n.Expr) -> Callable[[dict], object]:
            if isinstance(node, n.Exists):
                probe = self._compile_exists(node.query, scope)
                if node.negated:
                    return lambda params: sql_not(probe(params))
                return probe
            if isinstance(node, n.InSubquery):
                probe = self._compile_in(node, scope)
                if node.negated:
                    return lambda params: sql_not(probe(params))
                return probe
            if isinstance(node, n.ScalarSubquery):
                return self._compile_scalar(node, scope)
            raise ExecutionError(
                f"unexpected subquery node {type(node).__name__}"
            )

        return compile_subquery

    def _compile_scalar(
        self, node: n.ScalarSubquery, scope: Scope
    ) -> Callable[[dict], object]:
        """Compile a scalar aggregate subquery into ``fn(params) -> value``.

        Like EXISTS probes, a single-table equi-correlated aggregate is
        evaluated by probing the table's hash index and folding the
        matched rows — this keeps aggregate assertions incremental (the
        group is recomputed, but only for update-adjacent keys)."""
        query = node.query
        assert isinstance(query, n.Select)  # parser guarantees
        fast = self._try_index_scalar(query, scope)
        if fast is not None:
            return fast
        plan = self.plan_query(query, outer=scope)
        outer_keys = self._collect_outer_keys(query, scope)
        token = object()  # identifies this probe's memo in the context

        def run(params: dict) -> object:
            memo = context_memo(params, token)
            key = tuple(params.get(k, _MISSING) for k in outer_keys)
            try:
                return memo[key]
            except KeyError:
                pass
            row = next(iter(plan.execute(params)))
            memo[key] = row[0]
            return row[0]

        return run

    def _try_index_scalar(
        self, select: n.Select, scope: Scope
    ) -> Optional[Callable[[dict], object]]:
        if len(select.from_items) != 1:
            return None
        ref = select.from_items[0]
        table = self.catalog.get_table(ref.name, default=None)
        if table is None:
            return None
        self._note_table(table)
        call = select.items[0].expr
        binding = ref.binding
        inner_scope = Scope(
            [(binding, c) for c in table.schema.column_names], outer=scope
        )
        params_scope = Scope([], outer=scope)
        key_columns: list[str] = []
        key_exprs: list[Compiled] = []
        residual: list[n.Expr] = []
        for conjunct in n.conjuncts(select.where):
            corr = self._split_equi_correlation(conjunct, inner_scope, params_scope)
            if corr is not None:
                position, outer_fn = corr
                key_columns.append(table.schema.columns[position].name)
                key_exprs.append(outer_fn)
            else:
                residual.append(conjunct)
        if not key_columns:
            return None
        residual_fn: Optional[Compiled] = None
        if residual:
            residual_fn = compile_expr(
                n.conjoin(residual),
                inner_scope,
                self._subquery_compiler(inner_scope),
            )
        arg_fn: Optional[Compiled] = None
        if call.argument is not None:
            arg_fn = compile_expr(
                call.argument, inner_scope, self._subquery_compiler(inner_scope)
            )
        columns = tuple(key_columns)
        func = call.func

        def probe(params: dict) -> object:
            key = tuple(fn((), params) for fn in key_exprs)
            if any(v is None for v in key):
                return 0 if func == "COUNT" else None
            values = []
            count = 0
            for row in probe_table(params, table, columns, key):
                if residual_fn is not None and residual_fn(row, params) is not True:
                    continue
                if arg_fn is None:
                    count += 1
                else:
                    values.append(arg_fn(row, params))
            if arg_fn is None:
                return count
            return aggregate_value(func, values)

        return probe

    def _compile_exists(
        self, query: n.Query, scope: Scope
    ) -> Callable[[dict], object]:
        """Compile ``EXISTS (query)`` into ``fn(params) -> True | False``."""
        if isinstance(query, n.Union):
            branch_probes = [self._compile_exists(s, scope) for s in query.selects]
            return lambda params: any(p(params) is True for p in branch_probes)
        probe = self._try_index_exists(query, scope)
        if probe is not None:
            return probe
        return self._generic_exists(query, scope)

    def _try_index_exists(
        self, select: n.Select, scope: Scope
    ) -> Optional[Callable[[dict], object]]:
        """Index-probe EXISTS when the subquery is one base table with at
        least one equi-correlated conjunct."""
        if len(select.from_items) != 1:
            return None
        ref = select.from_items[0]
        table = self.catalog.get_table(ref.name, default=None)
        if table is None:
            return None
        self._note_table(table)
        binding = ref.binding
        inner_scope = Scope(
            [(binding, c) for c in table.schema.column_names], outer=scope
        )
        key_columns: list[str] = []
        key_exprs: list[Compiled] = []
        residual: list[n.Expr] = []
        params_scope = Scope([], outer=scope)
        for conjunct in n.conjuncts(select.where):
            corr = self._split_equi_correlation(conjunct, inner_scope, params_scope)
            if corr is not None:
                column_position, outer_fn = corr
                key_columns.append(table.schema.columns[column_position].name)
                key_exprs.append(outer_fn)
            else:
                residual.append(conjunct)
        if not key_columns:
            return None
        residual_fn: Optional[Compiled] = None
        if residual:
            residual_fn = compile_expr(
                n.conjoin(residual),
                inner_scope,
                self._subquery_compiler(inner_scope),
            )
        columns = tuple(key_columns)

        def probe(params: dict) -> bool:
            key = tuple(fn((), params) for fn in key_exprs)
            if any(v is None for v in key):
                return False
            for row in probe_table(params, table, columns, key):
                if residual_fn is None or residual_fn(row, params) is True:
                    return True
            return False

        return probe

    def _split_equi_correlation(
        self, conjunct: n.Expr, inner_scope: Scope, params_scope: Scope
    ) -> Optional[tuple[int, Compiled]]:
        """If ``conjunct`` is ``inner_col = outer_expr`` (either side),
        return ``(inner column position, compiled outer expr)``."""
        if not (isinstance(conjunct, n.Comparison) and conjunct.op == "="):
            return None
        for inner, other in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not isinstance(inner, n.ColumnRef):
                continue
            position = inner_scope.try_resolve(inner)
            if position is None:
                continue
            if _contains_subquery(other):
                continue
            try:
                outer_fn = compile_expr(other, params_scope)
            except SchemaError:
                continue
            return (position, outer_fn)
        return None

    def _generic_exists(
        self, query: n.Query, scope: Scope
    ) -> Callable[[dict], object]:
        """Fallback: execute the subplan per call, memoized on the values
        of the outer columns it references (uncorrelated -> runs once
        per statement execution; the memo lives in the ExecutionContext,
        never in the plan)."""
        plan = self.plan_query(query, outer=scope)
        outer_keys = self._collect_outer_keys(query, scope)
        token = object()

        def probe(params: dict) -> bool:
            memo = context_memo(params, token)
            key = tuple(params.get(k, _MISSING) for k in outer_keys)
            try:
                return memo[key]
            except KeyError:
                pass
            except TypeError:  # unhashable — never for SQL values, be safe
                return any(True for _ in plan.execute(params))
            result = next(iter(plan.execute(params)), _MISSING) is not _MISSING
            memo[key] = result
            return result

        return probe

    def _compile_in(
        self, node: n.InSubquery, scope: Scope
    ) -> Callable[[dict], object]:
        """Compile ``subject IN (query)`` into ``fn(params)`` with SQL
        three-valued semantics (positive form; negation happens outside)."""
        query = node.query
        subject_fn = compile_expr(node.item, Scope([], outer=scope))
        out_columns = self.output_columns(query)
        if len(out_columns) != 1:
            raise ExecutionError("IN subquery must produce exactly one column")

        probe = self._try_index_in(node, scope, subject_fn)
        if probe is not None:
            return probe

        plan = self.plan_query(query, outer=scope)
        outer_keys = self._collect_outer_keys(query, scope)
        token = object()

        def generic(params: dict) -> object:
            memo = context_memo(params, token)
            key = tuple(params.get(k, _MISSING) for k in outer_keys)
            cached = memo.get(key)
            if cached is None:
                values = set()
                has_null = False
                for row in plan.execute(params):
                    if row[0] is None:
                        has_null = True
                    else:
                        values.add(row[0])
                cached = (frozenset(values), has_null)
                memo[key] = cached
            values, has_null = cached
            subject = subject_fn((), params)
            if subject is None:
                return None if (values or has_null) else False
            if subject in values:
                return True
            return None if has_null else False

        return generic

    def _try_index_in(
        self, node: n.InSubquery, scope: Scope, subject_fn: Compiled
    ) -> Optional[Callable[[dict], object]]:
        """Index-probe IN: requires a single-table subquery whose output
        is a bare NOT NULL column (NULL-freeness makes probe semantics
        exact)."""
        query = node.query
        if not isinstance(query, n.Select) or query.distinct:
            return None
        if len(query.from_items) != 1 or len(query.items) != 1:
            return None
        item = query.items[0]
        if isinstance(item, n.Star) or not isinstance(item.expr, n.ColumnRef):
            return None
        ref = query.from_items[0]
        table = self.catalog.get_table(ref.name, default=None)
        if table is None:
            return None
        self._note_table(table)
        binding = ref.binding
        inner_scope = Scope(
            [(binding, c) for c in table.schema.column_names], outer=scope
        )
        out_position = inner_scope.try_resolve(item.expr)
        if out_position is None:
            return None
        out_column = table.schema.columns[out_position]
        if not out_column.not_null:
            return None
        params_scope = Scope([], outer=scope)
        key_columns = [out_column.name]
        key_exprs: list[Optional[Compiled]] = [None]  # slot 0 = subject
        residual: list[n.Expr] = []
        for conjunct in n.conjuncts(query.where):
            corr = self._split_equi_correlation(conjunct, inner_scope, params_scope)
            if corr is not None:
                position, outer_fn = corr
                key_columns.append(table.schema.columns[position].name)
                key_exprs.append(outer_fn)
            else:
                residual.append(conjunct)
        residual_fn: Optional[Compiled] = None
        if residual:
            residual_fn = compile_expr(
                n.conjoin(residual),
                inner_scope,
                self._subquery_compiler(inner_scope),
            )
        columns = tuple(key_columns)

        corr_exprs = key_exprs[1:]

        def probe(params: dict) -> object:
            subject = subject_fn((), params)
            corr_values = [fn((), params) for fn in corr_exprs]
            if subject is None:
                # x IN S is UNKNOWN when S is non-empty and FALSE when S
                # is empty — check whether the (possibly correlated)
                # inner set has any member at all
                if any(v is None for v in corr_values):
                    return False  # correlation with NULL: empty set
                if corr_exprs:
                    rows = probe_table(
                        params, table, tuple(columns[1:]), tuple(corr_values)
                    )
                else:
                    rows = scan_table(params, table)
                for row in rows:
                    if residual_fn is None or residual_fn(row, params) is True:
                        return None
                return False
            if any(v is None for v in corr_values):
                return False
            for row in probe_table(
                params, table, columns, tuple([subject] + corr_values)
            ):
                if residual_fn is None or residual_fn(row, params) is True:
                    return True
            return False

        return probe

    # -- correlation analysis ---------------------------------------------------------

    def _collect_outer_keys(self, query: n.Query, scope: Scope) -> tuple:
        """Normalized outer (binding, column) keys referenced anywhere in
        ``query`` — the memoization key components for generic probes."""
        keys: set = set()
        self._collect_from_query(query, [], scope, keys)
        return tuple(sorted(keys, key=lambda k: (k[0] or "", k[1])))

    def _collect_from_query(
        self, query: n.Query, frames: list[set[str]], scope: Scope, keys: set
    ) -> None:
        selects = query.selects if isinstance(query, n.Union) else (query,)
        for select in selects:
            local: set[str] = set()
            for ref in select.from_items:
                local.add(ref.binding.lower())
                for column in self._relation_columns(ref.name):
                    local.add(column.lower())
            new_frames = frames + [local]
            if select.where is not None:
                self._collect_from_expr(select.where, new_frames, scope, keys)
            for item in select.items:
                if isinstance(item, n.SelectItem):
                    self._collect_from_expr(item.expr, new_frames, scope, keys)

    def _collect_from_expr(
        self, expr: n.Expr, frames: list[set[str]], scope: Scope, keys: set
    ) -> None:
        for node in n.walk_expr(expr):
            if isinstance(node, n.ColumnRef):
                if not self._resolves_in_frames(node, frames):
                    self._add_outer_key(node, scope, keys)
            elif isinstance(node, (n.Exists, n.InSubquery, n.ScalarSubquery)):
                self._collect_from_query(node.query, frames, scope, keys)

    @staticmethod
    def _resolves_in_frames(ref: n.ColumnRef, frames: list[set[str]]) -> bool:
        name = (ref.table or ref.column).lower()
        return any(name in frame for frame in frames)

    @staticmethod
    def _add_outer_key(ref: n.ColumnRef, scope: Scope, keys: set) -> None:
        current: Optional[Scope] = scope
        while current is not None:
            position = current.try_resolve(ref)
            if position is not None:
                keys.add(current.entries[position])
                return
            current = current.outer
        # unknown reference: leave for compile_expr to raise with context


def _rescope(plan: PlanNode, scope: Scope) -> PlanNode:
    """Attach a scope (with outer chain) to an existing plan node."""
    plan.scope = scope
    return plan


def _position_getter(position: int) -> Compiled:
    return lambda row, params: row[position]


def _contains_subquery(expr: n.Expr) -> bool:
    return any(
        isinstance(node, (n.Exists, n.InSubquery, n.ScalarSubquery))
        for node in n.walk_expr(expr)
    )


def _is_aggregate_select(select: n.Select) -> bool:
    return any(
        isinstance(item, n.SelectItem)
        and any(
            isinstance(node, n.AggregateCall) for node in n.walk_expr(item.expr)
        )
        for item in select.items
    )


def _local_bindings(expr: n.Expr, bindings: set[str]) -> set[str]:
    """Bindings from ``bindings`` referenced by ``expr``.

    Unqualified refs are attributed by probing; refs to outer scopes
    contribute nothing (they compile to params).
    """
    used: set[str] = set()
    for node in n.walk_expr(expr):
        if isinstance(node, n.ColumnRef):
            if node.table is not None:
                binding = node.table.lower()
                if binding in bindings:
                    used.add(binding)
            else:
                used.add("?unqualified?")
    if "?unqualified?" in used:
        # conservatively treat unqualified refs as multi-binding unless
        # there is exactly one relation
        if len(bindings) == 1:
            used.discard("?unqualified?")
            used.add(next(iter(bindings)))
    return used
