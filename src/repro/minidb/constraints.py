"""Declarative constraint enforcement: NOT NULL, PK/UNIQUE, FOREIGN KEY.

PRIMARY KEY and UNIQUE are enforced by the unique indexes inside
:class:`repro.minidb.storage.Table`; this module adds NOT NULL checks
and referential integrity:

* on INSERT — every FK of the row must reference an existing parent;
* on DELETE — no row in a child table may still reference the victim
  (RESTRICT semantics; the paper's batch apply orders tables so that
  consistent batches never trip this).

FK checks use hash indexes on both the parent key and the child FK
columns, so they stay O(1) per row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import CatalogError, ConstraintViolation, SchemaError
from .catalog import Catalog
from .schema import ForeignKey, TableSchema, normalize
from .storage import Table, UniqueIndex


def validate_foreign_keys(catalog: Catalog, schema: TableSchema) -> TableSchema:
    """Resolve and validate a new table's FKs against the catalog.

    Fills in omitted ``ref_columns`` with the parent's primary key and
    verifies that the referenced columns form the parent's primary key
    or a declared UNIQUE key (SQL requires parent keys to be unique).
    Self-references are allowed.
    """
    resolved: list[ForeignKey] = []
    for fk in schema.foreign_keys:
        if normalize(fk.ref_table) == normalize(schema.name):
            parent_schema = schema
        else:
            parent = catalog.get_table(fk.ref_table, default=None)
            if parent is None:
                raise SchemaError(
                    f"table {schema.name!r}: foreign key references unknown "
                    f"table {fk.ref_table!r}"
                )
            parent_schema = parent.schema
        ref_columns = fk.ref_columns or parent_schema.primary_key
        if not ref_columns:
            raise SchemaError(
                f"table {schema.name!r}: foreign key to {fk.ref_table!r} "
                "needs explicit columns (parent has no primary key)"
            )
        ref_columns = tuple(parent_schema.column(c).name for c in ref_columns)
        keys = {tuple(map(normalize, parent_schema.primary_key))} | {
            tuple(map(normalize, u)) for u in parent_schema.uniques
        }
        if tuple(map(normalize, ref_columns)) not in keys:
            raise SchemaError(
                f"table {schema.name!r}: foreign key references non-unique "
                f"columns {ref_columns!r} of {fk.ref_table!r}"
            )
        if len(fk.columns) != len(ref_columns):
            raise SchemaError(
                f"table {schema.name!r}: foreign key column count mismatch"
            )
        resolved.append(ForeignKey(fk.columns, fk.ref_table, ref_columns))
    schema.foreign_keys = tuple(resolved)
    return schema


@dataclass
class _OutgoingFK:
    """One resolved child-side FK: everything a per-row check needs."""

    fk: ForeignKey
    positions: tuple[int, ...]
    parent: Table
    ref_columns: tuple[str, ...]
    #: the parent's PK index when the FK targets the primary key —
    #: the O(1) fast path; otherwise probe a secondary index
    parent_pk: Optional[UniqueIndex]


@dataclass
class _IncomingFK:
    """One resolved parent-side FK: a child table referencing us."""

    fk: ForeignKey
    child: Table
    parent_positions: tuple[int, ...]


class ConstraintChecker:
    """Row-level constraint checks against the current catalog state.

    FK metadata (column positions, parent/child table objects, index
    choices) is resolved once per catalog version and cached, so batch
    applies pay O(1) dictionary lookups per row instead of re-resolving
    names and key positions row by row.  The FK topological order used
    by ``apply_batch`` is memoized the same way.
    """

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        #: name -> (catalog version at build time, specs).  Entries are
        #: validated against the *current* version on every read, so a
        #: DDL racing a concurrent build can at worst store an entry
        #: that is already stale — it is rebuilt on its next use, never
        #: served for the new version.
        self._outgoing: dict[str, tuple[int, list[_OutgoingFK]]] = {}
        self._incoming: dict[str, tuple[int, list[_IncomingFK]]] = {}
        self._topo_cache: dict[tuple, list[str]] = {}

    # -- FK spec caches ----------------------------------------------------

    def outgoing_fks(self, table: Table) -> list[_OutgoingFK]:
        """Resolved child-side FKs of ``table`` (cached per version)."""
        version = self.catalog.version
        key = normalize(table.name)
        cached = self._outgoing.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        specs = []
        for fk in table.schema.foreign_keys:
            parent = self.catalog.require_table(fk.ref_table)
            parent_pk = None
            if parent.primary_key_index is not None and (
                parent.schema.key_positions(parent.schema.primary_key)
                == parent.schema.key_positions(fk.ref_columns)
            ):
                parent_pk = parent.primary_key_index
            specs.append(
                _OutgoingFK(
                    fk=fk,
                    positions=table.schema.key_positions(fk.columns),
                    parent=parent,
                    ref_columns=fk.ref_columns,
                    parent_pk=parent_pk,
                )
            )
        self._outgoing[key] = (version, specs)
        return specs

    def incoming_fks(self, table: Table) -> list[_IncomingFK]:
        """Resolved FKs of other tables referencing ``table`` (cached)."""
        version = self.catalog.version
        key = normalize(table.name)
        cached = self._incoming.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        specs = []
        for child in self.catalog.tables():
            for fk in child.schema.foreign_keys:
                if normalize(fk.ref_table) != key:
                    continue
                specs.append(
                    _IncomingFK(
                        fk=fk,
                        child=child,
                        parent_positions=table.schema.key_positions(
                            fk.ref_columns
                        ),
                    )
                )
        self._incoming[key] = (version, specs)
        return specs

    # -- NOT NULL ----------------------------------------------------------

    @staticmethod
    def check_not_null(table: Table, row: tuple) -> None:
        for value, column in zip(row, table.schema.columns):
            if value is None and column.not_null:
                raise ConstraintViolation(
                    f"NULL in NOT NULL column {table.name}.{column.name}",
                    constraint=f"NOT NULL {table.name}.{column.name}",
                    table=table.name,
                )

    # -- FK on insert -----------------------------------------------------------

    def check_fk_insert(self, table: Table, row: tuple) -> None:
        """Every FK value of ``row`` must have a parent (NULLs exempt)."""
        for spec in self.outgoing_fks(table):
            key = tuple(row[p] for p in spec.positions)
            if any(v is None for v in key):
                continue  # SQL: NULL FK values are not checked
            if spec.parent_pk is not None:
                if spec.parent_pk.lookup(key) is not None:
                    continue
            elif any(
                True for _ in spec.parent.lookup_secondary(spec.ref_columns, key)
            ):
                continue
            raise ConstraintViolation(
                f"foreign key violation: "
                f"{table.name}({', '.join(spec.fk.columns)})"
                f"={key!r} has no parent in {spec.fk.ref_table}",
                constraint=str(spec.fk),
                table=table.name,
            )

    @staticmethod
    def _parent_exists(parent: Table, columns: tuple[str, ...], key: tuple) -> bool:
        # prefer the unique index when the referenced key is the PK
        pk = parent.primary_key_index
        if pk is not None and parent.schema.key_positions(
            parent.schema.primary_key
        ) == parent.schema.key_positions(columns):
            return pk.lookup(key) is not None
        for _ in parent.lookup_secondary(columns, key):
            return True
        return False

    # -- FK on delete --------------------------------------------------------------

    def check_fk_delete(self, table: Table, row: tuple) -> None:
        """No child row may reference the victim (RESTRICT)."""
        for spec in self.incoming_fks(table):
            key = tuple(row[p] for p in spec.parent_positions)
            if any(v is None for v in key):
                continue
            for referencing in spec.child.lookup_secondary(
                spec.fk.columns, key
            ):
                if spec.child is table and referencing == row:
                    continue  # a row may reference itself
                raise ConstraintViolation(
                    f"foreign key violation: cannot delete from "
                    f"{table.name}, still referenced by {spec.child.name}"
                    f"({', '.join(spec.fk.columns)})={key!r}",
                    constraint=str(spec.fk),
                    table=spec.child.name,
                )

    # -- FK deferred (batch) --------------------------------------------------------

    def check_fk_after_delete(self, table: Table, deleted_row: tuple) -> None:
        """Deferred RESTRICT check against the *final* state: a deleted
        parent row is fine if its key was re-established by an insert in
        the same batch, or if no child references it anymore."""
        for spec in self.incoming_fks(table):
            key = tuple(deleted_row[p] for p in spec.parent_positions)
            if any(v is None for v in key):
                continue
            if self._parent_exists(table, spec.fk.ref_columns, key):
                continue  # the key survives (re-inserted in the batch)
            for _ in spec.child.lookup_secondary(spec.fk.columns, key):
                raise ConstraintViolation(
                    f"foreign key violation: deleting from {table.name} "
                    f"leaves {spec.child.name}"
                    f"({', '.join(spec.fk.columns)})={key!r} dangling",
                    constraint=str(spec.fk),
                    table=spec.child.name,
                )

    # -- FK on update --------------------------------------------------------------

    def check_fk_update(self, table: Table, old_row: tuple, new_row: tuple) -> None:
        """RESTRICT check for updates: only keys that actually change
        need the no-referencing-children check."""
        for spec in self.incoming_fks(table):
            old_key = tuple(old_row[p] for p in spec.parent_positions)
            new_key = tuple(new_row[p] for p in spec.parent_positions)
            if old_key == new_key or any(v is None for v in old_key):
                continue
            for referencing in spec.child.lookup_secondary(
                spec.fk.columns, old_key
            ):
                if spec.child is table and referencing == old_row:
                    continue
                raise ConstraintViolation(
                    f"foreign key violation: cannot change key of "
                    f"{table.name}, still referenced by {spec.child.name}"
                    f"({', '.join(spec.fk.columns)})={old_key!r}",
                    constraint=str(spec.fk),
                    table=spec.child.name,
                )

    # -- batch ordering ---------------------------------------------------------------

    def fk_topological_order(self, names: list[str]) -> list[str]:
        """Order table names parents-first by the FK graph (children last).

        Used when applying a batch update: inserts go parents-first,
        deletes children-first (reversed).  Cycles (other than
        self-references) raise :class:`CatalogError`.  The order for a
        given set of (normalized) names is memoized per catalog version
        — ``apply_batch`` re-sorts the same handful of tables on every
        commit, so the sort runs once, not once per commit.
        """
        wanted = {normalize(name): name for name in names}
        cache_key = (self.catalog.version, tuple(sorted(wanted)))
        cached = self._topo_cache.get(cache_key)
        if cached is not None:
            return [wanted[key] for key in cached]
        if len(self._topo_cache) > 256:  # bound growth across versions
            self._topo_cache.clear()
        children: dict[str, set[str]] = {key: set() for key in wanted}
        indegree: dict[str, int] = {key: 0 for key in wanted}
        for key in wanted:
            table = self.catalog.require_table(key)
            for fk in table.schema.foreign_keys:
                parent = normalize(fk.ref_table)
                if parent in wanted and parent != key:
                    if key not in children[parent]:
                        children[parent].add(key)
                        indegree[key] += 1
        ready = sorted(key for key, deg in indegree.items() if deg == 0)
        order: list[str] = []
        while ready:
            key = ready.pop(0)
            order.append(key)
            for child in sorted(children[key]):
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(wanted):
            raise CatalogError("foreign key cycle detected among tables")
        self._topo_cache[cache_key] = order
        return [wanted[key] for key in order]
