"""Database catalog: tables, views, triggers and stored procedures.

All object names are case-insensitive.  Tables carry a ``namespace``
tag: TINTIN's auxiliary event tables live in the ``"event"`` namespace
(the paper uses a separate ``event_DB`` database; a tagged namespace in
one catalog gives the same isolation for our purposes and keeps the SQL
dialect free of cross-database qualifiers).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import CatalogError
from ..sqlparser import nodes as n
from .schema import TableSchema, normalize
from .storage import Table

_RAISE = object()


@dataclass
class View:
    """A stored view: name, defining query AST, output column names."""

    name: str
    query: n.Query
    columns: tuple[str, ...]


@dataclass
class Trigger:
    """An INSTEAD OF trigger on a table.

    ``event`` is ``"insert"`` or ``"delete"``.  ``action`` receives
    ``(database, table_name, rows)`` and fully replaces the base-table
    modification while the trigger is enabled — exactly SQL Server's
    INSTEAD OF semantics, which TINTIN uses to capture updates into the
    event tables without touching the base data.
    """

    name: str
    table: str
    event: str
    action: Callable
    enabled: bool = True


@dataclass
class Procedure:
    """A stored procedure: a named callable taking (database, *args)."""

    name: str
    body: Callable
    description: str = ""


class Catalog:
    """Named collections of tables, views, triggers and procedures.

    The catalog carries a monotonically increasing :attr:`version`,
    bumped on every change to its *shape* (table/view/trigger creation
    and removal).  Compiled plans embed direct references to catalog
    objects, so the prepared-plan cache keys its entries on this
    version: any DDL instantly invalidates every cached plan.  Data
    changes and trigger enable/disable (which flips on every single
    ``safeCommit``) deliberately do **not** bump the version — SELECT
    plans are insensitive to both, and bumping on the commit hot path
    would defeat plan caching entirely.

    Shape mutations (DDL, trigger toggling) are serialized behind an
    RLock so a multi-session server can run DDL while client threads
    read.  Single-name lookups stay lock-free (CPython dict reads are
    atomic); collection readers snapshot under the lock so a concurrent
    DDL cannot resize a dict mid-iteration.  Readers that must not
    observe a half-applied *commit* synchronize through the
    :class:`repro.server.CommitScheduler`'s read/write lock rather than
    here.
    """

    def __init__(self):
        self._tables: dict[str, Table] = {}
        self._views: dict[str, View] = {}
        self._triggers: dict[str, Trigger] = {}
        self._procedures: dict[str, Procedure] = {}
        self._version = 0
        self._lock = threading.RLock()

    @property
    def version(self) -> int:
        """Current catalog-shape version (bumped by DDL)."""
        return self._version

    def bump_version(self) -> int:
        """Invalidate all cached plans by advancing the version."""
        with self._lock:
            self._version += 1
            return self._version

    # -- tables -----------------------------------------------------------

    def add_table(self, schema: TableSchema, namespace: str = "main") -> Table:
        with self._lock:
            key = normalize(schema.name)
            if key in self._tables or key in self._views:
                raise CatalogError(f"object {schema.name!r} already exists")
            table = Table(schema, namespace)
            self._tables[key] = table
            self.bump_version()
            return table

    def get_table(self, name: str, default=_RAISE):
        table = self._tables.get(normalize(name))
        if table is None:
            if default is not _RAISE:
                return default
            raise CatalogError(f"unknown table {name!r}")
        return table

    def require_table(self, name: str) -> Table:
        table = self._tables.get(normalize(name))
        if table is None:
            raise CatalogError(f"unknown table {name!r}")
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> bool:
        with self._lock:
            key = normalize(name)
            if key not in self._tables:
                if if_exists:
                    return False
                raise CatalogError(f"unknown table {name!r}")
            referencing = [
                t.schema.name
                for t in self._tables.values()
                if any(
                    normalize(fk.ref_table) == key
                    for fk in t.schema.foreign_keys
                )
                and normalize(t.schema.name) != key
            ]
            if referencing:
                raise CatalogError(
                    f"cannot drop table {name!r}: referenced by foreign keys "
                    f"of {', '.join(sorted(referencing))}"
                )
            del self._tables[key]
            for trigger_name in [
                tn
                for tn, tr in self._triggers.items()
                if normalize(tr.table) == key
            ]:
                del self._triggers[trigger_name]
            self.bump_version()
            return True

    def tables(self, namespace: Optional[str] = None) -> list[Table]:
        with self._lock:
            result = [
                t
                for t in self._tables.values()
                if namespace is None or t.namespace == namespace
            ]
        return sorted(result, key=lambda t: normalize(t.schema.name))

    def tables_in_creation_order(
        self, namespace: Optional[str] = None
    ) -> list[Table]:
        """Tables in the order they were created (dict insertion order).

        This order is a **durability contract**, not an implementation
        detail: creation order is a valid FK-topological order by
        construction (CREATE TABLE validates that referenced parents
        already exist), so checkpoints serialize tables this way — and
        WAL format v2 batch records reference tables by their *position
        in this list* (the schema ordinal).  Changing how the catalog
        stores tables must preserve it, or existing logs stop replaying.
        """
        with self._lock:
            return [
                t
                for t in self._tables.values()
                if namespace is None or t.namespace == namespace
            ]

    def has_table(self, name: str) -> bool:
        return normalize(name) in self._tables

    # -- views ---------------------------------------------------------------

    def add_view(self, view: View) -> None:
        with self._lock:
            key = normalize(view.name)
            if key in self._views or key in self._tables:
                raise CatalogError(f"object {view.name!r} already exists")
            self._views[key] = view
            self.bump_version()

    def get_view(self, name: str, default=None) -> Optional[View]:
        return self._views.get(normalize(name), default)

    def drop_view(self, name: str, if_exists: bool = False) -> bool:
        with self._lock:
            key = normalize(name)
            if key not in self._views:
                if if_exists:
                    return False
                raise CatalogError(f"unknown view {name!r}")
            del self._views[key]
            self.bump_version()
            return True

    def views(self) -> list[View]:
        with self._lock:
            result = list(self._views.values())
        return sorted(result, key=lambda v: normalize(v.name))

    def has_view(self, name: str) -> bool:
        return normalize(name) in self._views

    # -- triggers ---------------------------------------------------------------

    def add_trigger(self, trigger: Trigger) -> None:
        with self._lock:
            key = normalize(trigger.name)
            if key in self._triggers:
                raise CatalogError(f"trigger {trigger.name!r} already exists")
            if trigger.event not in ("insert", "delete"):
                raise CatalogError(
                    f"unsupported trigger event {trigger.event!r}"
                )
            self.require_table(trigger.table)
            self._triggers[key] = trigger
            self.bump_version()

    def drop_trigger(self, name: str) -> None:
        with self._lock:
            key = normalize(name)
            if key not in self._triggers:
                raise CatalogError(f"unknown trigger {name!r}")
            del self._triggers[key]
            self.bump_version()

    def triggers_for(self, table: str, event: str) -> list[Trigger]:
        key = normalize(table)
        with self._lock:
            return [
                t
                for t in self._triggers.values()
                if normalize(t.table) == key and t.event == event
            ]

    def active_triggers_for(self, table: str, event: str) -> list[Trigger]:
        return [t for t in self.triggers_for(table, event) if t.enabled]

    def triggers(self) -> list[Trigger]:
        with self._lock:
            result = list(self._triggers.values())
        return sorted(result, key=lambda t: normalize(t.name))

    def set_triggers_enabled(self, table: str, enabled: bool) -> None:
        with self._lock:
            key = normalize(table)
            for trigger in self._triggers.values():
                if normalize(trigger.table) == key:
                    trigger.enabled = enabled

    # -- stable shape serialization (durability subsystem) -------------------

    def shape_signature(self) -> str:
        """A stable hash of the catalog's *shape*: table schemas (with
        namespaces), view names and output columns, trigger names, and
        procedure names — no row data.

        The checkpoint writer stores this signature; recovery recomputes
        it after rebuilding the catalog (DDL replay + assertion
        re-compilation) and refuses to proceed on a mismatch, so a
        recovered engine provably carries the same catalog shape as the
        one that wrote the checkpoint.
        """
        import hashlib
        import json

        with self._lock:
            shape = {
                "tables": sorted(
                    (normalize(t.schema.name), t.namespace, t.schema.to_dict())
                    for t in self._tables.values()
                ),
                "views": sorted(
                    (normalize(v.name), list(v.columns))
                    for v in self._views.values()
                ),
                "triggers": sorted(normalize(n) for n in self._triggers),
                "procedures": sorted(normalize(n) for n in self._procedures),
            }
        payload = json.dumps(shape, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- procedures ----------------------------------------------------------------

    def add_procedure(self, procedure: Procedure) -> None:
        with self._lock:
            key = normalize(procedure.name)
            if key in self._procedures:
                raise CatalogError(
                    f"procedure {procedure.name!r} already exists"
                )
            self._procedures[key] = procedure

    def replace_procedure(self, procedure: Procedure) -> None:
        with self._lock:
            self._procedures[normalize(procedure.name)] = procedure

    def get_procedure(self, name: str) -> Procedure:
        procedure = self._procedures.get(normalize(name))
        if procedure is None:
            raise CatalogError(f"unknown procedure {name!r}")
        return procedure

    def has_procedure(self, name: str) -> bool:
        return normalize(name) in self._procedures

    def procedures(self) -> list[Procedure]:
        with self._lock:
            result = list(self._procedures.values())
        return sorted(result, key=lambda p: normalize(p.name))
