"""Physical plan operators (iterator model).

Each operator exposes ``execute(params)`` yielding output tuples, plus a
``scope`` (:class:`repro.minidb.expressions.Scope`) describing the tuple
layout, and an ``estimate`` used by the planner's greedy join ordering.

``params`` carries correlation values from enclosing queries — operators
pass it through unchanged; only compiled expressions read it.

The operator set is deliberately small:

* :class:`SeqScan` — full scan of a base table;
* :class:`IndexJoin` — stream the outer child, probe a base table's hash
  index per row (the operator that makes incremental checks touch only
  update-adjacent data);
* :class:`HashJoin` — classic build/probe equi-join for when both sides
  must be materialized anyway;
* :class:`NestedLoopCross` — cartesian product (rare: only for
  disconnected join graphs);
* :class:`Filter`, :class:`Project`, :class:`Distinct`,
  :class:`UnionAll`, :class:`UnionDistinct`.

Subqueries (``[NOT] EXISTS`` / ``[NOT] IN``) never appear as join
operators: the planner compiles them into *probe closures* evaluated
inside :class:`Filter` predicates (see :mod:`repro.minidb.planner`),
which probe table indexes directly.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from .expressions import Compiled, Scope
from .storage import Table


class PlanNode:
    """Base class for physical operators."""

    scope: Scope
    estimate: float

    def execute(self, params: dict) -> Iterator[tuple]:  # pragma: no cover
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """Human-readable plan tree (used in tests and debugging)."""
        lines = [("  " * indent) + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def children(self) -> list["PlanNode"]:
        return []


class SeqScan(PlanNode):
    """Full scan of a base table under a binding name."""

    def __init__(self, table: Table, binding: str):
        self.table = table
        self.binding = binding
        self.scope = Scope(
            [(binding, column) for column in table.schema.column_names]
        )
        self.estimate = float(max(len(table), 1))

    def execute(self, params: dict) -> Iterator[tuple]:
        return self.table.scan()

    def describe(self) -> str:
        return f"SeqScan({self.table.name} AS {self.binding}, ~{len(self.table)} rows)"


class Filter(PlanNode):
    """Keep rows where the compiled predicate evaluates to exactly True."""

    def __init__(self, child: PlanNode, predicate: Compiled, selectivity: float = 0.25):
        self.child = child
        self.predicate = predicate
        self.scope = child.scope
        self.estimate = max(child.estimate * selectivity, 1.0)

    def execute(self, params: dict) -> Iterator[tuple]:
        predicate = self.predicate
        for row in self.child.execute(params):
            if predicate(row, params) is True:
                yield row

    def children(self) -> list[PlanNode]:
        return [self.child]


class Project(PlanNode):
    """Compute output expressions per row."""

    def __init__(
        self,
        child: PlanNode,
        exprs: list[Compiled],
        out_scope: Scope,
    ):
        self.child = child
        self.exprs = exprs
        self.scope = out_scope
        self.estimate = child.estimate

    def execute(self, params: dict) -> Iterator[tuple]:
        exprs = self.exprs
        for row in self.child.execute(params):
            yield tuple(expr(row, params) for expr in exprs)

    def children(self) -> list[PlanNode]:
        return [self.child]


class Distinct(PlanNode):
    """Remove duplicate rows (hash-based)."""

    def __init__(self, child: PlanNode):
        self.child = child
        self.scope = child.scope
        self.estimate = child.estimate

    def execute(self, params: dict) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child.execute(params):
            if row not in seen:
                seen.add(row)
                yield row

    def children(self) -> list[PlanNode]:
        return [self.child]


def _concat_scopes(left: Scope, right: Scope) -> Scope:
    entries = list(left.entries) + list(right.entries)
    return Scope(entries, outer=left.outer)


class IndexJoin(PlanNode):
    """Stream the outer child; probe a base table hash index per row.

    ``outer_positions`` select the probe key from the outer tuple;
    ``table_columns`` name the indexed columns of the inner table.  An
    optional ``residual`` predicate (compiled against the concatenated
    scope) filters probed matches — this is where non-equi or nested
    subquery conditions on the inner table land.

    NULL probe keys never match (SQL equality semantics).
    """

    def __init__(
        self,
        outer: PlanNode,
        table: Table,
        binding: str,
        table_columns: tuple[str, ...],
        outer_positions: tuple[int, ...],
        residual: Optional[Compiled] = None,
    ):
        self.outer = outer
        self.table = table
        self.binding = binding
        self.table_columns = table_columns
        self.outer_positions = outer_positions
        self.residual = residual
        inner_scope = Scope(
            [(binding, column) for column in table.schema.column_names]
        )
        self.scope = _concat_scopes(outer.scope, inner_scope)
        self.estimate = max(outer.estimate, 1.0)

    def execute(self, params: dict) -> Iterator[tuple]:
        table = self.table
        columns = self.table_columns
        positions = self.outer_positions
        residual = self.residual
        # build the index once up front so probes are O(1)
        table.ensure_secondary_index(columns)
        for outer_row in self.outer.execute(params):
            key = tuple(outer_row[p] for p in positions)
            if any(v is None for v in key):
                continue
            for inner_row in table.lookup_secondary(columns, key):
                combined = outer_row + inner_row
                if residual is None or residual(combined, params) is True:
                    yield combined

    def children(self) -> list[PlanNode]:
        return [self.outer]

    def describe(self) -> str:
        cols = ", ".join(self.table_columns)
        return (
            f"IndexJoin(probe {self.table.name} AS {self.binding} "
            f"on ({cols}))"
        )


class HashJoin(PlanNode):
    """Equi-join materializing the build side into a hash table.

    The build side is the *right* child; the planner puts the smaller
    estimated side there.  NULL keys never match.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_positions: tuple[int, ...],
        right_positions: tuple[int, ...],
        residual: Optional[Compiled] = None,
    ):
        self.left = left
        self.right = right
        self.left_positions = left_positions
        self.right_positions = right_positions
        self.residual = residual
        self.scope = _concat_scopes(left.scope, right.scope)
        self.estimate = max(left.estimate, right.estimate)

    def execute(self, params: dict) -> Iterator[tuple]:
        build: dict[tuple, list[tuple]] = {}
        for row in self.right.execute(params):
            key = tuple(row[p] for p in self.right_positions)
            if any(v is None for v in key):
                continue
            build.setdefault(key, []).append(row)
        residual = self.residual
        for left_row in self.left.execute(params):
            key = tuple(left_row[p] for p in self.left_positions)
            if any(v is None for v in key):
                continue
            for right_row in build.get(key, ()):
                combined = left_row + right_row
                if residual is None or residual(combined, params) is True:
                    yield combined

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]


class NestedLoopCross(PlanNode):
    """Cartesian product; the right side is materialized once."""

    def __init__(self, left: PlanNode, right: PlanNode):
        self.left = left
        self.right = right
        self.scope = _concat_scopes(left.scope, right.scope)
        self.estimate = left.estimate * right.estimate

    def execute(self, params: dict) -> Iterator[tuple]:
        right_rows = list(self.right.execute(params))
        for left_row in self.left.execute(params):
            for right_row in right_rows:
                yield left_row + right_row

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]


class UnionAll(PlanNode):
    """Bag union of children (schemas must be position-compatible)."""

    def __init__(self, parts: list[PlanNode]):
        self.parts = parts
        self.scope = parts[0].scope
        self.estimate = sum(p.estimate for p in parts)

    def execute(self, params: dict) -> Iterator[tuple]:
        for part in self.parts:
            yield from part.execute(params)

    def children(self) -> list[PlanNode]:
        return list(self.parts)


class UnionDistinct(PlanNode):
    """Set union of children."""

    def __init__(self, parts: list[PlanNode]):
        self.parts = parts
        self.scope = parts[0].scope
        self.estimate = sum(p.estimate for p in parts)

    def execute(self, params: dict) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for part in self.parts:
            for row in part.execute(params):
                if row not in seen:
                    seen.add(row)
                    yield row

    def children(self) -> list[PlanNode]:
        return list(self.parts)


def aggregate_value(func: str, values: list) -> object:
    """Fold a list of non-NULL-filtered values with an SQL aggregate.

    SQL semantics: NULL inputs are ignored; an empty input yields 0 for
    COUNT and NULL for SUM/MIN/MAX/AVG.
    """
    present = [v for v in values if v is not None]
    if func == "COUNT":
        return len(present)
    if not present:
        return None
    if func == "SUM":
        return sum(present)
    if func == "MIN":
        return min(present)
    if func == "MAX":
        return max(present)
    if func == "AVG":
        return sum(present) / len(present)
    raise ValueError(f"unknown aggregate {func!r}")


class Aggregate(PlanNode):
    """Ungrouped aggregation: consumes the child, emits exactly one row.

    ``specs`` is a list of ``(func, compiled_arg_or_None)`` — a None
    argument means COUNT(*).  (Engine extension used by the
    aggregate-assertion feature; the paper's fragment has no
    aggregates.)
    """

    def __init__(self, child: PlanNode, specs: list, out_scope: Scope):
        self.child = child
        self.specs = specs
        self.scope = out_scope
        self.estimate = 1.0

    def execute(self, params: dict) -> Iterator[tuple]:
        counts = [0] * len(self.specs)
        collected: list[list] = [[] for _ in self.specs]
        for row in self.child.execute(params):
            for position, (func, arg) in enumerate(self.specs):
                if arg is None:
                    counts[position] += 1
                else:
                    collected[position].append(arg(row, params))
        out = []
        for position, (func, arg) in enumerate(self.specs):
            if arg is None:
                out.append(counts[position])
            else:
                out.append(aggregate_value(func, collected[position]))
        yield tuple(out)

    def children(self) -> list[PlanNode]:
        return [self.child]


class Empty(PlanNode):
    """Produces no rows; used when the planner proves a branch is empty
    (e.g. a view over an event table known to be empty is *not* assumed
    empty — this is only for structurally impossible branches)."""

    def __init__(self, scope: Scope):
        self.scope = scope
        self.estimate = 0.0

    def execute(self, params: dict) -> Iterator[tuple]:
        return iter(())
