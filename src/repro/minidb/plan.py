"""Physical plan operators (iterator model).

Each operator exposes ``execute(params)`` yielding output tuples, plus a
``scope`` (:class:`repro.minidb.expressions.Scope`) describing the tuple
layout, and an ``estimate`` used by the planner's greedy join ordering.

``params`` carries correlation values from enclosing queries — operators
pass it through unchanged; only compiled expressions read it.  One
reserved string key (:data:`CTX_KEY` — disjoint from the normal
``(binding, column)`` tuple keys) carries the
:class:`ExecutionContext`, the per-execution mutable state of an
otherwise immutable compiled plan.  Because subquery memoization lives
in the context rather than in compile-time closures, a plan can be
executed any number of times (the prepared-statement cache in
:mod:`repro.minidb.database` depends on this).  Call
:meth:`PlanNode.run` (or seed ``params`` with
:func:`execution_params`) to start a top-level execution with a fresh
context.

The operator set is deliberately small:

* :class:`SeqScan` — full scan of a base table;
* :class:`IndexJoin` — stream the outer child, probe a base table's hash
  index per row (the operator that makes incremental checks touch only
  update-adjacent data);
* :class:`HashJoin` — classic build/probe equi-join for when both sides
  must be materialized anyway;
* :class:`NestedLoopCross` — cartesian product (rare: only for
  disconnected join graphs);
* :class:`Filter`, :class:`Project`, :class:`Distinct`,
  :class:`UnionAll`, :class:`UnionDistinct`.

Subqueries (``[NOT] EXISTS`` / ``[NOT] IN``) never appear as join
operators: the planner compiles them into *probe closures* evaluated
inside :class:`Filter` predicates (see :mod:`repro.minidb.planner`),
which probe table indexes directly.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from .expressions import Compiled, Scope
from .storage import Table, TableOverlay

#: Reserved ``params`` key carrying the :class:`ExecutionContext`.  All
#: regular correlation keys are ``(binding, column)`` tuples, so a plain
#: string can never collide with them.
CTX_KEY = "__ctx__"


class ExecutionContext:
    """Per-execution mutable state for a compiled plan.

    Compiled plans are immutable; every piece of state that one
    execution must not leak into the next — the memo tables of the
    planner's generic subquery probes, and the optional table
    *overlays* — lives here.  Each probe owns a sentinel token
    allocated at compile time and retrieves its private memo dict with
    :meth:`memo`.

    ``overlays`` maps a normalized base-table name to a
    :class:`~repro.minidb.storage.TableOverlay`.  Scan and probe
    operators merge the overlay into their output on the fly, so one
    immutable plan can serve both plain reads (no overlay) and a
    session's read-your-writes view — without ever mutating base
    storage.

    ``collector`` is an optional per-execution plan-statistics sink
    (duck-typed: anything with ``wrap(node, iterator)``, see
    :class:`repro.obs.profiler.PlanStatsCollector`).  When present,
    every node's output iterator is routed through it — this powers
    EXPLAIN ANALYZE and per-assertion row accounting.  When absent
    (the default), execution pays one ``is None`` test per node.
    """

    __slots__ = ("_memos", "overlays", "collector")

    def __init__(
        self,
        overlays: Optional[dict[str, TableOverlay]] = None,
        collector: Optional[object] = None,
    ):
        self._memos: dict[object, dict] = {}
        self.overlays = overlays or None
        self.collector = collector

    def memo(self, token: object) -> dict:
        """The mutable memo dict owned by ``token`` for this execution."""
        memo = self._memos.get(token)
        if memo is None:
            memo = self._memos[token] = {}
        return memo

    def overlay_for(self, table: Table) -> Optional[TableOverlay]:
        """The overlay staged on ``table`` in this execution, if any."""
        overlays = self.overlays
        if overlays is None:
            return None
        return overlays.get(table.schema.name.lower())


def execution_params(
    params: Optional[dict] = None, ctx: Optional[ExecutionContext] = None
) -> dict:
    """A top-level ``params`` dict carrying a (fresh) execution context."""
    merged = dict(params) if params else {}
    merged[CTX_KEY] = ctx if ctx is not None else ExecutionContext()
    return merged


def context_memo(params: dict, token: object) -> dict:
    """The memo dict for ``token`` in the execution carried by ``params``.

    When no context is present (a bare ``plan.execute({})`` — tests,
    ad-hoc tooling) a throwaway dict is returned: memoization is simply
    disabled and correctness is unaffected.
    """
    ctx = params.get(CTX_KEY)
    if ctx is None:
        return {}
    return ctx.memo(token)


def table_overlay(params: dict, table: Table) -> Optional[TableOverlay]:
    """The overlay staged on ``table`` in the execution carried by
    ``params`` (None for plain reads or bare executions)."""
    ctx = params.get(CTX_KEY)
    if ctx is None:
        return None
    return ctx.overlay_for(table)


def scan_table(params: dict, table: Table) -> Iterator[tuple]:
    """Scan ``table`` through the execution's overlay, if any."""
    overlay = table_overlay(params, table)
    if overlay is None:
        return table.scan()
    return overlay.scan(table)


def probe_table(
    params: dict, table: Table, columns: tuple[str, ...], key: tuple
) -> Iterator[tuple]:
    """Index-probe ``table`` through the execution's overlay, if any."""
    overlay = table_overlay(params, table)
    if overlay is None:
        return table.lookup_secondary(columns, key)
    return overlay.lookup(table, columns, key)


class PlanNode:
    """Base class for physical operators.

    Subclasses implement :meth:`_execute`; the public :meth:`execute`
    routes the node's output through the execution's plan-statistics
    collector when one is installed (EXPLAIN ANALYZE, profiling) and
    is otherwise a direct pass-through.
    """

    scope: Scope
    estimate: float

    def _execute(self, params: dict) -> Iterator[tuple]:  # pragma: no cover
        raise NotImplementedError

    def execute(self, params: dict) -> Iterator[tuple]:
        ctx = params.get(CTX_KEY)
        if ctx is None or ctx.collector is None:
            return self._execute(params)
        return ctx.collector.wrap(self, self._execute(params))

    def run(
        self,
        params: Optional[dict] = None,
        ctx: Optional[ExecutionContext] = None,
    ) -> Iterator[tuple]:
        """Execute as a top-level statement under a fresh (or given)
        :class:`ExecutionContext`.  This is the entry point for repeated
        execution of a cached plan."""
        return self.execute(execution_params(params, ctx))

    def explain(self, indent: int = 0) -> str:
        """Human-readable plan tree (used in tests and debugging)."""
        lines = [("  " * indent) + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def children(self) -> list["PlanNode"]:
        return []


class SeqScan(PlanNode):
    """Full scan of a base table under a binding name.

    When the execution carries an overlay for the table, the scan
    merges it on the fly (staged deletes masked with multiset
    semantics, staged inserts appended) — base storage is never read
    through a mutated state.
    """

    def __init__(self, table: Table, binding: str):
        self.table = table
        self.binding = binding
        self.scope = Scope(
            [(binding, column) for column in table.schema.column_names]
        )
        self.estimate = float(max(len(table), 1))

    def _execute(self, params: dict) -> Iterator[tuple]:
        return scan_table(params, self.table)

    def describe(self) -> str:
        return f"SeqScan({self.table.name} AS {self.binding}, ~{len(self.table)} rows)"


class DeltaSeed(PlanNode):
    """Distinct key projection of one or more event tables.

    The source node of a delta rule: scans the staged ``ins_T``/
    ``del_T`` rows (overlay-aware, exactly like :class:`SeqScan`),
    projects the columns that reach the rule's parent atoms and
    deduplicates — so the downstream join probes each delta key once
    no matter how many staged rows share it.  This is the semi-join
    pruning that makes delta checks scale with ``|delta|`` instead of
    the base-table size.

    Keys containing NULL are dropped: the parent join is an equality
    probe and NULL never equates (matching :class:`IndexJoin`).
    """

    def __init__(
        self,
        tables: list[Table],
        binding: str,
        columns: tuple[str, ...],
        positions: tuple[int, ...],
    ):
        self.tables = list(tables)
        self.binding = binding
        self.columns = columns
        self.positions = positions
        self.scope = Scope([(binding, column) for column in columns])
        self.estimate = float(max(sum(len(t) for t in self.tables), 1))
        #: row-accounting hook: the profiler attributes scanned rows to
        #: nodes exposing a ``table`` (the first source stands for all)
        self.table = self.tables[0]

    def _execute(self, params: dict) -> Iterator[tuple]:
        positions = self.positions
        seen: set[tuple] = set()
        for table in self.tables:
            for row in scan_table(params, table):
                key = tuple(row[p] for p in positions)
                if any(v is None for v in key):
                    continue
                if key not in seen:
                    seen.add(key)
                    yield key

    def describe(self) -> str:
        names = ", ".join(t.name for t in self.tables)
        cols = ", ".join(self.columns)
        return f"DeltaSeed({names} AS {self.binding} -> ({cols}))"


class Filter(PlanNode):
    """Keep rows where the compiled predicate evaluates to exactly True."""

    def __init__(self, child: PlanNode, predicate: Compiled, selectivity: float = 0.25):
        self.child = child
        self.predicate = predicate
        self.scope = child.scope
        self.estimate = max(child.estimate * selectivity, 1.0)

    def _execute(self, params: dict) -> Iterator[tuple]:
        predicate = self.predicate
        for row in self.child.execute(params):
            if predicate(row, params) is True:
                yield row

    def children(self) -> list[PlanNode]:
        return [self.child]


class Project(PlanNode):
    """Compute output expressions per row."""

    def __init__(
        self,
        child: PlanNode,
        exprs: list[Compiled],
        out_scope: Scope,
    ):
        self.child = child
        self.exprs = exprs
        self.scope = out_scope
        self.estimate = child.estimate

    def _execute(self, params: dict) -> Iterator[tuple]:
        exprs = self.exprs
        for row in self.child.execute(params):
            yield tuple(expr(row, params) for expr in exprs)

    def children(self) -> list[PlanNode]:
        return [self.child]


class Distinct(PlanNode):
    """Remove duplicate rows (hash-based)."""

    def __init__(self, child: PlanNode):
        self.child = child
        self.scope = child.scope
        self.estimate = child.estimate

    def _execute(self, params: dict) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child.execute(params):
            if row not in seen:
                seen.add(row)
                yield row

    def children(self) -> list[PlanNode]:
        return [self.child]


def _concat_scopes(left: Scope, right: Scope) -> Scope:
    entries = list(left.entries) + list(right.entries)
    return Scope(entries, outer=left.outer)


class IndexJoin(PlanNode):
    """Stream the outer child; probe a base table hash index per row.

    ``outer_positions`` select the probe key from the outer tuple;
    ``table_columns`` name the indexed columns of the inner table.  An
    optional ``residual`` predicate (compiled against the concatenated
    scope) filters probed matches — this is where non-equi or nested
    subquery conditions on the inner table land.

    NULL probe keys never match (SQL equality semantics).
    """

    def __init__(
        self,
        outer: PlanNode,
        table: Table,
        binding: str,
        table_columns: tuple[str, ...],
        outer_positions: tuple[int, ...],
        residual: Optional[Compiled] = None,
    ):
        self.outer = outer
        self.table = table
        self.binding = binding
        self.table_columns = table_columns
        self.outer_positions = outer_positions
        self.residual = residual
        inner_scope = Scope(
            [(binding, column) for column in table.schema.column_names]
        )
        self.scope = _concat_scopes(outer.scope, inner_scope)
        self.estimate = max(outer.estimate, 1.0)

    def _execute(self, params: dict) -> Iterator[tuple]:
        table = self.table
        columns = self.table_columns
        positions = self.outer_positions
        residual = self.residual
        # build the index once up front so probes are O(1)
        table.ensure_secondary_index(columns)
        overlay = table_overlay(params, table)
        for outer_row in self.outer.execute(params):
            key = tuple(outer_row[p] for p in positions)
            if any(v is None for v in key):
                continue
            if overlay is None:
                matches = table.lookup_secondary(columns, key)
            else:
                matches = overlay.lookup(table, columns, key)
            for inner_row in matches:
                combined = outer_row + inner_row
                if residual is None or residual(combined, params) is True:
                    yield combined

    def children(self) -> list[PlanNode]:
        return [self.outer]

    def describe(self) -> str:
        cols = ", ".join(self.table_columns)
        return (
            f"IndexJoin(probe {self.table.name} AS {self.binding} "
            f"on ({cols}))"
        )


class HashJoin(PlanNode):
    """Equi-join materializing the build side into a hash table.

    The build side is the *right* child; the planner puts the smaller
    estimated side there.  NULL keys never match.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_positions: tuple[int, ...],
        right_positions: tuple[int, ...],
        residual: Optional[Compiled] = None,
    ):
        self.left = left
        self.right = right
        self.left_positions = left_positions
        self.right_positions = right_positions
        self.residual = residual
        self.scope = _concat_scopes(left.scope, right.scope)
        self.estimate = max(left.estimate, right.estimate)

    def _execute(self, params: dict) -> Iterator[tuple]:
        build: dict[tuple, list[tuple]] = {}
        for row in self.right.execute(params):
            key = tuple(row[p] for p in self.right_positions)
            if any(v is None for v in key):
                continue
            build.setdefault(key, []).append(row)
        residual = self.residual
        for left_row in self.left.execute(params):
            key = tuple(left_row[p] for p in self.left_positions)
            if any(v is None for v in key):
                continue
            for right_row in build.get(key, ()):
                combined = left_row + right_row
                if residual is None or residual(combined, params) is True:
                    yield combined

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]


class NestedLoopCross(PlanNode):
    """Cartesian product; the right side is materialized once."""

    def __init__(self, left: PlanNode, right: PlanNode):
        self.left = left
        self.right = right
        self.scope = _concat_scopes(left.scope, right.scope)
        self.estimate = left.estimate * right.estimate

    def _execute(self, params: dict) -> Iterator[tuple]:
        right_rows = list(self.right.execute(params))
        for left_row in self.left.execute(params):
            for right_row in right_rows:
                yield left_row + right_row

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]


class UnionAll(PlanNode):
    """Bag union of children (schemas must be position-compatible)."""

    def __init__(self, parts: list[PlanNode]):
        self.parts = parts
        self.scope = parts[0].scope
        self.estimate = sum(p.estimate for p in parts)

    def _execute(self, params: dict) -> Iterator[tuple]:
        for part in self.parts:
            yield from part.execute(params)

    def children(self) -> list[PlanNode]:
        return list(self.parts)


class UnionDistinct(PlanNode):
    """Set union of children."""

    def __init__(self, parts: list[PlanNode]):
        self.parts = parts
        self.scope = parts[0].scope
        self.estimate = sum(p.estimate for p in parts)

    def _execute(self, params: dict) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for part in self.parts:
            for row in part.execute(params):
                if row not in seen:
                    seen.add(row)
                    yield row

    def children(self) -> list[PlanNode]:
        return list(self.parts)


class AggregateState:
    """Incremental fold state for one SQL aggregate.

    NULL inputs are ignored (SQL semantics); an empty input yields 0
    for COUNT and NULL for SUM/MIN/MAX/AVG.  Values are folded one at a
    time — nothing is materialized.
    """

    __slots__ = ("func", "count", "total", "low", "high")

    def __init__(self, func: str):
        if func not in ("COUNT", "SUM", "MIN", "MAX", "AVG"):
            raise ValueError(f"unknown aggregate {func!r}")
        self.func = func
        self.count = 0
        self.total = 0
        self.low = None
        self.high = None

    def add(self, value) -> None:
        if value is None:
            return
        self.count += 1
        if self.func == "COUNT":
            return
        if self.func in ("SUM", "AVG"):
            self.total += value
        elif self.func == "MIN":
            if self.low is None or value < self.low:
                self.low = value
        elif self.high is None or value > self.high:
            self.high = value

    def result(self) -> object:
        if self.func == "COUNT":
            return self.count
        if self.count == 0:
            return None
        if self.func == "SUM":
            return self.total
        if self.func == "MIN":
            return self.low
        if self.func == "MAX":
            return self.high
        return self.total / self.count  # AVG


def aggregate_value(func: str, values) -> object:
    """Fold an iterable of values with an SQL aggregate in one pass
    (no intermediate ``present`` list is built)."""
    state = AggregateState(func)
    for value in values:
        state.add(value)
    return state.result()


class Aggregate(PlanNode):
    """Ungrouped aggregation: consumes the child, emits exactly one row.

    ``specs`` is a list of ``(func, compiled_arg_or_None)`` — a None
    argument means COUNT(*).  Each spec folds incrementally via
    :class:`AggregateState`; per-spec value lists are never
    materialized.  (Engine extension used by the aggregate-assertion
    feature; the paper's fragment has no aggregates.)
    """

    def __init__(self, child: PlanNode, specs: list, out_scope: Scope):
        self.child = child
        self.specs = specs
        self.scope = out_scope
        self.estimate = 1.0

    def _execute(self, params: dict) -> Iterator[tuple]:
        states = [AggregateState(func) for func, _ in self.specs]
        args = [arg for _, arg in self.specs]
        for row in self.child.execute(params):
            for state, arg in zip(states, args):
                if arg is None:
                    state.count += 1  # COUNT(*): count rows directly
                else:
                    state.add(arg(row, params))
        yield tuple(state.result() for state in states)

    def children(self) -> list[PlanNode]:
        return [self.child]


class Empty(PlanNode):
    """Produces no rows; used when the planner proves a branch is empty
    (e.g. a view over an event table known to be empty is *not* assumed
    empty — this is only for structurally impossible branches)."""

    def __init__(self, scope: Scope):
        self.scope = scope
        self.estimate = 0.0

    def _execute(self, params: dict) -> Iterator[tuple]:
        return iter(())
