"""Table schema objects: columns, keys and foreign keys.

Schemas are immutable after construction and validated eagerly, so any
inconsistency (duplicate column, key over a missing column...) fails at
``CREATE TABLE`` time rather than at query time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import SchemaError
from .types import SQLType


def normalize(name: str) -> str:
    """Case-insensitive identifier normalization (SQL semantics)."""
    return name.lower()


@dataclass(frozen=True)
class Column:
    """One column of a table."""

    name: str
    sql_type: SQLType
    not_null: bool = False

    def __str__(self) -> str:
        suffix = " NOT NULL" if self.not_null else ""
        return f"{self.name} {self.sql_type}{suffix}"


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key from ``columns`` to ``ref_table.ref_columns``.

    ``ref_columns`` always names the parent key explicitly (resolution
    against the parent's primary key happens at CREATE TABLE time).
    """

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"FOREIGN KEY ({', '.join(self.columns)}) REFERENCES "
            f"{self.ref_table} ({', '.join(self.ref_columns)})"
        )


class TableSchema:
    """The schema of one table: columns plus declared keys.

    All name lookups are case-insensitive.  ``primary_key`` columns are
    implicitly NOT NULL (enforced here by upgrading the column flags).
    """

    def __init__(
        self,
        name: str,
        columns: list[Column],
        primary_key: tuple[str, ...] = (),
        foreign_keys: tuple[ForeignKey, ...] = (),
        uniques: tuple[tuple[str, ...], ...] = (),
    ):
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        seen: set[str] = set()
        for column in columns:
            key = normalize(column.name)
            if key in seen:
                raise SchemaError(
                    f"table {name!r} declares duplicate column {column.name!r}"
                )
            seen.add(key)

        self.primary_key = tuple(self._resolve_name(name, columns, c) for c in primary_key)
        pk_set = {normalize(c) for c in self.primary_key}
        self.columns = tuple(
            Column(c.name, c.sql_type, c.not_null or normalize(c.name) in pk_set)
            for c in columns
        )
        self._index_by_name = {
            normalize(c.name): i for i, c in enumerate(self.columns)
        }
        self.uniques = tuple(
            tuple(self._resolve_name(name, columns, c) for c in unique)
            for unique in uniques
        )
        for unique in self.uniques:
            if len(set(map(normalize, unique))) != len(unique):
                raise SchemaError(
                    f"table {name!r}: UNIQUE clause repeats a column"
                )
        if len(pk_set) != len(self.primary_key):
            raise SchemaError(f"table {name!r}: PRIMARY KEY repeats a column")
        self.foreign_keys = tuple(
            ForeignKey(
                tuple(self._resolve_name(name, columns, c) for c in fk.columns),
                fk.ref_table,
                fk.ref_columns,
            )
            for fk in foreign_keys
        )
        for fk in self.foreign_keys:
            # empty ref_columns means "the parent's primary key" and is
            # resolved by constraints.validate_foreign_keys at CREATE time
            if fk.ref_columns and len(fk.columns) != len(fk.ref_columns):
                raise SchemaError(
                    f"table {name!r}: foreign key column count mismatch in {fk}"
                )

    @staticmethod
    def _resolve_name(table: str, columns: list[Column], name: str) -> str:
        for column in columns:
            if normalize(column.name) == normalize(name):
                return column.name
        raise SchemaError(f"table {table!r}: key references unknown column {name!r}")

    # -- lookups -------------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def has_column(self, name: str) -> bool:
        return normalize(name) in self._index_by_name

    def column_index(self, name: str) -> int:
        """Position of a column, case-insensitively; raises SchemaError."""
        try:
            return self._index_by_name[normalize(name)]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def key_positions(self, columns: tuple[str, ...]) -> tuple[int, ...]:
        """Positions of the given columns, in order."""
        return tuple(self.column_index(c) for c in columns)

    # -- stable serialization (durability subsystem) ----------------------

    def to_dict(self) -> dict:
        """A JSON-ready description of this schema.

        The encoding is *stable*: two schemas constructed the same way
        serialize identically, and :meth:`from_dict` reconstructs an
        equivalent schema — the round trip the checkpoint writer and
        WAL DDL records rely on.
        """
        return {
            "name": self.name,
            "columns": [
                {
                    "name": c.name,
                    "type": {"kind": c.sql_type.kind, "length": c.sql_type.length},
                    "not_null": c.not_null,
                }
                for c in self.columns
            ],
            "primary_key": list(self.primary_key),
            "uniques": [list(u) for u in self.uniques],
            "foreign_keys": [
                {
                    "columns": list(fk.columns),
                    "ref_table": fk.ref_table,
                    "ref_columns": list(fk.ref_columns),
                }
                for fk in self.foreign_keys
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TableSchema":
        """Rebuild a schema from :meth:`to_dict` output."""
        columns = [
            Column(
                c["name"],
                SQLType(c["type"]["kind"], c["type"]["length"]),
                c["not_null"],
            )
            for c in payload["columns"]
        ]
        return cls(
            payload["name"],
            columns,
            tuple(payload["primary_key"]),
            tuple(
                ForeignKey(
                    tuple(fk["columns"]),
                    fk["ref_table"],
                    tuple(fk["ref_columns"]),
                )
                for fk in payload["foreign_keys"]
            ),
            tuple(tuple(u) for u in payload["uniques"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TableSchema({self.name!r}, {len(self.columns)} columns)"
